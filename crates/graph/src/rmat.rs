//! The R-MAT recursive matrix generator (Chakrabarti, Zhan & Faloutsos).
//!
//! The paper uses SNAP's RMAT generator for its Figure 2 scale/density
//! sweeps ("RMAT graphs of uniform degree distributions with varied scale
//! and sparsity") and for the `power-16` / `power-22` low-locality graphs of
//! Figure 9. R-MAT places each edge by recursively descending into one of
//! the four quadrants of the adjacency matrix with probabilities
//! `(a, b, c, d)`; equal probabilities yield an Erdős–Rényi-like uniform
//! graph, skewed probabilities yield a power-law degree distribution.

use crate::graph_type::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sparse::{Coo, Csr};

/// Configuration of an R-MAT generation run.
///
/// # Examples
///
/// ```
/// use graph::RmatConfig;
///
/// let uniform = RmatConfig::uniform(8, 16);  // 256 vertices, ~4096 edges
/// let skewed = RmatConfig::power_law(8, 16); // same size, power-law degrees
/// assert_eq!(uniform.vertices(), 256);
/// assert_eq!(skewed.target_edges(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatConfig {
    /// log2 of the vertex count ("scale" in Graph500 terminology).
    pub scale: u32,
    /// Average edges per vertex ("edge factor").
    pub edge_factor: usize,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Whether to mirror each generated edge, producing an undirected graph.
    pub symmetric: bool,
    /// Per-level probability noise, as in SNAP's implementation; 0 disables.
    pub noise: f64,
}

impl RmatConfig {
    /// Classic power-law parameters `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`
    /// (Graph500 defaults), symmetric output.
    pub fn power_law(scale: u32, edge_factor: usize) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            symmetric: true,
            noise: 0.0,
        }
    }

    /// Uniform parameters `(0.25, 0.25, 0.25, 0.25)` — an Erdős–Rényi-like
    /// graph with near-uniform degrees, matching the Figure 2 sweep setup.
    pub fn uniform(scale: u32, edge_factor: usize) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            symmetric: true,
            noise: 0.0,
        }
    }

    /// Probability of the bottom-right quadrant (`1 - a - b - c`).
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Number of vertices (`2^scale`).
    pub fn vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of edge placements attempted (`vertices * edge_factor`).
    /// The final graph may have fewer edges after duplicate merging.
    pub fn target_edges(&self) -> usize {
        self.vertices() * self.edge_factor
    }

    /// Validates the quadrant probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or if they sum above 1.
    pub fn assert_valid(&self) {
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0,
            "negative quadrant probability"
        );
        assert!(
            self.a + self.b + self.c <= 1.0 + 1e-9,
            "quadrant probabilities sum above 1"
        );
        assert!(self.scale <= 40, "scale too large to materialize");
    }
}

/// Generates an R-MAT graph. Self loops are dropped and duplicate edges are
/// merged, matching SNAP's simple-graph output mode.
pub fn generate(config: &RmatConfig, seed: u64) -> Graph {
    config.assert_valid();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.vertices();
    let m = config.target_edges();
    let mut coo = Coo::with_capacity(n, n, if config.symmetric { m * 2 } else { m });
    for _ in 0..m {
        let (u, v) = place_edge(config, &mut rng);
        if u == v {
            continue;
        }
        coo.push(u, v, 1.0);
        if config.symmetric {
            coo.push(v, u, 1.0);
        }
    }
    let csr = Csr::from_coo(&coo);
    // Merge duplicates down to unit weight by rebuilding the value array.
    let values = vec![1.0f32; csr.nnz()];
    let csr = Csr::from_raw(n, n, csr.row_ptr().to_vec(), csr.col_idx().to_vec(), values)
        .expect("structure already validated");
    Graph::from_adjacency(csr)
}

/// Recursively descends the quadtree to place one edge.
fn place_edge(config: &RmatConfig, rng: &mut StdRng) -> (usize, usize) {
    let (mut a, mut b, mut c) = (config.a, config.b, config.c);
    let mut u = 0usize;
    let mut v = 0usize;
    for level in (0..config.scale).rev() {
        let d = (1.0 - a - b - c).max(0.0);
        let r: f64 = rng.gen();
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1 << level;
        } else if r < a + b + c {
            u |= 1 << level;
        } else {
            let _ = d;
            u |= 1 << level;
            v |= 1 << level;
        }
        if config.noise > 0.0 {
            // SNAP-style multiplicative noise keeps expected values fixed.
            let na = a * (1.0 - config.noise + 2.0 * config.noise * rng.gen::<f64>());
            let nb = b * (1.0 - config.noise + 2.0 * config.noise * rng.gen::<f64>());
            let nc = c * (1.0 - config.noise + 2.0 * config.noise * rng.gen::<f64>());
            let nd = d * (1.0 - config.noise + 2.0 * config.noise * rng.gen::<f64>());
            let s = na + nb + nc + nd;
            if s > 0.0 {
                a = na / s;
                b = nb / s;
                c = nc / s;
            }
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_size_matches_config() {
        let g = generate(&RmatConfig::uniform(8, 8), 1);
        assert_eq!(g.vertices(), 256);
        // Duplicates/self-loops shave some edges; expect within 50-100% of
        // the doubled (symmetric) target.
        let target = 2 * 256 * 8;
        assert!(g.edges() <= target);
        assert!(g.edges() > target / 2, "too many collisions: {}", g.edges());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&RmatConfig::power_law(7, 8), 5);
        let b = generate(&RmatConfig::power_law(7, 8), 5);
        let c = generate(&RmatConfig::power_law(7, 8), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn symmetric_output_is_symmetric() {
        let g = generate(&RmatConfig::power_law(6, 8), 3);
        for (u, v, _) in g.adjacency().iter() {
            assert!(
                g.adjacency().get(v, u).is_some(),
                "edge ({u},{v}) missing mirror"
            );
        }
    }

    #[test]
    fn no_self_loops() {
        let g = generate(&RmatConfig::power_law(7, 8), 9);
        for (u, v, _) in g.adjacency().iter() {
            assert_ne!(u, v, "self loop on {u}");
        }
    }

    #[test]
    fn power_law_is_more_skewed_than_uniform() {
        let uni = generate(&RmatConfig::uniform(10, 16), 7).degree_stats();
        let pow = generate(&RmatConfig::power_law(10, 16), 7).degree_stats();
        assert!(
            pow.cv > uni.cv * 1.5,
            "power-law cv {} should exceed uniform cv {}",
            pow.cv,
            uni.cv
        );
        assert!(pow.max > uni.max);
    }

    #[test]
    fn directed_mode_skips_mirroring() {
        let mut cfg = RmatConfig::power_law(6, 4);
        cfg.symmetric = false;
        let g = generate(&cfg, 11);
        let asymmetric = g
            .adjacency()
            .iter()
            .filter(|&(u, v, _)| g.adjacency().get(v, u).is_none())
            .count();
        assert!(asymmetric > 0, "directed RMAT should have one-way edges");
    }

    #[test]
    #[should_panic(expected = "sum above 1")]
    fn invalid_probabilities_panic() {
        let cfg = RmatConfig {
            a: 0.6,
            b: 0.3,
            c: 0.3,
            ..RmatConfig::uniform(4, 2)
        };
        generate(&cfg, 0);
    }

    #[test]
    fn noise_changes_structure_but_not_size() {
        let base = RmatConfig::power_law(8, 8);
        let noisy = RmatConfig { noise: 0.1, ..base };
        let g0 = generate(&base, 13);
        let g1 = generate(&noisy, 13);
        assert_eq!(g0.vertices(), g1.vertices());
        assert_ne!(g0, g1);
    }
}
