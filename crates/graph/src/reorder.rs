//! Locality-aware vertex reordering.
//!
//! SpMM reads one feature row per non-zero; on power-law graphs in native
//! order those reads scatter across the whole feature matrix, and the
//! paper's characterization (Section III-C) shows exactly that scatter
//! limiting the CPU baseline. Relabeling vertices so that vertices
//! referenced together sit near each other shrinks the column working set
//! of every row window — the same lever Accel-GCN pulls with row
//! reordering, and the software analogue of the PIUMA DMA kernels' dense
//! block gathers.
//!
//! Three classic orderings are provided:
//!
//! * [`ReorderKind::DegreeDescending`] — hubs first; clusters the
//!   most-referenced feature rows into one dense prefix,
//! * [`ReorderKind::Bfs`] — breadth-first labels give neighbours nearby
//!   ids, tightening each row's column span,
//! * [`ReorderKind::Rcm`] — reverse Cuthill-McKee, the standard
//!   bandwidth-minimizing ordering for sparse solvers.
//!
//! [`ReorderedGraph`] packages an ordering with its bookkeeping: it
//! permutes features/labels on the way in and un-permutes outputs on the
//! way out, so GCN results are identical (modulo float summation order) to
//! running on the original graph.

use crate::graph_type::Graph;
use matrix::DenseMatrix;
use sparse::{Csr, Permutation};

/// Which vertex ordering to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorderKind {
    /// Sort vertices by out-degree, largest first (stable, so ties keep
    /// their native order).
    DegreeDescending,
    /// Breadth-first search from the highest-degree vertex; remaining
    /// components are visited in degree order.
    Bfs,
    /// Reverse Cuthill-McKee: BFS from a low-degree vertex with neighbours
    /// visited in ascending-degree order, then the whole order reversed.
    Rcm,
}

impl std::fmt::Display for ReorderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorderKind::DegreeDescending => write!(f, "degree"),
            ReorderKind::Bfs => write!(f, "bfs"),
            ReorderKind::Rcm => write!(f, "rcm"),
        }
    }
}

/// Computes the vertex ordering of `kind` for a square adjacency matrix.
///
/// # Panics
///
/// Panics if `adjacency` is not square (a [`Graph`] is square by
/// construction; call sites handing a raw CSR must uphold this).
pub fn ordering(adjacency: &Csr, kind: ReorderKind) -> Permutation {
    assert_eq!(
        adjacency.nrows(),
        adjacency.ncols(),
        "vertex ordering requires a square adjacency"
    );
    let n = adjacency.nrows();
    let order = match kind {
        ReorderKind::DegreeDescending => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&v| std::cmp::Reverse(adjacency.row_nnz(v)));
            order
        }
        ReorderKind::Bfs => {
            // Seeds in descending degree: the biggest hub roots the first
            // tree, and each later component starts from its own densest
            // vertex.
            let mut seeds: Vec<usize> = (0..n).collect();
            seeds.sort_by_key(|&v| std::cmp::Reverse(adjacency.row_nnz(v)));
            bfs_order(adjacency, &seeds, false)
        }
        ReorderKind::Rcm => {
            // Cuthill-McKee grows the frontier from the periphery inward:
            // low-degree seeds, ascending-degree neighbour visits, and a
            // final reversal.
            let mut seeds: Vec<usize> = (0..n).collect();
            seeds.sort_by_key(|&v| adjacency.row_nnz(v));
            let mut order = bfs_order(adjacency, &seeds, true);
            order.reverse();
            order
        }
    };
    Permutation::from_new_to_old(order).expect("traversal order is a bijection by construction")
}

/// BFS visiting every vertex once: components are rooted at the first
/// unvisited seed, and neighbours are enqueued in native or
/// ascending-degree order (`sort_neighbours`).
fn bfs_order(adjacency: &Csr, seeds: &[usize], sort_neighbours: bool) -> Vec<usize> {
    let n = adjacency.nrows();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut neighbours: Vec<usize> = Vec::new();
    for &seed in seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        order.push(seed);
        let mut head = order.len() - 1;
        while head < order.len() {
            let u = order[head];
            head += 1;
            neighbours.clear();
            neighbours.extend(adjacency.row_cols(u).iter().map(|&c| c as usize));
            if sort_neighbours {
                neighbours.sort_by_key(|&v| adjacency.row_nnz(v));
            }
            for &v in &neighbours {
                if !visited[v] {
                    visited[v] = true;
                    order.push(v);
                }
            }
        }
    }
    order
}

/// Mean column distance `|u - v|` over all non-zeros — the locality figure
/// of merit the orderings try to shrink. Lower means each row's feature
/// reads land closer together. Returns 0 for an empty matrix.
pub fn mean_bandwidth(adjacency: &Csr) -> f64 {
    if adjacency.nnz() == 0 {
        return 0.0;
    }
    let mut total: u64 = 0;
    for (r, c, _) in adjacency.iter() {
        total += (r as i64 - c as i64).unsigned_abs();
    }
    total as f64 / adjacency.nnz() as f64
}

/// A graph relabeled by a locality-aware ordering, bundled with the
/// permutation needed to move data in and out of the reordered index
/// space.
///
/// # Examples
///
/// ```
/// use graph::{Graph, reorder::{ReorderKind, ReorderedGraph}};
///
/// let g = Graph::rmat(&graph::RmatConfig::power_law(8, 8), 7);
/// let rg = ReorderedGraph::new(&g, ReorderKind::DegreeDescending);
/// let x = g.random_features(4, 1);
/// let xr = rg.permute_features(&x);
/// // Row 0 of the reordered features is the highest-degree vertex's row.
/// let hub = rg.permutation().old_of_new(0);
/// assert_eq!(xr.row(0), x.row(hub));
/// // restore_rows is the exact inverse.
/// assert_eq!(rg.restore_rows(&xr), x);
/// ```
#[derive(Debug, Clone)]
pub struct ReorderedGraph {
    graph: Graph,
    perm: Permutation,
    kind: ReorderKind,
}

impl ReorderedGraph {
    /// Relabels `graph` with the ordering of `kind`.
    pub fn new(graph: &Graph, kind: ReorderKind) -> Self {
        let perm = ordering(graph.adjacency(), kind);
        let adjacency = graph
            .adjacency()
            .permute_symmetric(&perm)
            .expect("square adjacency with matching permutation length");
        ReorderedGraph {
            graph: Graph::from_adjacency(adjacency),
            perm,
            kind,
        }
    }

    /// The relabeled graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The vertex permutation (old -> new).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Which ordering produced this relabeling.
    pub fn kind(&self) -> ReorderKind {
        self.kind
    }

    /// Permutes a per-vertex feature matrix into the reordered index
    /// space: row `new` of the result is row `old_of_new(new)` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows()` does not match the vertex count.
    pub fn permute_features(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(x.rows(), self.perm.len(), "feature row count mismatch");
        let mut out = DenseMatrix::zeros(x.rows(), x.cols());
        for new in 0..x.rows() {
            out.row_mut(new)
                .copy_from_slice(x.row(self.perm.old_of_new(new)));
        }
        out
    }

    /// Un-permutes a per-vertex output matrix back to the original vertex
    /// order: the exact inverse of [`ReorderedGraph::permute_features`].
    ///
    /// # Panics
    ///
    /// Panics if `out.rows()` does not match the vertex count.
    pub fn restore_rows(&self, out: &DenseMatrix) -> DenseMatrix {
        assert_eq!(out.rows(), self.perm.len(), "output row count mismatch");
        let mut restored = DenseMatrix::zeros(out.rows(), out.cols());
        for old in 0..out.rows() {
            restored
                .row_mut(old)
                .copy_from_slice(out.row(self.perm.new_of_old(old)));
        }
        restored
    }

    /// Permutes per-vertex data (labels, masks) into the reordered space.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len()` does not match the vertex count.
    pub fn permute_slice<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        self.perm.gather(xs)
    }

    /// Un-permutes per-vertex data back to the original vertex order.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len()` does not match the vertex count.
    pub fn restore_slice<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        self.perm.scatter(xs)
    }

    /// Locality improvement: `mean_bandwidth(original) /
    /// mean_bandwidth(reordered)`. Above 1.0 means the ordering moved
    /// neighbours closer together; `original` must be the graph this
    /// reordering was built from.
    pub fn bandwidth_reduction(&self, original: &Graph) -> f64 {
        let after = mean_bandwidth(self.graph.adjacency());
        if after == 0.0 {
            return 1.0;
        }
        mean_bandwidth(original.adjacency()) / after
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::rmat::RmatConfig;

    fn skewed() -> Graph {
        Graph::rmat(&RmatConfig::power_law(8, 8), 3)
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = skewed();
        let p = ordering(g.adjacency(), ReorderKind::DegreeDescending);
        let degrees: Vec<usize> = (0..g.vertices())
            .map(|new| g.adjacency().row_nnz(p.old_of_new(new)))
            .collect();
        assert!(degrees.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn orderings_are_bijections_for_all_kinds() {
        let g = skewed();
        for kind in [
            ReorderKind::DegreeDescending,
            ReorderKind::Bfs,
            ReorderKind::Rcm,
        ] {
            let p = ordering(g.adjacency(), kind);
            assert_eq!(p.len(), g.vertices(), "{kind}");
            // Permutation construction validates bijectivity; double-check
            // the round trip anyway.
            assert_eq!(p.inverse().inverse(), p, "{kind}");
        }
    }

    #[test]
    fn reordered_graph_preserves_structure() {
        let g = skewed();
        for kind in [
            ReorderKind::DegreeDescending,
            ReorderKind::Bfs,
            ReorderKind::Rcm,
        ] {
            let rg = ReorderedGraph::new(&g, kind);
            assert_eq!(rg.graph().vertices(), g.vertices(), "{kind}");
            assert_eq!(rg.graph().edges(), g.edges(), "{kind}");
            let p = rg.permutation();
            for (u, v, w) in g.adjacency().iter() {
                assert_eq!(
                    rg.graph().adjacency().get(p.new_of_old(u), p.new_of_old(v)),
                    Some(w),
                    "{kind}: edge ({u},{v}) lost"
                );
            }
        }
    }

    #[test]
    fn feature_round_trip_is_exact() {
        let g = skewed();
        let x = g.random_features(6, 9);
        for kind in [ReorderKind::Bfs, ReorderKind::Rcm] {
            let rg = ReorderedGraph::new(&g, kind);
            assert_eq!(rg.restore_rows(&rg.permute_features(&x)), x, "{kind}");
            let labels: Vec<usize> = (0..g.vertices()).collect();
            assert_eq!(rg.restore_slice(&rg.permute_slice(&labels)), labels);
        }
    }

    #[test]
    fn rcm_shrinks_bandwidth_on_er_graphs() {
        // Random labeling of a sparse ER graph has mean bandwidth ~n/3;
        // RCM should cut it substantially.
        let g = erdos_renyi(512, 1024, 5);
        let rg = ReorderedGraph::new(&g, ReorderKind::Rcm);
        let reduction = rg.bandwidth_reduction(&g);
        assert!(
            reduction > 1.5,
            "RCM should shrink mean bandwidth, got reduction {reduction}"
        );
    }

    #[test]
    fn bandwidth_of_empty_graph_is_zero() {
        assert_eq!(mean_bandwidth(&Csr::empty(4, 4)), 0.0);
        let g = Graph::from_undirected_edges(4, &[]);
        let rg = ReorderedGraph::new(&g, ReorderKind::Bfs);
        assert_eq!(rg.bandwidth_reduction(&g), 1.0);
    }
}
