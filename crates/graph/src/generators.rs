//! Non-R-MAT synthetic generators: Erdős–Rényi and regular-degree graphs.

use crate::graph_type::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::{Coo, Csr};

/// Generates an Erdős–Rényi `G(n, m)` graph: `m` distinct undirected edges
/// sampled uniformly at random (no self loops).
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible undirected edges.
///
/// # Examples
///
/// ```
/// let g = graph::generators::erdos_renyi(100, 300, 1);
/// assert_eq!(g.vertices(), 100);
/// assert_eq!(g.edges(), 600); // stored directed both ways
/// ```
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} possible"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        chosen.insert(key);
    }
    let edges: Vec<(usize, usize)> = chosen.into_iter().collect();
    Graph::from_undirected_edges(n, &edges)
}

/// Generates a `d`-regular *directed* graph: every vertex gets exactly `d`
/// distinct out-neighbours (excluding itself). Used where the paper calls
/// for "uniform degree distributions" with an exact degree.
///
/// # Panics
///
/// Panics if `d >= n`.
pub fn regular_out_degree(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree {d} must be below vertex count {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, n * d);
    let mut picked: Vec<usize> = Vec::with_capacity(d);
    for u in 0..n {
        picked.clear();
        while picked.len() < d {
            let v = rng.gen_range(0..n);
            if v != u && !picked.contains(&v) {
                picked.push(v);
            }
        }
        for &v in &picked {
            coo.push(u, v, 1.0);
        }
    }
    Graph::from_adjacency(Csr::from_coo(&coo))
}

/// Generates a graph of a target density `delta = |E| / |V|^2` with uniform
/// degree structure — the workload of the paper's Figure 2 sweep, where
/// `|E| = delta * |V|^2`.
pub fn uniform_with_density(n: usize, density: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let edges = (density * n as f64 * n as f64).round() as usize;
    let per_vertex = (edges / n.max(1)).min(n.saturating_sub(1));
    regular_out_degree(n, per_vertex.max(1).min(n.saturating_sub(1)), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_has_exact_edge_count() {
        let g = erdos_renyi(50, 100, 2);
        assert_eq!(g.edges(), 200);
        assert_eq!(g.vertices(), 50);
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        assert_eq!(erdos_renyi(30, 60, 4), erdos_renyi(30, 60, 4));
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn erdos_renyi_rejects_impossible_edge_count() {
        erdos_renyi(3, 100, 0);
    }

    #[test]
    fn regular_graph_has_exact_degrees() {
        let g = regular_out_degree(40, 7, 3);
        let stats = g.degree_stats();
        assert_eq!(stats.min, 7);
        assert_eq!(stats.max, 7);
        assert_eq!(stats.cv, 0.0);
        assert_eq!(g.edges(), 40 * 7);
    }

    #[test]
    fn regular_graph_has_no_self_loops() {
        let g = regular_out_degree(20, 5, 8);
        for (u, v, _) in g.adjacency().iter() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn uniform_with_density_hits_target() {
        let g = uniform_with_density(128, 0.05, 1);
        let got = g.density();
        assert!(
            (got - 0.05).abs() / 0.05 < 0.2,
            "density {got} too far from 0.05"
        );
    }

    #[test]
    #[should_panic(expected = "below vertex count")]
    fn regular_rejects_excess_degree() {
        regular_out_degree(4, 4, 0);
    }
}
