//! Graph serialization: whitespace edge lists and Matrix Market files.
//!
//! OGB distributes graphs as edge lists and the sparse-matrix community
//! uses Matrix Market; supporting both lets users feed *real* datasets to
//! the kernels and the simulator instead of the synthetic twins.

use crate::graph_type::Graph;
use sparse::{Coo, Csr, SparseError};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced by the graph readers.
///
/// Every malformed input — garbage bytes, out-of-bounds indices, files
/// truncated mid-entry — comes back as a typed variant; the loaders never
/// panic on untrusted data.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The Matrix Market header was missing or unsupported.
    BadHeader {
        /// The offending header line.
        header: String,
    },
    /// An entry's coordinates exceed the declared matrix/graph shape.
    IndexOutOfBounds {
        /// 1-based line number of the offending entry (0 if unknown).
        line: usize,
        /// The offending row (or source-vertex) index, 0-based.
        row: usize,
        /// The offending column (or target-vertex) index, 0-based.
        col: usize,
        /// Declared shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// The file ended before the declared number of entries was read.
    Truncated {
        /// Entries the size line promised.
        expected: usize,
        /// Entries actually present.
        found: usize,
    },
    /// The assembled matrix failed a structural validity check.
    Invalid(SparseError),
    /// An injected fault from the resilience layer (testing only).
    Fault {
        /// The fault-point site name.
        site: &'static str,
    },
}

/// Former name of [`GraphError`], kept for source compatibility.
pub type ReadError = GraphError;

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::BadHeader { header } => {
                write!(f, "unsupported matrix market header: {header}")
            }
            GraphError::IndexOutOfBounds {
                line,
                row,
                col,
                shape,
            } => write!(
                f,
                "entry ({row}, {col}) on line {line} exceeds declared shape {}x{}",
                shape.0, shape.1
            ),
            GraphError::Truncated { expected, found } => write!(
                f,
                "file truncated: size line declares {expected} entries, found {found}"
            ),
            GraphError::Invalid(e) => write!(f, "invalid matrix structure: {e}"),
            GraphError::Fault { site } => write!(f, "injected fault at `{site}`"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl From<SparseError> for GraphError {
    fn from(e: SparseError) -> Self {
        GraphError::Invalid(e)
    }
}

/// Preallocation cap for the declared-nnz hint: a hostile size line like
/// `1 1 99999999999` must not commit gigabytes before the first entry is
/// parsed. Beyond this the triplet buffers grow geometrically as usual.
const MAX_NNZ_PREALLOC: usize = 1 << 20;

/// Reads a whitespace-separated edge list (`u v` per line, `#` comments).
/// Vertex count is `max id + 1` unless `vertices` pins it.
///
/// # Errors
///
/// Returns [`ReadError`] on malformed lines or underlying I/O failures.
pub fn read_edge_list<R: BufRead>(reader: R, vertices: Option<usize>) -> Result<Graph, GraphError> {
    resilience::fault_point_err!(
        "graph.io.edge_list",
        GraphError::Fault {
            site: "graph.io.edge_list",
        }
    );
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut max_id = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<usize, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse(it.next(), "source vertex")?;
        let v = parse(it.next(), "target vertex")?;
        if let Some(n) = vertices {
            if u >= n || v >= n {
                return Err(GraphError::IndexOutOfBounds {
                    line: idx + 1,
                    row: u,
                    col: v,
                    shape: (n, n),
                });
            }
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = vertices.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(Graph::from_directed_edges(n, &edges))
}

/// Writes the graph as a whitespace edge list with a size comment.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# vertices={} edges={}",
        graph.vertices(),
        graph.edges()
    )?;
    for (u, v, _) in graph.adjacency().iter() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Reads a Matrix Market `coordinate` file into a CSR matrix. Supports the
/// `general` and `symmetric` qualifiers with `real`, `integer` or `pattern`
/// values (pattern entries get weight 1).
///
/// The loader treats its input as untrusted: out-of-bounds indices come
/// back as [`GraphError::IndexOutOfBounds`] with the offending line, a file
/// that ends before the declared entry count is [`GraphError::Truncated`],
/// non-finite values are rejected, and a hostile size line cannot force a
/// huge up-front allocation.
///
/// # Errors
///
/// Returns [`GraphError`] on malformed headers/lines, out-of-bounds or
/// non-finite entries, truncated files, or I/O failures.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Csr, GraphError> {
    resilience::fault_point_err!(
        "graph.io.matrix_market",
        GraphError::Fault {
            site: "graph.io.matrix_market",
        }
    );
    let mut lines = reader.lines().enumerate();

    // Header line: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (_, header) = lines.next().ok_or_else(|| GraphError::BadHeader {
        header: "<empty file>".to_string(),
    })?;
    let header = header?;
    let lower = header.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() < 5
        || tokens[0] != "%%matrixmarket"
        || tokens[1] != "matrix"
        || tokens[2] != "coordinate"
    {
        return Err(GraphError::BadHeader { header });
    }
    let pattern = tokens[3] == "pattern";
    let symmetric = tokens[4] == "symmetric";
    if !matches!(tokens[3], "real" | "integer" | "pattern")
        || !matches!(tokens[4], "general" | "symmetric")
    {
        return Err(GraphError::BadHeader { header });
    }

    // Size line (after comments), then entries.
    let mut coo: Option<Coo> = None;
    let mut declared_nnz = 0usize;
    let mut parsed_entries = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        let parse_usize = |s: &str, what: &str| -> Result<usize, GraphError> {
            s.parse().map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        match &mut coo {
            None => {
                if fields.len() != 3 {
                    return Err(GraphError::Parse {
                        line: idx + 1,
                        message: "size line must have 3 fields".to_string(),
                    });
                }
                let rows = parse_usize(fields[0], "row count")?;
                let cols = parse_usize(fields[1], "column count")?;
                declared_nnz = parse_usize(fields[2], "nnz count")?;
                coo = Some(Coo::with_capacity(
                    rows,
                    cols,
                    declared_nnz.min(MAX_NNZ_PREALLOC),
                ));
            }
            Some(coo) => {
                if parsed_entries == declared_nnz {
                    return Err(GraphError::Parse {
                        line: idx + 1,
                        message: format!("more entries than the declared nnz {declared_nnz}"),
                    });
                }
                let expected = if pattern { 2 } else { 3 };
                if fields.len() < expected {
                    return Err(GraphError::Parse {
                        line: idx + 1,
                        message: format!("entry needs {expected} fields"),
                    });
                }
                // Matrix Market is 1-indexed.
                let r = parse_usize(fields[0], "row index")?;
                let c = parse_usize(fields[1], "column index")?;
                if r == 0 || c == 0 {
                    return Err(GraphError::Parse {
                        line: idx + 1,
                        message: "indices are 1-based".to_string(),
                    });
                }
                let value: f32 = if pattern {
                    1.0
                } else {
                    fields[2].parse().map_err(|e| GraphError::Parse {
                        line: idx + 1,
                        message: format!("bad value: {e}"),
                    })?
                };
                if !value.is_finite() {
                    return Err(GraphError::Parse {
                        line: idx + 1,
                        message: format!("non-finite value {value}"),
                    });
                }
                let oob =
                    |row: usize, col: usize, shape: (usize, usize)| GraphError::IndexOutOfBounds {
                        line: idx + 1,
                        row,
                        col,
                        shape,
                    };
                coo.try_push(r - 1, c - 1, value)
                    .map_err(|_| oob(r - 1, c - 1, (coo.nrows(), coo.ncols())))?;
                if symmetric && r != c {
                    coo.try_push(c - 1, r - 1, value)
                        .map_err(|_| oob(c - 1, r - 1, (coo.nrows(), coo.ncols())))?;
                }
                parsed_entries += 1;
            }
        }
    }
    let coo = coo.ok_or(GraphError::BadHeader {
        header: "missing size line".to_string(),
    })?;
    if parsed_entries < declared_nnz {
        return Err(GraphError::Truncated {
            expected: declared_nnz,
            found: parsed_entries,
        });
    }
    let csr = Csr::from_coo(&coo);
    csr.validate()?;
    Ok(csr)
}

/// Writes a CSR matrix as Matrix Market `coordinate real general`.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_matrix_market<W: Write>(csr: &Csr, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", csr.nrows(), csr.ncols(), csr.nnz())?;
    for (r, c, v) in csr.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn edge_list_round_trips() {
        let g = Graph::from_directed_edges(4, &[(0, 1), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf), Some(4)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn edge_list_skips_comments_and_infers_size() {
        let text = "# a comment\n0 1\n\n5 2\n";
        let g = read_edge_list(Cursor::new(text), None).unwrap();
        assert_eq!(g.vertices(), 6);
        assert_eq!(g.edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list(Cursor::new("0 x\n"), None).unwrap_err();
        assert!(matches!(err, ReadError::Parse { line: 1, .. }));
        let err = read_edge_list(Cursor::new("7\n"), None).unwrap_err();
        assert!(matches!(err, ReadError::Parse { .. }));
    }

    #[test]
    fn edge_list_rejects_edges_beyond_declared_size() {
        let err = read_edge_list(Cursor::new("0 9\n"), Some(3)).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn matrix_market_round_trips() {
        let mut coo = Coo::new(3, 4);
        coo.push(0, 1, 1.5);
        coo.push(2, 3, -2.0);
        let csr = Csr::from_coo(&coo);
        let mut buf = Vec::new();
        write_matrix_market(&csr, &mut buf).unwrap();
        let back = read_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(back, csr);
    }

    #[test]
    fn matrix_market_symmetric_mirrors_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    3 3 2\n\
                    2 1 5.0\n\
                    3 3 1.0\n";
        let csr = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(csr.get(1, 0), Some(5.0));
        assert_eq!(csr.get(0, 1), Some(5.0));
        assert_eq!(csr.get(2, 2), Some(1.0));
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn matrix_market_pattern_defaults_to_one() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let csr = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(csr.get(0, 1), Some(1.0));
    }

    #[test]
    fn matrix_market_rejects_bad_header() {
        let err = read_matrix_market(Cursor::new("%%MatrixMarket matrix array real general\n"))
            .unwrap_err();
        assert!(matches!(err, ReadError::BadHeader { .. }));
        let err = read_matrix_market(Cursor::new("hello\n")).unwrap_err();
        assert!(matches!(err, ReadError::BadHeader { .. }));
    }

    #[test]
    fn matrix_market_rejects_zero_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("1-based"));
    }

    #[test]
    fn matrix_market_out_of_bounds_column_is_a_typed_error() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 7 3.0\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::IndexOutOfBounds {
                line: 3,
                row: 0,
                col: 6,
                shape: (2, 2)
            }
        ));
    }

    #[test]
    fn matrix_market_truncated_file_is_a_typed_error() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n2 2 1.0\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::Truncated {
                expected: 5,
                found: 2
            }
        ));
    }

    #[test]
    fn matrix_market_extra_entries_are_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 1.0\n2 2 1.0\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("more entries"));
    }

    #[test]
    fn matrix_market_rejects_non_finite_values() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n";
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 inf\n";
        assert!(read_matrix_market(Cursor::new(text)).is_err());
    }

    #[test]
    fn hostile_size_line_does_not_preallocate() {
        // Declares an absurd nnz; must fail with Truncated, not OOM.
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n2 2 {}\n1 1 1.0\n",
            usize::MAX
        );
        let err = read_matrix_market(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, GraphError::Truncated { found: 1, .. }));
    }

    #[test]
    fn edge_list_out_of_bounds_reports_the_line() {
        let err = read_edge_list(Cursor::new("0 1\n0 9\n"), Some(3)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::IndexOutOfBounds {
                line: 2,
                row: 0,
                col: 9,
                shape: (3, 3)
            }
        ));
    }

    #[test]
    fn injected_faults_surface_as_typed_errors() {
        use resilience::fault::{self, FaultConfig, FaultKind};
        let _armed = fault::arm(FaultConfig::new(1).point("graph.io.", FaultKind::Error, 1.0));
        let err = read_edge_list(Cursor::new("0 1\n"), None).unwrap_err();
        assert!(matches!(
            err,
            GraphError::Fault {
                site: "graph.io.edge_list"
            }
        ));
        let err = read_matrix_market(Cursor::new(
            "%%MatrixMarket matrix coordinate real general\n",
        ))
        .unwrap_err();
        assert!(matches!(err, GraphError::Fault { .. }));
    }
}
