//! Graphs, synthetic generators, and the OGB dataset catalog.
//!
//! This crate supplies every input graph the reproduction needs:
//!
//! * [`Graph`] — an adjacency-CSR wrapper with GCN-normalization helpers,
//! * [`rmat`] — the R-MAT recursive generator (the paper uses SNAP's RMAT for
//!   its Figure 2 scale/density sweeps and the `power-16`/`power-22` graphs
//!   of Figure 9),
//! * [`generators`] — Erdős–Rényi and regular-degree generators,
//! * [`datasets`] — the Open Graph Benchmark catalog of Table I, with exact
//!   published `|V|`/`|E|` for the analytical models and *scaled* synthetic
//!   materialization for functional/simulated runs,
//! * [`reorder`] — locality-aware vertex orderings (degree / BFS / RCM)
//!   and the [`ReorderedGraph`] wrapper that keeps GCN results consistent
//!   across the relabeling.
//!
//! # Examples
//!
//! ```
//! use graph::{Graph, rmat::RmatConfig};
//!
//! let g = Graph::rmat(&RmatConfig::power_law(10, 8), 42);
//! assert_eq!(g.vertices(), 1024);
//! assert!(g.edges() > 0);
//! let a_hat = g.normalized_adjacency().unwrap();
//! assert_eq!(a_hat.nrows(), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Degree distributions and other structural statistics.
pub mod analysis;
/// Synthetic stand-ins for the OGB datasets used in the paper.
pub mod datasets;
/// Deterministic graph generators (ring, grid, star, …).
pub mod generators;
/// The core CSR-adjacency [`Graph`] type.
pub mod graph_type;
/// Edge-list / metadata serialization.
pub mod io;
/// Locality-aware vertex reordering (degree sort, RCM, clustering).
pub mod reorder;
/// R-MAT scale-free graph generation.
pub mod rmat;
/// Neighborhood sampling into induced [`Subgraph`]s.
pub mod sampling;

pub use datasets::{DatasetStats, OgbDataset};
pub use graph_type::Graph;
pub use io::GraphError;
pub use reorder::{ReorderKind, ReorderedGraph};
pub use rmat::RmatConfig;
pub use sampling::Subgraph;
