//! Neighbourhood sampling and random walks.
//!
//! The paper's GPU baseline falls back to *full-neighbourhood sampling* for
//! graphs that exceed device memory (Section III-C), and its Discussion
//! section points at neighbour-sampling GNNs (GraphSAGE, PinSAGE) and
//! random walks as latency-bound workloads PIUMA accelerates well. This
//! module provides those substrates:
//!
//! * [`full_neighborhood`] — the L-hop expansion used by layer-wise GCN
//!   sampling (every in-neighbour, no subsampling),
//! * [`sample_neighbors`] — GraphSAGE-style fixed-fanout sampling,
//! * [`random_walk`] — uniform random walks (the PinSAGE building block),
//! * [`Subgraph`] — an induced subgraph with a vertex mapping back to the
//!   parent graph, ready for mini-batch inference.

use crate::graph_type::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::{Coo, Csr};
use std::collections::HashMap;

/// An induced subgraph of a parent [`Graph`]: the sampled adjacency plus
/// the mapping from local vertex ids to parent vertex ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgraph {
    /// Adjacency over the local vertex ids.
    pub adjacency: Csr,
    /// `vertices[local] = parent` mapping.
    pub vertices: Vec<usize>,
}

impl Subgraph {
    /// Number of vertices in the subgraph.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The local id of a parent vertex, if present.
    pub fn local_id(&self, parent: usize) -> Option<usize> {
        self.vertices.iter().position(|&v| v == parent)
    }
}

/// Expands `seeds` by `hops` levels of *all* in-neighbours and returns the
/// induced subgraph — the "full-neighbourhood sampling" the paper uses for
/// a fair GPU comparison on `papers`.
///
/// Vertices are ordered seeds-first, then by discovery order, so the first
/// `seeds.len()` rows of any feature matrix built for the subgraph
/// correspond to the seeds.
pub fn full_neighborhood(graph: &Graph, seeds: &[usize], hops: usize) -> Subgraph {
    let adj = graph.adjacency();
    let mut order: Vec<usize> = Vec::new();
    let mut local: HashMap<usize, usize> = HashMap::new();
    for &s in seeds {
        assert!(s < graph.vertices(), "seed {s} out of range");
        local.entry(s).or_insert_with(|| {
            order.push(s);
            order.len() - 1
        });
    }
    let mut frontier: Vec<usize> = order.clone();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in adj.row_cols(u) {
                let v = v as usize;
                if let std::collections::hash_map::Entry::Vacant(e) = local.entry(v) {
                    e.insert(order.len());
                    order.push(v);
                    next.push(v);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    induce(adj, &order, &local)
}

/// GraphSAGE-style sampling: expands `seeds` by `hops` levels, keeping at
/// most `fanout` uniformly sampled in-neighbours per vertex per level.
pub fn sample_neighbors(
    graph: &Graph,
    seeds: &[usize],
    hops: usize,
    fanout: usize,
    seed: u64,
) -> Subgraph {
    let adj = graph.adjacency();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = Vec::new();
    let mut local: HashMap<usize, usize> = HashMap::new();
    for &s in seeds {
        assert!(s < graph.vertices(), "seed {s} out of range");
        local.entry(s).or_insert_with(|| {
            order.push(s);
            order.len() - 1
        });
    }
    let mut frontier: Vec<usize> = order.clone();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &u in &frontier {
            let neighbors = adj.row_cols(u);
            let take = fanout.min(neighbors.len());
            for _ in 0..take {
                let v = neighbors[rng.gen_range(0..neighbors.len())] as usize;
                if let std::collections::hash_map::Entry::Vacant(e) = local.entry(v) {
                    e.insert(order.len());
                    order.push(v);
                    next.push(v);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    induce(adj, &order, &local)
}

/// Builds the induced adjacency over the selected vertex set.
fn induce(adj: &Csr, order: &[usize], local: &HashMap<usize, usize>) -> Subgraph {
    let n = order.len();
    let mut coo = Coo::new(n, n);
    for (lu, &u) in order.iter().enumerate() {
        for (&v, &w) in adj.row_cols(u).iter().zip(adj.row_values(u)) {
            if let Some(&lv) = local.get(&(v as usize)) {
                coo.push(lu, lv, w);
            }
        }
    }
    Subgraph {
        adjacency: Csr::from_coo(&coo),
        vertices: order.to_vec(),
    }
}

/// Performs a uniform random walk of `length` steps starting at `start`,
/// returning the visited vertices (including the start). The walk stops
/// early at a vertex with no out-neighbours.
///
/// Random walks are the access pattern the paper calls "known to be latency
/// bound" — each step is a dependent, uncached remote read.
pub fn random_walk(graph: &Graph, start: usize, length: usize, seed: u64) -> Vec<usize> {
    assert!(start < graph.vertices(), "start vertex out of range");
    let adj = graph.adjacency();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut path = Vec::with_capacity(length + 1);
    let mut u = start;
    path.push(u);
    for _ in 0..length {
        let neighbors = adj.row_cols(u);
        if neighbors.is_empty() {
            break;
        }
        u = neighbors[rng.gen_range(0..neighbors.len())] as usize;
        path.push(u);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::RmatConfig;

    fn test_graph() -> Graph {
        Graph::rmat(&RmatConfig::power_law(8, 8), 3)
    }

    #[test]
    fn full_neighborhood_contains_all_one_hop_neighbors() {
        let g = test_graph();
        let seed_vertex = (0..g.vertices())
            .find(|&v| g.adjacency().row_nnz(v) > 0)
            .expect("graph has edges");
        let sub = full_neighborhood(&g, &[seed_vertex], 1);
        assert_eq!(sub.vertices[0], seed_vertex);
        for &v in g.adjacency().row_cols(seed_vertex) {
            assert!(sub.local_id(v as usize).is_some(), "missing neighbour {v}");
        }
        sub.adjacency.validate().unwrap();
    }

    #[test]
    fn induced_edges_exist_in_parent() {
        let g = test_graph();
        let sub = full_neighborhood(&g, &[0, 1, 2], 1);
        for (lu, lv, _) in sub.adjacency.iter() {
            let (u, v) = (sub.vertices[lu], sub.vertices[lv]);
            assert!(
                g.adjacency().get(u, v).is_some(),
                "edge ({u},{v}) not in parent"
            );
        }
    }

    #[test]
    fn deeper_expansion_is_monotone() {
        let g = test_graph();
        let one = full_neighborhood(&g, &[0], 1).len();
        let two = full_neighborhood(&g, &[0], 2).len();
        assert!(two >= one);
    }

    #[test]
    fn fanout_bounds_growth() {
        let g = test_graph();
        let seeds = [0usize];
        let sampled = sample_neighbors(&g, &seeds, 2, 2, 7);
        // Level 1 adds <=2, level 2 adds <=2 per frontier vertex.
        assert!(sampled.len() <= 1 + 2 + 4);
        let full = full_neighborhood(&g, &seeds, 2);
        assert!(sampled.len() <= full.len());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = test_graph();
        let a = sample_neighbors(&g, &[3, 4], 2, 3, 11);
        let b = sample_neighbors(&g, &[3, 4], 2, 3, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn random_walk_follows_edges() {
        let g = test_graph();
        let path = random_walk(&g, 1, 20, 5);
        assert_eq!(path[0], 1);
        for w in path.windows(2) {
            assert!(
                g.adjacency().get(w[0], w[1]).is_some(),
                "walk jumped {} -> {} without an edge",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn random_walk_stops_at_sinks() {
        let g = Graph::from_directed_edges(3, &[(0, 1)]);
        let path = random_walk(&g, 0, 10, 1);
        assert_eq!(path, vec![0, 1]);
    }

    #[test]
    fn duplicate_seeds_are_deduplicated() {
        let g = test_graph();
        let sub = full_neighborhood(&g, &[5, 5, 5], 0);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.vertices, vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let g = Graph::from_directed_edges(2, &[(0, 1)]);
        full_neighborhood(&g, &[9], 1);
    }
}
