//! Fixture-driven loader hardening: every malformed file in
//! `tests/fixtures/` must come back as a typed [`GraphError`], never a
//! panic, and the well-formed control fixture must still load.

use graph::io::{read_edge_list, read_matrix_market, GraphError};
use std::io::Cursor;

#[test]
fn truncated_matrix_market_is_reported_with_counts() {
    let err = read_matrix_market(Cursor::new(include_str!("fixtures/truncated.mtx"))).unwrap_err();
    assert!(matches!(
        err,
        GraphError::Truncated {
            expected: 6,
            found: 3
        }
    ));
}

#[test]
fn out_of_bounds_column_is_reported_with_its_line() {
    let err = read_matrix_market(Cursor::new(include_str!("fixtures/oob_column.mtx"))).unwrap_err();
    assert!(matches!(
        err,
        GraphError::IndexOutOfBounds {
            line: 5,
            row: 1,
            col: 8,
            shape: (3, 3)
        }
    ));
}

#[test]
fn array_format_header_is_rejected() {
    let err = read_matrix_market(Cursor::new(include_str!("fixtures/bad_header.mtx"))).unwrap_err();
    assert!(matches!(err, GraphError::BadHeader { .. }));
}

#[test]
fn non_finite_entry_is_rejected() {
    let err = read_matrix_market(Cursor::new(include_str!("fixtures/nonfinite.mtx"))).unwrap_err();
    assert!(err.to_string().contains("non-finite"));
}

#[test]
fn edge_list_beyond_pinned_vertex_count_is_rejected() {
    let err =
        read_edge_list(Cursor::new(include_str!("fixtures/oob_edges.txt")), Some(4)).unwrap_err();
    assert!(matches!(
        err,
        GraphError::IndexOutOfBounds {
            row: 2,
            col: 7,
            shape: (4, 4),
            ..
        }
    ));
}

#[test]
fn well_formed_control_fixture_loads_and_validates() {
    let csr = read_matrix_market(Cursor::new(include_str!("fixtures/valid.mtx"))).unwrap();
    assert_eq!(csr.shape(), (4, 4));
    // Symmetric: 3 off-diagonal entries mirrored + 1 diagonal.
    assert_eq!(csr.nnz(), 7);
    csr.validate().unwrap();
}
