//! Property tests: the loaders are total functions over arbitrary bytes —
//! any input yields `Ok` or a typed [`GraphError`], never a panic.

use graph::io::{read_edge_list, read_matrix_market};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    #[test]
    fn edge_list_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..255, 0..512)) {
        let _ = read_edge_list(Cursor::new(bytes.clone()), None);
        let _ = read_edge_list(Cursor::new(bytes), Some(8));
    }

    #[test]
    fn matrix_market_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..255, 0..512)) {
        let _ = read_matrix_market(Cursor::new(bytes));
    }

    /// Near-miss inputs: a valid header followed by arbitrary printable
    /// garbage reaches the entry parser instead of dying at the header.
    #[test]
    fn matrix_market_never_panics_past_a_valid_header(bytes in proptest::collection::vec(9u8..127, 0..256)) {
        let body: String = bytes
            .iter()
            .map(|&b| if b.is_ascii_graphic() || b == b' ' { b as char } else { '\n' })
            .collect();
        let text = format!("%%MatrixMarket matrix coordinate real general\n{body}");
        let _ = read_matrix_market(Cursor::new(text));
    }

    /// Structured fuzz: random sizes and entries, some out of bounds, some
    /// duplicated. Every accepted matrix must pass structural validation.
    #[test]
    fn accepted_matrices_always_validate(
        rows in 1usize..12,
        cols in 1usize..12,
        entries in proptest::collection::vec((1usize..16, 1usize..16, -8i32..8), 0..24),
    ) {
        let mut text = format!(
            "%%MatrixMarket matrix coordinate real general\n{rows} {cols} {}\n",
            entries.len()
        );
        for (r, c, v) in &entries {
            text.push_str(&format!("{r} {c} {v}\n"));
        }
        if let Ok(csr) = read_matrix_market(Cursor::new(text)) {
            prop_assert!(csr.validate().is_ok());
            prop_assert_eq!(csr.shape(), (rows, cols));
        }
    }

    /// Edge lists with random ids and a pinned vertex count: either every
    /// id is in range (and the graph loads) or the error is typed.
    #[test]
    fn pinned_edge_lists_load_or_reject(
        n in 1usize..10,
        edges in proptest::collection::vec((0usize..16, 0usize..16), 0..24),
    ) {
        let mut text = String::new();
        for (u, v) in &edges {
            text.push_str(&format!("{u} {v}\n"));
        }
        let all_in_range = edges.iter().all(|&(u, v)| u < n && v < n);
        let got = read_edge_list(Cursor::new(text), Some(n));
        prop_assert_eq!(got.is_ok(), all_in_range);
        if let Ok(g) = got {
            prop_assert_eq!(g.vertices(), n);
        }
    }
}
