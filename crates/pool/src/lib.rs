//! Persistent work-sharing thread pool for the parallel kernels.
//!
//! # Spawn-once contract
//!
//! A [`ThreadPool`] spawns its worker threads **once**, at construction.
//! Every subsequent [`ThreadPool::broadcast`] reuses those same OS threads;
//! no kernel invocation ever spawns a thread. The global pool returned by
//! [`global`] is created on first use and lives for the remainder of the
//! process, so in steady state the only threads in the system are the
//! caller and the pool's workers. The `pool_reuses_same_threads` test pins
//! this down by intersecting observed `ThreadId`s across repeated
//! broadcasts.
//!
//! The single exception is crash recovery: if a worker thread *dies* (a
//! panic escaped outside any share — in practice only injected faults, see
//! [`resilience::fault`]), [`ThreadPool::heal`] reaps it and spawns a
//! replacement on the same slot. A slot that keeps crashing is quarantined
//! after [`QUARANTINE_AFTER`] respawns; broadcasts still complete because
//! the calling thread always participates. [`ThreadPool::health`] reports
//! live/quarantined/respawned counts plus the process-wide poisoned-lock
//! recovery total from [`resilience::audit`].
//!
//! # Execution model
//!
//! [`ThreadPool::broadcast`] publishes a job of `shares` independent units
//! of work. Workers (and the calling thread, which always participates)
//! repeatedly claim the next unclaimed share index from an atomic counter
//! and run the job closure on it — the same dynamic chunk-claiming pattern
//! as [`DynamicCounter`], which lives here so both `matrix` and `kernels`
//! can share it. Dynamic claiming is what gives the vertex-parallel SpMM
//! its load balance on power-law graphs (Section II-C of the PIUMA GCN
//! paper): a worker stuck on a hub row simply claims fewer shares.
//!
//! A broadcast may cap its parallelism below the pool width (the
//! `executors` argument), letting kernels honour a `threads` parameter
//! smaller than the machine without re-creating pools.
//!
//! # Panics
//!
//! A panicking share does not kill a worker: the payload is captured,
//! remaining shares still run, and the first payload is re-raised on the
//! **calling** thread after the broadcast completes
//! ([`ThreadPool::broadcast_caught`] returns it as a typed
//! [`BroadcastError`] instead). The pool stays fully usable afterwards.
//! Locks poisoned by panicking shares are recovered — and the recovery
//! counted — through [`resilience::audit`].
//!
//! # Safety
//!
//! This crate contains the single `unsafe` block of the workspace: the job
//! closure reference is lifetime-erased to a raw pointer so persistent
//! workers can call a stack-borrowed closure. Soundness is argued at the
//! erasure site: `broadcast` does not return until every share has
//! finished, and no worker dereferences the pointer after the last share
//! completes, so the referent strictly outlives all dereferences.

#![warn(missing_docs)]

// BOUNDS: the only non-test indexing is the scratch arena's `&buf[..len]`
// and `&mut buf[offset..offset + len]`, both taken immediately after the
// buffer is grown to at least `offset + len` entries.

pub use resilience;

use resilience::audit;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle, ThreadId};
use std::time::{Duration, Instant};

/// Dynamic work distribution: a shared counter from which each worker
/// claims the next chunk of `chunk` items, up to `limit`.
///
/// This is the software analogue of the paper's dynamically load-balanced
/// vertex-parallel SpMM: chunk granularity bounds claim traffic while the
/// shared counter keeps fast workers busy when rows are skewed.
#[derive(Debug, Default)]
pub struct DynamicCounter {
    next: AtomicUsize,
}

impl DynamicCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        DynamicCounter {
            next: AtomicUsize::new(0),
        }
    }

    /// Claims the next chunk of up to `chunk` items below `limit`.
    /// Returns the half-open range `(start, end)`, or `None` when the
    /// range `[0, limit)` is exhausted.
    pub fn claim(&self, chunk: usize, limit: usize) -> Option<(usize, usize)> {
        let chunk = chunk.max(1);
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= limit {
            return None;
        }
        Some((start, (start + chunk).min(limit)))
    }
}

/// Type-erased pointer to the broadcast closure.
///
/// Dereferenced only between job publication and the completion of the
/// final share; `broadcast` blocks until then, keeping the referent alive.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer is only sent to workers that dereference it while the
// originating `broadcast` frame — which owns the unique borrow — is alive.
unsafe impl Send for TaskPtr {}
// SAFETY: `&TaskPtr` only exposes the raw pointer, and every dereference
// goes through the `Sync` pointee, so concurrent shared access is sound.
unsafe impl Sync for TaskPtr {}

/// One published broadcast: shared claim/completion state.
struct JobCore {
    task: TaskPtr,
    shares: usize,
    /// Next unclaimed share index.
    next: AtomicUsize,
    /// Count of finished shares; completion when it reaches `shares`.
    finished: AtomicUsize,
    /// Worker-participation budget (callers always participate for free).
    budget: AtomicUsize,
    /// First captured panic payload from any share.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Completion signal for the caller.
    done_mx: Mutex<()>,
    done_cv: Condvar,
}

impl JobCore {
    /// Claims and runs shares until none remain. Returns when the counter
    /// is exhausted (not necessarily when all shares have *finished*).
    fn run(&self) {
        loop {
            let share = self.next.fetch_add(1, Ordering::Relaxed);
            if share >= self.shares {
                return;
            }
            // SAFETY: a share can only be claimed before `finished`
            // reaches `shares`, and `broadcast` keeps the closure alive
            // until that point (see module docs).
            let task = unsafe { &*self.task.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                // lint:allow(L008): inside catch_unwind — an injected panic
                // is captured like any share panic; disabled cost is one
                // relaxed load.
                resilience::fault_point!("pool.share");
                task(share)
            })) {
                let mut slot = audit::recover("pool.job_panic", &self.panic);
                slot.get_or_insert(payload);
            }
            // PAIRS: pool.finished — AcqRel makes the share's writes
            // visible to whoever observes completion, and the caller's
            // Acquire load pairs with it.
            let done = self.finished.fetch_add(1, Ordering::AcqRel) + 1;
            if done == self.shares {
                let _g = audit::recover("pool.done", &self.done_mx);
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every share has finished.
    fn wait_done(&self) {
        let mut g = audit::recover("pool.done", &self.done_mx);
        // PAIRS: pool.finished — Acquire pairs with the workers' AcqRel
        // increments, ordering their share writes before our return.
        while self.finished.load(Ordering::Acquire) < self.shares {
            g = audit::recover_wait("pool.done", &self.done_cv, g);
        }
    }
}

/// Job slot shared between the submitting thread and the workers.
struct Slot {
    /// Monotonic job generation; workers run each generation once.
    generation: u64,
    job: Option<Arc<JobCore>>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    job_ready: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Slot> {
        audit::recover("pool.slot", &self.slot)
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut last_gen = 0u64;
    loop {
        let core = {
            let mut slot = shared.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation > last_gen {
                    if let Some(core) = &slot.job {
                        last_gen = slot.generation;
                        break Arc::clone(core);
                    }
                }
                slot = audit::recover_wait("pool.slot", &shared.job_ready, slot);
            }
        };
        // Worker-death injection site: deliberately OUTSIDE any lock and
        // BEFORE the budget decrement, so a killed worker never holds the
        // slot mutex and never strands a claimed share — the broadcast
        // still completes through the caller, and `heal` respawns us.
        // lint:allow(L008): disabled cost is one relaxed load; placement
        // argued above.
        resilience::fault_point!("pool.worker");
        // Respect the broadcast's executor cap: workers beyond the budget
        // sit this job out.
        let admitted = core
            .budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok();
        if admitted {
            core.run();
        }
    }
}

/// Consecutive crashes after which a worker slot is no longer respawned.
///
/// Each crash-and-respawn cycle increments the slot's counter; reaching
/// this bound marks the slot quarantined. The pool keeps working at
/// reduced width (the caller always participates in broadcasts).
pub const QUARANTINE_AFTER: u32 = 3;

/// Default quiet window after which a healed slot's strike counter
/// resets (see [`ThreadPool::set_strike_window`]).
pub const DEFAULT_STRIKE_WINDOW: Duration = Duration::from_secs(60);

/// One worker slot: the live handle plus its crash-recovery history.
struct WorkerSlot {
    /// `None` while quarantined (or mid-reap).
    handle: Option<JoinHandle<()>>,
    id: ThreadId,
    /// Consecutive crashes observed on this slot inside the strike
    /// window; reset by [`ThreadPool::heal`] once a respawned worker
    /// stays alive for the whole window.
    respawns: u32,
    /// When this slot's most recent crash was reaped.
    last_crash: Option<Instant>,
    quarantined: bool,
}

fn spawn_worker(index: usize, shared: Arc<Shared>) -> JoinHandle<()> {
    thread::Builder::new()
        // lint:allow(L005): worker naming at construction/respawn only.
        .name(format!("pool-worker-{index}"))
        .spawn(move || worker_loop(shared))
        .expect("failed to spawn pool worker")
}

/// A share of a [`ThreadPool::broadcast_caught`] panicked; the first
/// captured payload, rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastError {
    /// The panic payload as a string (see
    /// [`resilience::retry::panic_message`]).
    pub message: String,
}

impl std::fmt::Display for BroadcastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "broadcast share panicked: {}", self.message)
    }
}

impl std::error::Error for BroadcastError {}

/// Liveness snapshot reported by [`ThreadPool::health`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolHealth {
    /// Worker count the pool was constructed with.
    pub configured_workers: usize,
    /// Workers currently alive (spawned and not finished).
    pub live_workers: usize,
    /// Slots retired after [`QUARANTINE_AFTER`] crashes.
    pub quarantined_workers: usize,
    /// Total crash-respawns over the pool's lifetime.
    pub respawned_total: u64,
    /// Process-wide poisoned-lock recoveries ([`audit::poison_recoveries`]).
    pub poison_recoveries: u64,
}

/// A persistent pool of worker threads (see module docs for the
/// spawn-once contract, crash recovery, and execution model).
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<WorkerSlot>>,
    /// Worker count at construction; `width` stays stable across respawns
    /// and quarantines so kernel strategy resolution is deterministic.
    configured: usize,
    respawned: AtomicU64,
    /// Strike-reset quiet window in milliseconds (see
    /// [`ThreadPool::set_strike_window`]).
    strike_window_ms: AtomicU64,
    /// Serializes broadcasts: the single job slot holds one job at a time.
    submit: Mutex<()>,
    scratch: ScratchArena,
}

impl ThreadPool {
    /// Spawns a pool with `workers` worker threads. Total parallelism of a
    /// full-width broadcast is `workers + 1` because the caller always
    /// participates; `ThreadPool::new(0)` is valid and purely sequential.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
        });
        // lint:allow(L005): pool construction — runs once per process
        // under the spawn-once contract, never on the broadcast path.
        let mut slots = Vec::with_capacity(workers);
        for i in 0..workers {
            let handle = spawn_worker(i, Arc::clone(&shared));
            slots.push(WorkerSlot {
                id: handle.thread().id(),
                handle: Some(handle),
                respawns: 0,
                last_crash: None,
                quarantined: false,
            });
        }
        ThreadPool {
            shared,
            workers: Mutex::new(slots),
            configured: workers,
            respawned: AtomicU64::new(0),
            strike_window_ms: AtomicU64::new(DEFAULT_STRIKE_WINDOW.as_millis() as u64),
            submit: Mutex::new(()),
            scratch: ScratchArena::new(),
        }
    }

    /// Maximum parallelism of a broadcast: configured workers plus the
    /// caller. Stable across crash recovery.
    pub fn width(&self) -> usize {
        self.configured + 1
    }

    /// `ThreadId`s of the current workers, in slot order. Stable for the
    /// pool's lifetime except across crash respawns — the basis of the
    /// spawn-once test.
    pub fn worker_ids(&self) -> Vec<ThreadId> {
        audit::recover("pool.workers", &self.workers)
            .iter()
            .map(|w| w.id)
            // lint:allow(L005): diagnostic accessor, not on the broadcast path.
            .collect()
    }

    /// Reusable zeroed scratch storage owned by the pool.
    pub fn scratch(&self) -> &ScratchArena {
        &self.scratch
    }

    /// Reap worker threads that died (a panic escaped the share-level
    /// `catch_unwind`) and respawn them on the same slot, quarantining
    /// slots that crashed [`QUARANTINE_AFTER`] times. Returns how many
    /// workers were respawned by this call.
    ///
    /// Runs automatically at the start of every published broadcast; the
    /// per-call cost when nothing died is one `is_finished` check (an
    /// atomic load) per slot.
    pub fn heal(&self) -> usize {
        let window = Duration::from_millis(self.strike_window_ms.load(Ordering::Relaxed));
        let mut workers = audit::recover("pool.workers", &self.workers);
        let mut respawned = 0;
        for (index, slot) in workers.iter_mut().enumerate() {
            if slot.quarantined || !slot.handle.as_ref().is_some_and(JoinHandle::is_finished) {
                // A healed slot whose replacement has stayed alive for
                // the whole quiet window has proven itself: forget its
                // strikes so an unrelated crash much later does not
                // inherit them toward quarantine.
                if !slot.quarantined
                    && slot.respawns > 0
                    && slot.last_crash.is_some_and(|at| at.elapsed() >= window)
                {
                    slot.respawns = 0;
                    slot.last_crash = None;
                }
                continue;
            }
            let Some(handle) = slot.handle.take() else {
                continue;
            };
            if handle.join().is_ok() {
                // Clean exit: only happens at shutdown; leave the slot.
                continue;
            }
            // Crashes separated by more than the quiet window are treated
            // as independent incidents, not a crash loop.
            if slot.last_crash.is_some_and(|at| at.elapsed() >= window) {
                slot.respawns = 0;
            }
            slot.respawns += 1;
            slot.last_crash = Some(Instant::now());
            self.respawned.fetch_add(1, Ordering::Relaxed);
            if slot.respawns >= QUARANTINE_AFTER {
                slot.quarantined = true;
                continue;
            }
            // Crash-recovery path: runs only after a worker death, never
            // on a healthy broadcast.
            let handle = spawn_worker(index, Arc::clone(&self.shared));
            slot.id = handle.thread().id();
            slot.handle = Some(handle);
            respawned += 1;
        }
        respawned
    }

    /// Sets the strike-reset quiet window: a healed slot that stays alive
    /// this long (and any crash arriving after this long of quiet) has
    /// its consecutive-crash counter reset, so only genuine crash *loops*
    /// reach [`QUARANTINE_AFTER`]. Defaults to [`DEFAULT_STRIKE_WINDOW`].
    pub fn set_strike_window(&self, window: Duration) {
        self.strike_window_ms
            .store(window.as_millis() as u64, Ordering::Relaxed);
    }

    /// Per-slot consecutive-crash counters (test and diagnostics hook).
    pub fn strikes(&self) -> Vec<u32> {
        audit::recover("pool.workers", &self.workers)
            .iter()
            .map(|w| w.respawns)
            // lint:allow(L005): diagnostic accessor, not on the broadcast path.
            .collect()
    }

    /// Liveness and crash-recovery counters for this pool.
    pub fn health(&self) -> PoolHealth {
        let workers = audit::recover("pool.workers", &self.workers);
        PoolHealth {
            configured_workers: self.configured,
            live_workers: workers
                .iter()
                .filter(|w| w.handle.as_ref().is_some_and(|h| !h.is_finished()))
                .count(),
            quarantined_workers: workers.iter().filter(|w| w.quarantined).count(),
            respawned_total: self.respawned.load(Ordering::Relaxed),
            poison_recoveries: audit::poison_recoveries(),
        }
    }

    /// Shared implementation of [`broadcast`](Self::broadcast) /
    /// [`broadcast_caught`](Self::broadcast_caught): runs all shares,
    /// returns the first captured panic payload instead of re-raising.
    fn broadcast_impl<F: Fn(usize) + Sync>(
        &self,
        executors: usize,
        shares: usize,
        task: F,
    ) -> Option<Box<dyn Any + Send + 'static>> {
        if shares == 0 {
            return None;
        }
        let executors = executors.clamp(1, self.width());
        if executors == 1 || shares == 1 || self.configured == 0 {
            // Inline fast path: no publication, no synchronization.
            let mut first_panic = None;
            for share in 0..shares {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                    // lint:allow(L008): inside catch_unwind, mirrors the
                    // published path's share-level injection site.
                    resilience::fault_point!("pool.share");
                    task(share)
                })) {
                    first_panic.get_or_insert(p);
                }
            }
            return first_panic;
        }

        let erased: &(dyn Fn(usize) + Sync) = &task;
        let erased: &'static (dyn Fn(usize) + Sync + 'static) =
            // SAFETY: lifetime erasure — `core.task` is dereferenced by
            // workers only while claiming shares, which is impossible once
            // `finished == shares`; `wait_done` below blocks this frame until
            // then, so `task` outlives every dereference.
            unsafe { std::mem::transmute(erased) };
        let core = Arc::new(JobCore {
            task: TaskPtr(erased as *const (dyn Fn(usize) + Sync)),
            shares,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            budget: AtomicUsize::new(executors - 1),
            panic: Mutex::new(None),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
        });

        let _submit = audit::recover("pool.submit", &self.submit);
        self.heal();
        {
            let mut slot = self.shared.lock();
            slot.generation += 1;
            slot.job = Some(Arc::clone(&core));
            self.shared.job_ready.notify_all();
        }

        core.run(); // the caller is always one of the executors
        core.wait_done();

        {
            let mut slot = self.shared.lock();
            slot.job = None; // drop the erased pointer with the job
        }

        let payload = {
            let mut slot = audit::recover("pool.job_panic", &core.panic);
            slot.take()
        };
        drop(_submit);
        payload
    }

    /// Runs `task(share)` for every `share` in `0..shares` across at most
    /// `executors` threads (the caller plus up to `executors - 1` workers),
    /// blocking until all shares finish.
    ///
    /// Shares are claimed dynamically, so callers should size them at the
    /// granularity they would hand to [`DynamicCounter`] — e.g. one share
    /// per vertex chunk or feature tile.
    ///
    /// # Panics
    ///
    /// If any share panics, the first captured payload is re-raised here
    /// after all shares have completed. The pool remains usable.
    pub fn broadcast<F: Fn(usize) + Sync>(&self, executors: usize, shares: usize, task: F) {
        if let Some(p) = self.broadcast_impl(executors, shares, task) {
            resume_unwind(p);
        }
    }

    /// Like [`broadcast`](Self::broadcast), but a panicking share yields a
    /// typed [`BroadcastError`] instead of re-raising the payload — the
    /// entry point for callers that retry or degrade rather than unwind.
    pub fn broadcast_caught<F: Fn(usize) + Sync>(
        &self,
        executors: usize,
        shares: usize,
        task: F,
    ) -> Result<(), BroadcastError> {
        match self.broadcast_impl(executors, shares, task) {
            None => Ok(()),
            Some(p) => Err(BroadcastError {
                message: resilience::retry::panic_message(p.as_ref()),
            }),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.lock();
            slot.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        let workers = audit::recover_mut("pool.drop", &mut self.workers);
        for slot in workers.iter_mut() {
            if let Some(handle) = slot.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Returns the process-wide pool, created on first use with
/// `available_parallelism() - 1` workers (the caller supplies the final
/// executor). Subsequent calls — and therefore all kernel invocations —
/// reuse the same threads.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let width = thread::available_parallelism().map_or(4, |n| n.get());
        ThreadPool::new(width.saturating_sub(1))
    })
}

/// Pool-owned reusable scratch storage.
///
/// The edge-parallel SpMM needs an `n * k` array of `AtomicU32` f32-bit
/// accumulators per call; allocating it each time dominates small-K runs.
/// The arena keeps the high-water-mark buffer alive across calls and hands
/// out zeroed views. Concurrent borrowers fall back to a fresh allocation
/// rather than blocking (the buffer is returned to the arena only if it is
/// larger than what is cached).
#[derive(Default)]
pub struct ScratchArena {
    u32_buf: Mutex<Vec<AtomicU32>>,
    f32_buf: Mutex<Vec<f32>>,
}

/// Alignment (bytes) guaranteed for slices handed out by
/// [`ScratchArena::with_f32`]: one cache line, which also covers every SIMD
/// vector width the micro-kernels use (32 B for AVX2).
pub const SCRATCH_ALIGN: usize = 64;

/// `SCRATCH_ALIGN` expressed in `f32` elements.
const SCRATCH_ALIGN_F32S: usize = SCRATCH_ALIGN / size_of::<f32>();

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// Calls `f` with a zeroed `&[AtomicU32]` of length `len`, reusing the
    /// cached buffer when possible.
    pub fn with_zeroed_u32<R>(&self, len: usize, f: impl FnOnce(&[AtomicU32]) -> R) -> R {
        let mut buf = {
            let mut cached = audit::recover("pool.scratch_u32", &self.u32_buf);
            std::mem::take(&mut *cached)
        };
        for a in buf.iter_mut() {
            *a.get_mut() = 0;
        }
        if buf.len() < len {
            buf.reserve(len - buf.len());
            while buf.len() < len {
                buf.push(AtomicU32::new(0));
            }
        }
        let result = f(&buf[..len]);
        let mut cached = audit::recover("pool.scratch_u32", &self.u32_buf);
        if cached.len() < buf.len() {
            *cached = buf;
        }
        result
    }

    /// Calls `f` with a `&mut [f32]` of length `len` whose first element is
    /// aligned to [`SCRATCH_ALIGN`] bytes, reusing the cached buffer when
    /// possible. The slice's **contents are unspecified** (stale values from
    /// earlier borrowers): callers must write before reading — the GEMM
    /// panel-packing routines, which fully overwrite every region they later
    /// read, are the intended consumers. Concurrent borrowers fall back to a
    /// fresh allocation rather than blocking.
    pub fn with_f32<R>(&self, len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
        let mut buf = {
            let mut cached = audit::recover("pool.scratch_f32", &self.f32_buf);
            std::mem::take(&mut *cached)
        };
        // Over-allocate by one alignment quantum so an aligned window of
        // `len` elements always exists, then locate it in safe code. A `Vec`
        // never moves its allocation unless it grows, so the offset computed
        // here stays valid for the borrow below.
        let need = len + SCRATCH_ALIGN_F32S;
        if buf.len() < need {
            buf.resize(need, 0.0);
        }
        let misalign = (buf.as_ptr() as usize) % SCRATCH_ALIGN;
        // `Vec<f32>` allocations are at least 4-byte aligned, so the byte
        // distance to the next 64-byte boundary is an exact element count.
        let offset = ((SCRATCH_ALIGN - misalign) % SCRATCH_ALIGN) / size_of::<f32>();
        let result = f(&mut buf[offset..offset + len]);
        let mut cached = audit::recover("pool.scratch_f32", &self.f32_buf);
        if cached.len() < buf.len() {
            *cached = buf;
        }
        result
    }

    /// Capacity (in `u32` slots) currently cached by the arena.
    pub fn cached_len(&self) -> usize {
        audit::recover("pool.scratch_u32", &self.u32_buf).len()
    }

    /// Capacity (in `f32` slots) currently cached by the arena.
    pub fn cached_f32_len(&self) -> usize {
        audit::recover("pool.scratch_f32", &self.f32_buf).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience::fault::{self, FaultConfig, FaultKind};
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn dynamic_counter_covers_range_exactly_once() {
        let c = DynamicCounter::new();
        let mut seen = [false; 103];
        while let Some((s, e)) = c.claim(8, 103) {
            for (i, slot) in seen.iter_mut().enumerate().take(e).skip(s) {
                assert!(!std::mem::replace(slot, true), "index {i} claimed twice");
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn broadcast_runs_every_share_exactly_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(4, hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "wall-clock concurrency observation; minutes under the interpreter"
    )]
    fn broadcast_observes_executor_cap() {
        let pool = ThreadPool::new(7);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.broadcast(2, 64, |_| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            thread::sleep(Duration::from_millis(1));
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "5×256 timed shares; thread-identity claim needs no interpreter"
    )]
    fn pool_reuses_same_threads() {
        let pool = ThreadPool::new(4);
        let observe = || {
            let ids = Mutex::new(HashSet::new());
            pool.broadcast(pool.width(), 256, |_| {
                thread::sleep(Duration::from_micros(50));
                ids.lock().unwrap().insert(thread::current().id());
            });
            ids.into_inner().unwrap()
        };
        let spawned: HashSet<ThreadId> = pool.worker_ids().iter().copied().collect();
        let mut caller_plus_spawned = spawned.clone();
        caller_plus_spawned.insert(thread::current().id());
        for _ in 0..5 {
            let seen = observe();
            assert!(
                seen.is_subset(&caller_plus_spawned),
                "broadcast ran on a thread that was not spawned at pool construction"
            );
        }
    }

    #[test]
    fn pool_survives_a_panicking_share() {
        let pool = ThreadPool::new(3);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(4, 32, |i| {
                if i == 7 {
                    panic!("share 7 exploded");
                }
            });
        }));
        assert!(r.is_err(), "panic payload must reach the caller");
        // All workers must still be alive and serving broadcasts.
        let hits = AtomicUsize::new(0);
        pool.broadcast(4, 100, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn broadcast_caught_returns_typed_error() {
        let pool = ThreadPool::new(2);
        let err = pool
            .broadcast_caught(3, 16, |i| {
                if i == 3 {
                    panic!("typed failure {i}");
                }
            })
            .unwrap_err();
        assert!(err.message.contains("typed failure 3"), "{err}");
        // And a clean broadcast afterwards succeeds.
        pool.broadcast_caught(3, 16, |_| {}).unwrap();
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "deadline-polling respawn drill; real-time waits stall under miri"
    )]
    fn dead_workers_are_respawned_on_the_same_slots() {
        let pool = ThreadPool::new(3);
        let before: HashSet<ThreadId> = pool.worker_ids().into_iter().collect();
        {
            let _quiet = resilience::retry::quiet_panics();
            let _armed =
                fault::arm(FaultConfig::new(9).point("pool.worker", FaultKind::Panic, 1.0));
            // Workers die at the injection site; the caller still completes
            // every share. Shares are slowed down so the workers actually
            // wake up and reach the injection site before the caller
            // drains the whole job.
            let hits = AtomicUsize::new(0);
            pool.broadcast(pool.width(), 64, |_| {
                thread::sleep(Duration::from_millis(1));
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 64);
        }
        // Wait for the kills to land, then heal and verify replacements.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut respawned = 0;
        while respawned == 0 && Instant::now() < deadline {
            respawned = pool.heal();
            thread::sleep(Duration::from_millis(5));
        }
        assert!(respawned > 0, "no worker was respawned");
        let health = pool.health();
        assert_eq!(health.configured_workers, 3);
        assert!(health.respawned_total >= respawned as u64);
        let after: HashSet<ThreadId> = pool.worker_ids().into_iter().collect();
        assert_ne!(before, after, "respawned workers must be new threads");
        // The healed pool serves broadcasts on its new workers.
        let hits = AtomicUsize::new(0);
        pool.broadcast(pool.width(), 128, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 128);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "deadline-polling quarantine drill; real-time waits stall under miri"
    )]
    fn crashing_slots_are_quarantined_after_bound() {
        let pool = ThreadPool::new(1);
        let _quiet = resilience::retry::quiet_panics();
        let _armed = fault::arm(FaultConfig::new(3).point("pool.worker", FaultKind::Panic, 1.0));
        // Every published broadcast kills the (re)spawned worker; heal on
        // the next broadcast reaps it. After QUARANTINE_AFTER crashes the
        // slot must stop being respawned.
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.health().quarantined_workers == 0 && Instant::now() < deadline {
            pool.broadcast(pool.width(), 8, |_| {});
            thread::sleep(Duration::from_millis(2));
            pool.heal();
        }
        let health = pool.health();
        assert_eq!(
            health.quarantined_workers, 1,
            "slot not quarantined: {health:?}"
        );
        assert_eq!(health.respawned_total, u64::from(QUARANTINE_AFTER));
        // Still fully functional through the caller.
        let hits = AtomicUsize::new(0);
        pool.broadcast(pool.width(), 32, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "deadline-polling strike drill; real-time waits stall under miri"
    )]
    fn quiet_window_resets_strikes_after_successful_heal() {
        let pool = ThreadPool::new(1);
        pool.set_strike_window(Duration::from_millis(50));
        let _quiet = resilience::retry::quiet_panics();
        // Kill the worker QUARANTINE_AFTER + 1 times, but let each healed
        // replacement survive past the quiet window before the next kill:
        // strikes reset between incidents, so the slot never quarantines.
        for round in 0..=QUARANTINE_AFTER {
            {
                let _armed =
                    fault::arm(FaultConfig::new(9).point("pool.worker", FaultKind::Panic, 1.0));
                pool.broadcast(pool.width(), 64, |_| {
                    thread::sleep(Duration::from_millis(1));
                });
            }
            // Reap the crash, respawn the slot.
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut respawned = 0;
            while respawned == 0 && Instant::now() < deadline {
                respawned = pool.heal();
                thread::sleep(Duration::from_millis(2));
            }
            assert!(respawned > 0, "round {round}: worker was not respawned");
            assert_eq!(pool.strikes(), vec![1], "round {round}: one fresh strike");
            // Survive the quiet window, then heal again: strike forgotten.
            thread::sleep(Duration::from_millis(60));
            pool.heal();
            assert_eq!(pool.strikes(), vec![0], "round {round}: strike reset");
        }
        let health = pool.health();
        assert_eq!(health.quarantined_workers, 0, "no crash loop: {health:?}");
        assert_eq!(
            health.respawned_total,
            u64::from(QUARANTINE_AFTER) + 1,
            "every incident respawned the slot"
        );
    }

    #[test]
    fn sequential_pool_still_works() {
        let pool = ThreadPool::new(0);
        let sum = AtomicUsize::new(0);
        pool.broadcast(1, 10, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn zero_shares_is_a_noop() {
        let pool = ThreadPool::new(2);
        pool.broadcast(3, 0, |_| panic!("must not run"));
    }

    #[test]
    fn scratch_arena_reuses_buffer_and_zeroes() {
        let arena = ScratchArena::new();
        arena.with_zeroed_u32(64, |s| {
            for a in s {
                a.store(0xDEAD_BEEF, Ordering::Relaxed);
            }
        });
        assert_eq!(arena.cached_len(), 64);
        arena.with_zeroed_u32(32, |s| {
            assert!(s.iter().all(|a| a.load(Ordering::Relaxed) == 0));
        });
        // Growing keeps the larger buffer cached.
        arena.with_zeroed_u32(128, |s| assert_eq!(s.len(), 128));
        assert_eq!(arena.cached_len(), 128);
    }

    #[test]
    fn f32_scratch_is_aligned_and_reused() {
        let arena = ScratchArena::new();
        arena.with_f32(100, |s| {
            assert_eq!(s.len(), 100);
            assert_eq!(s.as_ptr() as usize % SCRATCH_ALIGN, 0, "not 64B-aligned");
            s.fill(3.25);
        });
        assert!(arena.cached_f32_len() >= 100);
        // A second borrow reuses the cached buffer and stays aligned; the
        // contents are unspecified, so only alignment and length are pinned.
        arena.with_f32(64, |s| {
            assert_eq!(s.len(), 64);
            assert_eq!(s.as_ptr() as usize % SCRATCH_ALIGN, 0);
        });
        // Growing works and keeps the larger buffer cached.
        arena.with_f32(5000, |s| assert_eq!(s.len(), 5000));
        assert!(arena.cached_f32_len() >= 5000);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        global().broadcast(global().width(), 16, |_| {});
    }
}
