//! The modeled concurrency primitives: what model code is written
//! against instead of `std::sync`.
//!
//! Every handle is a small ID into the per-execution runtime state; all
//! operations take the calling thread's [`Th`] context, which carries
//! the scheduling token machinery. Atomics follow message-clock
//! semantics: a release store publishes the writer's vector clock with
//! the value, an acquire load joins it, a relaxed store *breaks* the
//! chain (publishes nothing) and a relaxed load joins nothing —
//! read-modify-writes preserve the release sequence like the C++ memory
//! model prescribes. `SeqCst` is modeled as `AcqRel` (no global order is
//! enforced; none of the workspace handshakes relies on one).

use crate::clock::VClock;
use crate::rt::{self, AtomicSt, CellSt, MutexSt, Rt};
use resilience::audit;
use std::sync::{Arc, Mutex as StdMutex};

/// Memory ordering for [`MAtomic`] operations, mirroring
/// `std::sync::atomic::Ordering`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// No synchronization: the value moves, the clocks do not.
    Relaxed,
    /// Loads join the clock published by the matching release chain.
    Acquire,
    /// Stores publish the writer's clock with the value.
    Release,
    /// Both of the above (read-modify-write operations).
    AcqRel,
    /// Modeled as [`Ordering::AcqRel`]; see the module docs.
    SeqCst,
}

impl Ordering {
    fn acquires(self) -> bool {
        matches!(self, Self::Acquire | Self::AcqRel | Self::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, Self::Release | Self::AcqRel | Self::SeqCst)
    }
}

/// A modeled thread's execution context: every shim operation needs one,
/// which is how operations stay attributed to the right scheduler slot.
pub struct Th {
    pub(crate) rt: Arc<Rt>,
    pub(crate) tid: usize,
}

/// Join handle for a modeled thread (see [`Th::spawn`]).
#[derive(Clone, Copy, Debug)]
pub struct MJoin {
    tid: usize,
}

impl MJoin {
    /// The modeled thread's ID (usable with [`Th::unpark`]).
    pub fn id(&self) -> usize {
        self.tid
    }
}

impl Th {
    /// This thread's modeled ID (0 is the root).
    pub fn id(&self) -> usize {
        self.tid
    }

    /// Spawns a modeled thread running `f` under the explorer's control.
    pub fn spawn(&self, f: impl FnOnce(&Th) + Send + 'static) -> MJoin {
        MJoin {
            tid: rt::spawn_model(&self.rt, self.tid, f),
        }
    }

    /// Joins a modeled thread (happens-before edge from its last op).
    pub fn join(&self, h: MJoin) {
        self.rt.join_thread(self.tid, h.tid);
    }

    /// Creates a modeled atomic with the given initial value.
    pub fn atomic(&self, init: u64) -> MAtomic {
        let id = self.rt.alloc(self.tid, |st| {
            st.atomics.push(AtomicSt {
                value: init,
                msg: VClock::new(),
            });
            st.atomics.len() - 1
        });
        MAtomic { id }
    }

    /// Creates a modeled mutex (a pure lock; pair it with [`MCell`] data,
    /// whose accesses the race detector validates).
    pub fn mutex(&self, name: &'static str) -> MMutex {
        let id = self.rt.alloc(self.tid, |st| {
            st.mutexes.push(MutexSt {
                holder: None,
                release: VClock::new(),
                name,
            });
            st.mutexes.len() - 1
        });
        MMutex { id }
    }

    /// Creates a modeled condition variable.
    pub fn condvar(&self) -> MCondvar {
        let id = self.rt.alloc(self.tid, |st| {
            st.condvars += 1;
            st.condvars - 1
        });
        MCondvar { id }
    }

    /// Creates a modeled un-synchronized data cell holding `init`.
    /// Accesses are race-checked against the happens-before clocks.
    pub fn cell<T: Send + 'static>(&self, name: &'static str, init: T) -> MCell<T> {
        let id = self.rt.alloc(self.tid, |st| {
            st.cells.push(CellSt {
                write: None,
                reads: Vec::new(),
                name,
            });
            st.cells.len() - 1
        });
        MCell {
            id,
            data: Arc::new(StdMutex::new(init)),
        }
    }

    /// Parks this thread until a token from [`Th::unpark`] is available
    /// (token semantics of `std::thread::park`).
    pub fn park(&self) {
        self.rt.park(self.tid);
    }

    /// Makes `target`'s park token available, unblocking it if parked.
    pub fn unpark(&self, target: usize) {
        self.rt.unpark(self.tid, target);
    }
}

/// A modeled atomic `u64`.
#[derive(Clone, Copy, Debug)]
pub struct MAtomic {
    id: usize,
}

impl MAtomic {
    /// Atomic load; `Acquire`-class orderings join the published clock.
    pub fn load(&self, th: &Th, ord: Ordering) -> u64 {
        let id = self.id;
        th.rt.op(th.tid, |_, st| {
            if ord.acquires() {
                let msg = st.atomics[id].msg.clone();
                st.clocks[th.tid].join(&msg);
            }
            st.atomics[id].value
        })
    }

    /// Atomic store; `Release`-class orderings publish the writer's
    /// clock, a relaxed store publishes an empty one (breaking the
    /// release chain, which is exactly the bug class this shim exists to
    /// catch).
    pub fn store(&self, th: &Th, v: u64, ord: Ordering) {
        let id = self.id;
        th.rt.op(th.tid, |_, st| {
            if ord.releases() {
                st.atomics[id].msg = st.clocks[th.tid].clone();
            } else {
                st.atomics[id].msg.clear();
            }
            st.atomics[id].value = v;
        });
    }

    /// Atomic fetch-add returning the previous value. As a
    /// read-modify-write it continues the release sequence: a relaxed
    /// RMW leaves the published clock intact rather than clearing it.
    pub fn fetch_add(&self, th: &Th, d: u64, ord: Ordering) -> u64 {
        let id = self.id;
        th.rt.op(th.tid, |_, st| {
            if ord.acquires() {
                let msg = st.atomics[id].msg.clone();
                st.clocks[th.tid].join(&msg);
            }
            if ord.releases() {
                let clk = st.clocks[th.tid].clone();
                st.atomics[id].msg.join(&clk);
            }
            let old = st.atomics[id].value;
            st.atomics[id].value = old.wrapping_add(d);
            old
        })
    }
}

/// A modeled mutex. [`MMutex::lock`] returns a guard whose drop
/// releases the lock (and is a scheduling point).
#[derive(Clone, Copy, Debug)]
pub struct MMutex {
    pub(crate) id: usize,
}

/// Lock guard for [`MMutex`]; releases on drop.
pub struct MGuard<'a> {
    th: &'a Th,
    mx: MMutex,
}

impl MMutex {
    /// Acquires the lock, blocking (in model time) while held elsewhere.
    pub fn lock<'a>(&self, th: &'a Th) -> MGuard<'a> {
        th.rt.mutex_lock(th.tid, self.id);
        MGuard { th, mx: *self }
    }
}

impl Drop for MGuard<'_> {
    fn drop(&mut self) {
        self.th.rt.mutex_unlock(self.th.tid, self.mx.id);
    }
}

/// A modeled condition variable.
#[derive(Clone, Copy, Debug)]
pub struct MCondvar {
    id: usize,
}

impl MCondvar {
    /// Releases the guard's mutex, sleeps until notified, reacquires.
    /// Consumes and returns the guard like `std::sync::Condvar::wait`.
    pub fn wait<'a>(&self, g: MGuard<'a>) -> MGuard<'a> {
        let th = g.th;
        let mx = g.mx;
        // The modeled wait releases and reacquires the mutex itself;
        // the guard must not run its unlocking drop.
        std::mem::forget(g);
        th.rt.cv_wait(th.tid, self.id, mx.id);
        MGuard { th, mx }
    }

    /// Wakes every thread sleeping on this condvar.
    pub fn notify_all(&self, th: &Th) {
        th.rt.cv_notify_all(th.tid, self.id);
    }
}

/// Modeled un-synchronized data: the stand-in for plain fields the real
/// code guards by convention (a buffer written before a release store,
/// read after the acquire load). Accesses go through closures so the
/// race detector sees every touch.
pub struct MCell<T> {
    id: usize,
    data: Arc<StdMutex<T>>,
}

impl<T> Clone for MCell<T> {
    fn clone(&self) -> Self {
        MCell {
            id: self.id,
            data: Arc::clone(&self.data),
        }
    }
}

impl<T> MCell<T> {
    /// Reads the cell (race-checked against prior writes).
    pub fn read<R>(&self, th: &Th, f: impl FnOnce(&T) -> R) -> R {
        th.rt.cell_access(th.tid, self.id, false);
        f(&audit::recover("schedck.cell", &self.data))
    }

    /// Writes the cell (race-checked against prior reads and writes).
    pub fn write<R>(&self, th: &Th, f: impl FnOnce(&mut T) -> R) -> R {
        th.rt.cell_access(th.tid, self.id, true);
        f(&mut audit::recover("schedck.cell", &self.data))
    }
}
