//! `schedck` — a deterministic schedule explorer (mini-loom) for the
//! workspace's concurrency handshakes.
//!
//! The pool's finished-counter handshake, the shard executor's
//! ready-ring, and the exchange-retry path are all small protocols whose
//! correctness depends on *which* interleavings are possible and *what*
//! each synchronization op publishes. Ordinary tests sample a handful of
//! OS schedules; this crate enumerates them. A model is a closure over
//! modeled primitives ([`MAtomic`], [`MMutex`], [`MCondvar`], [`MCell`],
//! park/unpark) whose every visible operation is a scheduling point;
//! [`explore`] runs the model under depth-first search over all
//! preemption-bounded interleavings, replaying decision prefixes so each
//! enumerated schedule is distinct and reproducible.
//!
//! Three failure classes are detected:
//!
//! - **data races**: vector clocks track happens-before; an [`MCell`]
//!   access unordered with a conflicting access fails the execution even
//!   if the explored order was benign (so a `Release→Relaxed` downgrade
//!   is caught on *every* schedule that reads the data, not just the
//!   unlucky one);
//! - **deadlocks**: all unfinished threads blocked;
//! - **model panics**: assertion failures inside model code, reported
//!   with the schedule that produced them.
//!
//! The explorer runs model threads as real OS threads but passes a
//! single scheduling token between them, so exactly one runs at a time
//! and every execution is a pure function of its decision sequence.
//!
//! ```
//! use schedck::{explore, Config, Ordering};
//!
//! let report = explore(Config::default(), |th| {
//!     let flag = th.atomic(0);
//!     let data = th.cell("data", 0u64);
//!     let d2 = data.clone();
//!     th.spawn(move |th| {
//!         d2.write(th, |v| *v = 42);
//!         flag.store(th, 1, Ordering::Release);
//!     });
//!     if flag.load(th, Ordering::Acquire) == 1 {
//!         assert_eq!(data.read(th, |v| *v), 42);
//!     }
//! });
//! assert!(report.failure.is_none(), "{:?}", report.failure);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod rt;
mod shim;

pub use shim::{MAtomic, MCell, MCondvar, MGuard, MJoin, MMutex, Ordering, Th};

use rt::Rt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum voluntary context switches per execution (switches forced
    /// by blocking are free). Small bounds find most bugs (CHESS).
    pub preemption_bound: usize,
    /// Hard cap on enumerated schedules; hitting it sets
    /// [`Report::truncated`].
    pub max_schedules: u64,
    /// Per-execution step budget; exceeding it fails the execution
    /// (livelock / unbounded spin in the model).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 100_000,
            max_steps: 20_000,
        }
    }
}

/// What [`explore`] found.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Distinct schedules fully executed.
    pub schedules: u64,
    /// True when [`Config::max_schedules`] stopped the search before the
    /// preemption-bounded tree was exhausted.
    pub truncated: bool,
    /// The first failing schedule, if any (the search stops on it).
    pub failure: Option<Failure>,
}

/// A failing execution: what went wrong and the thread-choice sequence
/// that reproduces it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable description (race, deadlock, panic, budget).
    pub message: String,
    /// The schedule as the sequence of thread IDs chosen at each
    /// decision point.
    pub schedule: Vec<usize>,
}

/// Exhaustively explores the model's preemption-bounded interleavings.
///
/// `model` runs once per schedule on the root modeled thread (`tid` 0);
/// it must be deterministic apart from scheduling (same primitives
/// created in the same order, behavior a function of observed values).
/// Returns after the tree is exhausted, [`Config::max_schedules`] is
/// hit, or the first failure.
pub fn explore(cfg: Config, model: impl Fn(&Th)) -> Report {
    quiet_abort_unwinds();
    let mut report = Report::default();
    let mut replay: Vec<usize> = Vec::new();
    loop {
        let rt = Rt::new(replay.clone(), cfg.max_steps);
        let th0 = Th {
            rt: std::sync::Arc::clone(&rt),
            tid: 0,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            model(&th0);
            th0.rt.main_done(0);
        }));
        drop(th0);
        if let Err(p) = outcome {
            if !p.is::<rt::AbortExec>() {
                let msg = resilience::retry::panic_message(p.as_ref());
                let mut g = rt.lock();
                rt.fail(&mut g, format!("root thread panicked: {msg}"));
            }
        }
        rt.drain();
        let g = rt.lock();
        report.schedules += 1;
        let trace: Vec<usize> = g.decisions.iter().map(rt::Decision::chosen).collect();
        if let Some(msg) = g.failure.clone() {
            report.failure = Some(Failure {
                message: msg,
                schedule: trace,
            });
            return report;
        }
        if report.schedules >= cfg.max_schedules {
            report.truncated = true;
            return report;
        }
        match rt::next_replay(&g.decisions, cfg.preemption_bound) {
            Some(next) => {
                drop(g);
                replay = next;
            }
            None => return report,
        }
    }
}

/// Installs (once) a panic hook that suppresses the explorer's own
/// teardown unwinds — [`rt::AbortExec`] payloads are control flow, not
/// failures — while delegating real panics to the previous hook.
fn quiet_abort_unwinds() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<rt::AbortExec>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two independent single-op threads under an ample bound: the root
    /// spawns both then joins both; the explorer must terminate and find
    /// nothing.
    #[test]
    fn independent_threads_explore_cleanly() {
        let report = explore(
            Config {
                preemption_bound: 3,
                ..Config::default()
            },
            |th| {
                let a = th.atomic(0);
                let b = th.atomic(0);
                let h1 = th.spawn(move |th| a.store(th, 1, Ordering::Release));
                let h2 = th.spawn(move |th| b.store(th, 1, Ordering::Release));
                th.join(h1);
                th.join(h2);
                assert_eq!(a.load(th, Ordering::Acquire), 1);
                assert_eq!(b.load(th, Ordering::Acquire), 1);
            },
        );
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(!report.truncated);
        assert!(report.schedules > 1, "expected multiple interleavings");
    }

    /// Opposite lock orders in two threads: some schedule deadlocks, and
    /// the explorer must find it.
    #[test]
    fn opposite_lock_orders_deadlock() {
        let report = explore(Config::default(), |th| {
            let a = th.mutex("a");
            let b = th.mutex("b");
            let h1 = th.spawn(move |th| {
                let _ga = a.lock(th);
                let _gb = b.lock(th);
            });
            let h2 = th.spawn(move |th| {
                let _gb = b.lock(th);
                let _ga = a.lock(th);
            });
            th.join(h1);
            th.join(h2);
        });
        let failure = report
            .failure
            .expect("AB/BA locking must deadlock somewhere");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
        assert!(!failure.schedule.is_empty());
    }

    /// Write/write to a cell with no synchronization at all: a race on
    /// every multi-thread schedule.
    #[test]
    fn unsynchronized_writes_race() {
        let report = explore(Config::default(), |th| {
            let c = th.cell("c", 0u64);
            let c2 = c.clone();
            let h = th.spawn(move |th| c2.write(th, |v| *v = 1));
            c.write(th, |v| *v = 2);
            th.join(h);
        });
        let failure = report.failure.expect("unsynchronized writes must race");
        assert!(failure.message.contains("data race"), "{}", failure.message);
    }

    /// Mutex-guarded cell accesses never race and never deadlock.
    #[test]
    fn mutex_guarded_counter_is_clean() {
        let report = explore(Config::default(), |th| {
            let mx = th.mutex("counter");
            let c = th.cell("count", 0u64);
            let (mxa, ca) = (mx, c.clone());
            let h1 = th.spawn(move |th| {
                let _g = mxa.lock(th);
                ca.write(th, |v| *v += 1);
            });
            let (mxb, cb) = (mx, c.clone());
            let h2 = th.spawn(move |th| {
                let _g = mxb.lock(th);
                cb.write(th, |v| *v += 1);
            });
            th.join(h1);
            th.join(h2);
            let _g = mx.lock(th);
            assert_eq!(c.read(th, |v| *v), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    /// park/unpark transfers both control and a happens-before edge.
    #[test]
    fn park_unpark_synchronizes() {
        let report = explore(Config::default(), |th| {
            let data = th.cell("data", 0u64);
            let d2 = data.clone();
            let root = th.id();
            let h = th.spawn(move |th| {
                d2.write(th, |v| *v = 7);
                th.unpark(root);
            });
            th.park();
            assert_eq!(data.read(th, |v| *v), 7);
            th.join(h);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }

    /// A model panic is reported with its schedule.
    #[test]
    fn model_panics_are_reported() {
        let report = explore(Config::default(), |th| {
            let flag = th.atomic(0);
            let h = th.spawn(move |th| flag.store(th, 1, Ordering::Release));
            if flag.load(th, Ordering::Acquire) == 1 {
                panic!("seeded assertion");
            }
            th.join(h);
        });
        let failure = report.failure.expect("some schedule sees flag==1");
        assert!(
            failure.message.contains("seeded assertion"),
            "{}",
            failure.message
        );
    }

    /// Raising the preemption bound only grows the schedule count.
    #[test]
    fn preemption_bound_is_monotone() {
        let count = |bound| {
            explore(
                Config {
                    preemption_bound: bound,
                    ..Config::default()
                },
                |th| {
                    let a = th.atomic(0);
                    let h = th.spawn(move |th| {
                        a.fetch_add(th, 1, Ordering::AcqRel);
                        a.fetch_add(th, 1, Ordering::AcqRel);
                    });
                    a.fetch_add(th, 1, Ordering::AcqRel);
                    th.join(h);
                },
            )
            .schedules
        };
        let (c0, c1, c2) = (count(0), count(1), count(2));
        assert!(c0 >= 1);
        assert!(c1 > c0, "bound 1 must add schedules over {c0}");
        assert!(c2 > c1, "bound 2 must add schedules over {c1}");
    }
}
