//! Vector clocks: the happens-before backbone of the race detector.
//!
//! Every modeled thread carries a [`VClock`]; synchronization edges
//! (mutex release→acquire, atomic release-store→acquire-load, spawn,
//! join, unpark→park) join clocks. An access to un-synchronized data
//! ([`crate::MCell`]) that is not ordered by the joined clocks is a data
//! race, reported regardless of whether the explored interleaving
//! happened to execute the accesses "safely".

/// A grow-on-demand vector clock indexed by modeled thread ID.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// This clock's component for `tid` (0 when never ticked).
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component by one.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Componentwise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(&other.0) {
            *s = (*s).max(o);
        }
    }

    /// Componentwise `self ≤ other`: the event stamped `self` happens
    /// before (or is) every event at-or-after `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &s)| s <= other.get(i))
    }

    /// Resets to the zero clock (a relaxed store breaks a release chain).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le_are_componentwise() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(3);
        assert!(!a.le(&b));
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(3), 1);
        assert!(VClock::new().le(&a));
    }

    #[test]
    fn tick_grows_on_demand() {
        let mut c = VClock::new();
        c.tick(5);
        assert_eq!(c.get(5), 1);
        assert_eq!(c.get(4), 0);
        c.clear();
        assert_eq!(c.get(5), 0);
    }
}
