//! The deterministic scheduler: token passing, DFS over schedules,
//! happens-before state, and failure detection.
//!
//! Model threads are real OS threads, but only the thread holding the
//! scheduling token executes model code; every visible operation (atomic
//! access, lock, unlock, condvar wait/notify, park/unpark, spawn, join)
//! ends by picking which thread runs the *next* operation. The pick is a
//! recorded decision; depth-first search over recorded decisions replays
//! a prefix and diverges at the deepest unexplored branch, so every
//! enumerated schedule is distinct by construction.
//!
//! Preemption bounding keeps the search tractable: switching away from a
//! thread that could have continued costs one unit of a per-execution
//! budget, while switches forced by blocking are free. Most concurrency
//! bugs are exposed by very few preemptions (the classic CHESS result),
//! so a small bound explores the interesting corner of the exponential
//! schedule space first.

use crate::clock::VClock;
use resilience::audit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to unwind model threads when an execution aborts
/// (failure found, or teardown). Never escapes the explorer.
pub(crate) struct AbortExec;

/// Scheduler-visible state of one modeled thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum TState {
    /// Runnable: a candidate at every scheduling decision.
    Ready,
    /// Waiting for a modeled mutex to be released.
    BlockedMutex(usize),
    /// Asleep on a modeled condvar (until notified).
    BlockedCv(usize),
    /// Waiting for a modeled thread to finish.
    BlockedJoin(usize),
    /// Parked without an unpark token.
    BlockedPark,
    /// The root thread, waiting for every spawned thread to finish.
    BlockedDone,
    /// Finished (never scheduled again).
    Finished,
}

/// One recorded scheduling decision: which threads were runnable, which
/// was chosen, and how much of the preemption budget was already spent.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    /// Candidate threads in canonical order (the continuing thread first
    /// when it is still runnable, then the others ascending).
    pub candidates: Vec<usize>,
    /// Index into `candidates` of the thread actually chosen.
    pub chosen_pos: usize,
    /// The thread that made the decision.
    pub cur: usize,
    /// Whether `cur` could have continued (choosing anyone else is then
    /// a preemption).
    pub cur_enabled: bool,
    /// Preemptions spent before this decision.
    pub preempts_before: usize,
}

impl Decision {
    pub(crate) fn chosen(&self) -> usize {
        self.candidates[self.chosen_pos]
    }
}

pub(crate) struct MutexSt {
    pub holder: Option<usize>,
    pub release: VClock,
    pub name: &'static str,
}

pub(crate) struct AtomicSt {
    pub value: u64,
    /// The clock published by the release chain ending at the current
    /// value; an acquire load joins it.
    pub msg: VClock,
}

pub(crate) struct CellSt {
    /// Snapshot of the last writer's clock, if any write happened.
    pub write: Option<VClock>,
    /// `(reader, reader_clock[reader])` for reads since the last write.
    pub reads: Vec<(usize, u64)>,
    pub name: &'static str,
}

#[derive(Default)]
pub(crate) struct ParkSt {
    pub token: bool,
    pub clock: VClock,
}

/// Mutable per-execution state, guarded by [`Rt::st`].
pub(crate) struct St {
    pub current: usize,
    pub threads: Vec<TState>,
    pub clocks: Vec<VClock>,
    pub parks: Vec<ParkSt>,
    pub replay: Vec<usize>,
    pub decisions: Vec<Decision>,
    pub preempts: usize,
    pub steps: usize,
    pub abort: bool,
    pub failure: Option<String>,
    pub atomics: Vec<AtomicSt>,
    pub mutexes: Vec<MutexSt>,
    pub condvars: usize,
    pub cells: Vec<CellSt>,
    pub max_steps: usize,
}

/// One execution's runtime, shared by every model thread.
pub(crate) struct Rt {
    pub st: Mutex<St>,
    pub cv: Condvar,
    pub handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Rt {
    pub(crate) fn new(replay: Vec<usize>, max_steps: usize) -> Arc<Rt> {
        Arc::new(Rt {
            st: Mutex::new(St {
                current: 0,
                threads: vec![TState::Ready],
                clocks: vec![VClock::new()],
                parks: vec![ParkSt::default()],
                replay,
                decisions: Vec::new(),
                preempts: 0,
                steps: 0,
                abort: false,
                failure: None,
                atomics: Vec::new(),
                mutexes: Vec::new(),
                condvars: 0,
                cells: Vec::new(),
                max_steps,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, St> {
        audit::recover("schedck.state", &self.st)
    }

    /// Records `msg` as the execution's failure and aborts it: every
    /// thread waiting on the scheduler wakes and unwinds.
    pub(crate) fn fail(&self, st: &mut St, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// The scheduling decision ending a visible operation of `cur`.
    fn pick_next(&self, st: &mut St, cur: usize) {
        if st.abort {
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            self.fail(
                st,
                format!(
                    "step budget ({}) exceeded: livelock or unbounded loop",
                    st.max_steps
                ),
            );
            return;
        }
        let enabled: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == TState::Ready)
            .collect();
        if enabled.is_empty() {
            if st.threads.iter().all(|t| *t == TState::Finished) {
                return; // clean end of execution
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s, TState::Finished))
                .map(|(t, s)| match s {
                    TState::BlockedMutex(m) => {
                        format!("t{t} waiting to lock `{}`", st.mutexes[*m].name)
                    }
                    TState::BlockedCv(c) => format!("t{t} asleep on condvar {c}"),
                    TState::BlockedJoin(j) => format!("t{t} joining t{j}"),
                    TState::BlockedPark => format!("t{t} parked"),
                    TState::BlockedDone => format!("t{t} waiting for spawned threads"),
                    _ => format!("t{t}:{s:?}"),
                })
                .collect();
            self.fail(st, format!("deadlock: {}", stuck.join(", ")));
            return;
        }
        let cur_enabled = st.threads[cur] == TState::Ready;
        let mut candidates = Vec::with_capacity(enabled.len());
        if cur_enabled {
            candidates.push(cur);
        }
        candidates.extend(enabled.iter().copied().filter(|&t| t != cur));
        let idx = st.decisions.len();
        let chosen_pos = if idx < st.replay.len() {
            // Replaying a prefix: the model is deterministic, so the
            // recorded thread must still be a candidate.
            candidates
                .iter()
                .position(|&t| t == st.replay[idx])
                .unwrap_or(0)
        } else {
            0
        };
        let preempts_before = st.preempts;
        if cur_enabled && candidates[chosen_pos] != cur {
            st.preempts += 1;
        }
        st.current = candidates[chosen_pos];
        st.decisions.push(Decision {
            candidates,
            chosen_pos,
            cur,
            cur_enabled,
            preempts_before,
        });
        self.cv.notify_all();
    }

    /// Blocks until `tid` holds the token; panics with [`AbortExec`] if
    /// the execution aborts first. Call only from model code (never from
    /// `Drop` paths — use [`Rt::wait_current_silent`] there).
    fn wait_current<'a>(&'a self, mut g: MutexGuard<'a, St>, tid: usize) -> MutexGuard<'a, St> {
        loop {
            if g.abort {
                drop(g);
                std::panic::panic_any(AbortExec);
            }
            if g.current == tid {
                return g;
            }
            g = audit::recover_wait("schedck.turn", &self.cv, g);
        }
    }

    /// Non-panicking [`Rt::wait_current`]: returns `None` when the
    /// execution aborted. Safe inside `Drop` (unwinding) contexts.
    fn wait_current_silent<'a>(
        &'a self,
        mut g: MutexGuard<'a, St>,
        tid: usize,
    ) -> Option<MutexGuard<'a, St>> {
        loop {
            if g.abort {
                return None;
            }
            if g.current == tid {
                return Some(g);
            }
            g = audit::recover_wait("schedck.turn", &self.cv, g);
        }
    }

    /// Runs one non-blocking visible operation for `tid`: waits for the
    /// token, performs `f` on the state, ticks the clock, then yields.
    pub(crate) fn op<R>(&self, tid: usize, f: impl FnOnce(&Rt, &mut St) -> R) -> R {
        let g = self.lock();
        let mut g = self.wait_current(g, tid);
        let r = f(self, &mut g);
        g.clocks[tid].tick(tid);
        if g.abort {
            // `f` recorded a failure (e.g. a data race): unwind now.
            drop(g);
            std::panic::panic_any(AbortExec);
        }
        self.pick_next(&mut g, tid);
        r
    }

    /// Runs a state-allocation step (creating a modeled primitive) for
    /// `tid`. Requires the token — IDs must be deterministic under
    /// replay — but is not a scheduling point.
    pub(crate) fn alloc<R>(&self, tid: usize, f: impl FnOnce(&mut St) -> R) -> R {
        let g = self.lock();
        let mut g = self.wait_current(g, tid);
        f(&mut g)
    }

    /// One access to un-synchronized modeled data. Not a scheduling
    /// point (interleavings are driven by the synchronization ops), but
    /// every access is checked against the happens-before clocks, so a
    /// racy access is reported even when the explored order happened to
    /// be benign.
    pub(crate) fn cell_access(&self, tid: usize, cid: usize, write: bool) {
        let g = self.lock();
        let mut g = self.wait_current(g, tid);
        g.clocks[tid].tick(tid);
        let my = g.clocks[tid].clone();
        let cell = &g.cells[cid];
        let name = cell.name;
        let kind = if write { "write" } else { "read" };
        let mut race = None;
        if let Some(w) = &cell.write {
            if !w.le(&my) {
                race = Some(format!(
                    "data race on `{name}`: {kind} by t{tid} is unordered with a previous write"
                ));
            }
        }
        if write && race.is_none() {
            for &(r, stamp) in &cell.reads {
                if r != tid && stamp > my.get(r) {
                    race = Some(format!(
                        "data race on `{name}`: write by t{tid} is unordered with a read by t{r}"
                    ));
                    break;
                }
            }
        }
        if let Some(msg) = race {
            self.fail(&mut g, msg);
            drop(g);
            std::panic::panic_any(AbortExec);
        }
        let stamp = my.get(tid);
        let cell = &mut g.cells[cid];
        if write {
            cell.write = Some(my);
            cell.reads.clear();
        } else {
            cell.reads.push((tid, stamp));
        }
    }

    /// Marks every thread blocked on mutex `mid` runnable again.
    fn wake_mutex_waiters(st: &mut St, mid: usize) {
        for t in st.threads.iter_mut() {
            if *t == TState::BlockedMutex(mid) {
                *t = TState::Ready;
            }
        }
    }

    pub(crate) fn mutex_lock(&self, tid: usize, mid: usize) {
        let g = self.lock();
        let mut g = self.wait_current(g, tid);
        loop {
            if g.mutexes[mid].holder.is_none() {
                g.mutexes[mid].holder = Some(tid);
                let rel = g.mutexes[mid].release.clone();
                g.clocks[tid].join(&rel);
                g.clocks[tid].tick(tid);
                self.pick_next(&mut g, tid);
                return;
            }
            g.threads[tid] = TState::BlockedMutex(mid);
            self.pick_next(&mut g, tid);
            g = self.wait_current(g, tid);
        }
    }

    /// Releases `mid`. Runs from [`crate::MGuard`]'s `Drop`, so it must
    /// never panic: on abort it silently lets the teardown proceed.
    pub(crate) fn mutex_unlock(&self, tid: usize, mid: usize) {
        let g = self.lock();
        let Some(mut g) = self.wait_current_silent(g, tid) else {
            return;
        };
        debug_assert_eq!(g.mutexes[mid].holder, Some(tid), "unlock by non-holder");
        let clk = g.clocks[tid].clone();
        g.mutexes[mid].release.join(&clk);
        g.mutexes[mid].holder = None;
        Self::wake_mutex_waiters(&mut g, mid);
        g.clocks[tid].tick(tid);
        self.pick_next(&mut g, tid);
    }

    /// Atomically releases `mid` and sleeps on condvar `cvid`; once
    /// notified, reacquires `mid` before returning.
    pub(crate) fn cv_wait(&self, tid: usize, cvid: usize, mid: usize) {
        let g = self.lock();
        let mut g = self.wait_current(g, tid);
        debug_assert_eq!(g.mutexes[mid].holder, Some(tid), "cv wait without the lock");
        let clk = g.clocks[tid].clone();
        g.mutexes[mid].release.join(&clk);
        g.mutexes[mid].holder = None;
        Self::wake_mutex_waiters(&mut g, mid);
        g.threads[tid] = TState::BlockedCv(cvid);
        g.clocks[tid].tick(tid);
        self.pick_next(&mut g, tid);
        g = self.wait_current(g, tid);
        // Notified: reacquire the mutex like a fresh lock call.
        loop {
            if g.mutexes[mid].holder.is_none() {
                g.mutexes[mid].holder = Some(tid);
                let rel = g.mutexes[mid].release.clone();
                g.clocks[tid].join(&rel);
                g.clocks[tid].tick(tid);
                self.pick_next(&mut g, tid);
                return;
            }
            g.threads[tid] = TState::BlockedMutex(mid);
            self.pick_next(&mut g, tid);
            g = self.wait_current(g, tid);
        }
    }

    pub(crate) fn cv_notify_all(&self, tid: usize, cvid: usize) {
        self.op(tid, |_, st| {
            for t in st.threads.iter_mut() {
                if *t == TState::BlockedCv(cvid) {
                    *t = TState::Ready;
                }
            }
        });
    }

    pub(crate) fn park(&self, tid: usize) {
        let g = self.lock();
        let mut g = self.wait_current(g, tid);
        loop {
            if g.parks[tid].token {
                g.parks[tid].token = false;
                let clk = g.parks[tid].clock.clone();
                g.clocks[tid].join(&clk);
                g.clocks[tid].tick(tid);
                self.pick_next(&mut g, tid);
                return;
            }
            g.threads[tid] = TState::BlockedPark;
            self.pick_next(&mut g, tid);
            g = self.wait_current(g, tid);
        }
    }

    pub(crate) fn unpark(&self, tid: usize, target: usize) {
        self.op(tid, |_, st| {
            st.parks[target].token = true;
            let clk = st.clocks[tid].clone();
            st.parks[target].clock.join(&clk);
            if st.threads[target] == TState::BlockedPark {
                st.threads[target] = TState::Ready;
            }
        });
    }

    pub(crate) fn join_thread(&self, tid: usize, child: usize) {
        let g = self.lock();
        let mut g = self.wait_current(g, tid);
        loop {
            if g.threads[child] == TState::Finished {
                let clk = g.clocks[child].clone();
                g.clocks[tid].join(&clk);
                g.clocks[tid].tick(tid);
                self.pick_next(&mut g, tid);
                return;
            }
            g.threads[tid] = TState::BlockedJoin(child);
            self.pick_next(&mut g, tid);
            g = self.wait_current(g, tid);
        }
    }

    /// Registers a child thread (scheduler state only; the caller spawns
    /// the real thread). Spawn is a visible operation of the parent.
    pub(crate) fn register_child(&self, parent: usize) -> usize {
        self.op(parent, |_, st| {
            let child = st.threads.len();
            st.threads.push(TState::Ready);
            let mut clk = st.clocks[parent].clone();
            clk.tick(child);
            st.clocks.push(clk);
            st.parks.push(ParkSt::default());
            child
        })
    }

    /// Final transition of a spawned thread's wrapper.
    pub(crate) fn thread_done(
        &self,
        tid: usize,
        result: Result<(), Box<dyn std::any::Any + Send>>,
    ) {
        let g = self.lock();
        if let Err(p) = result {
            let mut g = g;
            if !p.is::<AbortExec>() {
                let msg = resilience::retry::panic_message(p.as_ref());
                self.fail(&mut g, format!("model thread {tid} panicked: {msg}"));
            }
            g.threads[tid] = TState::Finished;
            self.cv.notify_all();
            return;
        }
        // A clean finish is a visible operation: wait for the token so
        // the transition lands at a deterministic point in the schedule.
        let Some(mut g) = self.wait_current_silent(g, tid) else {
            let mut g = self.lock();
            g.threads[tid] = TState::Finished;
            self.cv.notify_all();
            return;
        };
        g.threads[tid] = TState::Finished;
        for t in g.threads.iter_mut() {
            if *t == TState::BlockedJoin(tid) {
                *t = TState::Ready;
            }
        }
        if g.threads[0] == TState::BlockedDone
            && g.threads[1..].iter().all(|t| *t == TState::Finished)
        {
            g.threads[0] = TState::Ready;
        }
        self.pick_next(&mut g, tid);
    }

    /// Root-thread epilogue: waits until every spawned thread finished,
    /// then marks the root finished. Implicit join of stragglers.
    pub(crate) fn main_done(&self, tid: usize) {
        let g = self.lock();
        let mut g = self.wait_current(g, tid);
        loop {
            if g.threads[1..].iter().all(|t| *t == TState::Finished) {
                for c in 1..g.threads.len() {
                    let clk = g.clocks[c].clone();
                    g.clocks[tid].join(&clk);
                }
                g.threads[tid] = TState::Finished;
                self.cv.notify_all();
                return;
            }
            g.threads[tid] = TState::BlockedDone;
            self.pick_next(&mut g, tid);
            g = self.wait_current(g, tid);
        }
    }

    /// Tears the execution down: aborts any still-parked machinery and
    /// joins every real thread spawned for it.
    pub(crate) fn drain(&self) {
        {
            let mut g = self.lock();
            g.abort = true;
            self.cv.notify_all();
        }
        let handles: Vec<_> = audit::recover("schedck.handles", &self.handles)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Spawns a model thread: scheduler registration plus the real OS
/// thread whose wrapper gates every touchpoint on the scheduling token.
pub(crate) fn spawn_model(
    rt: &Arc<Rt>,
    parent: usize,
    f: impl FnOnce(&crate::Th) + Send + 'static,
) -> usize {
    let child = rt.register_child(parent);
    let rt2 = Arc::clone(rt);
    let h = std::thread::Builder::new()
        .name(format!("schedck-{child}"))
        .spawn(move || {
            let th = crate::Th {
                rt: Arc::clone(&rt2),
                tid: child,
            };
            let r = catch_unwind(AssertUnwindSafe(|| f(&th)));
            rt2.thread_done(child, r);
        })
        .expect("spawning a model thread");
    audit::recover("schedck.handles", &rt.handles).push(h);
    child
}

/// Computes the next DFS replay prefix from a completed execution's
/// decision trace, or `None` when the (preemption-bounded) tree is
/// exhausted: the deepest decision with an unexplored in-budget
/// alternative, replayed up to that point with the alternative chosen.
pub(crate) fn next_replay(decisions: &[Decision], bound: usize) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        for pos in d.chosen_pos + 1..d.candidates.len() {
            let cost = usize::from(d.cur_enabled && d.candidates[pos] != d.cur);
            if d.preempts_before + cost <= bound {
                let mut replay: Vec<usize> = decisions[..i].iter().map(Decision::chosen).collect();
                replay.push(d.candidates[pos]);
                return Some(replay);
            }
        }
    }
    None
}
