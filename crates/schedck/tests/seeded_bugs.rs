//! Model-checks the pool's finished-counter handshake from
//! `crates/pool/src/lib.rs` (`JobCore::run` / `JobCore::wait_done`):
//! workers claim shares off a relaxed counter, write their share's
//! result, bump `finished` with `AcqRel`, and the last one in signals
//! the waiter under `done_mx`. The waiter acquires `finished` and then
//! reads every share's output.
//!
//! The clean model must survive every explored schedule. The seeded
//! twin downgrades the `finished` increment to `Relaxed` — the exact
//! bug class the `// PAIRS:` comments and lint L010 guard against in
//! the real code — and the race detector must catch it: a relaxed RMW
//! never joins the incrementing worker's clock into the release
//! sequence, so no path carries the *other* workers' result writes to
//! the waiter, even when the condvar rendezvous happens to order the
//! wakeup correctly.

use schedck::{explore, Config, MAtomic, MCell, MCondvar, MMutex, Ordering, Th};

const SHARES: usize = 2;
const WORKERS: usize = 2;

struct Handshake {
    next: MAtomic,
    finished: MAtomic,
    done_mx: MMutex,
    done_cv: MCondvar,
    results: Vec<MCell<u64>>,
}

fn setup(th: &Th) -> Handshake {
    Handshake {
        next: th.atomic(0),
        finished: th.atomic(0),
        done_mx: th.mutex("pool.done"),
        done_cv: th.condvar(),
        results: (0..SHARES).map(|_| th.cell("share-result", 0u64)).collect(),
    }
}

/// The worker side of `JobCore::run`, with the `finished` increment's
/// ordering as the seeded-bug knob.
fn run_shares(th: &Th, hs: &Handshake, finish_ord: Ordering) {
    loop {
        let share = hs.next.fetch_add(th, 1, Ordering::Relaxed) as usize;
        if share >= SHARES {
            return;
        }
        hs.results[share].write(th, |v| *v = 10 + share as u64);
        let done = hs.finished.fetch_add(th, 1, finish_ord) + 1;
        if done == SHARES as u64 {
            let _g = hs.done_mx.lock(th);
            hs.done_cv.notify_all(th);
        }
    }
}

/// The waiter side of `JobCore::wait_done`, plus the read of every
/// share's output that completion is supposed to license.
fn wait_and_read(th: &Th, hs: &Handshake) {
    let mut g = hs.done_mx.lock(th);
    while hs.finished.load(th, Ordering::Acquire) < SHARES as u64 {
        g = hs.done_cv.wait(g);
    }
    drop(g);
    for (s, r) in hs.results.iter().enumerate() {
        assert_eq!(r.read(th, |v| *v), 10 + s as u64);
    }
}

fn check(finish_ord: Ordering) -> schedck::Report {
    explore(
        Config {
            preemption_bound: 2,
            max_schedules: 60_000,
            max_steps: 20_000,
        },
        move |th| {
            let hs = setup(th);
            let joins: Vec<_> = (0..WORKERS)
                .map(|_| {
                    let hs = Handshake {
                        next: hs.next,
                        finished: hs.finished,
                        done_mx: hs.done_mx,
                        done_cv: hs.done_cv,
                        results: hs.results.clone(),
                    };
                    th.spawn(move |th| run_shares(th, &hs, finish_ord))
                })
                .collect();
            wait_and_read(th, &hs);
            for j in joins {
                th.join(j);
            }
        },
    )
}

/// The real protocol: `AcqRel` on the increment makes each worker's
/// result write visible to the waiter (every RMW joins its clock into
/// the release sequence, and the waiter's `Acquire` load joins the
/// accumulated message).
#[test]
fn acqrel_finished_counter_is_clean() {
    let report = check(Ordering::AcqRel);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
    assert!(
        report.schedules > 100,
        "expected a real exploration, got {} schedules",
        report.schedules
    );
}

/// Seeded bug: `Relaxed` on the increment. The counter still counts —
/// the waiter wakes up and sees `finished == SHARES` — but nothing
/// publishes the workers' clocks, so the result reads race. The condvar
/// path only transfers the *last* incrementer's clock (via `done_mx`),
/// which under `Relaxed` never absorbed the other workers', so the bug
/// is caught on every schedule shape, not just the lucky one.
#[test]
fn relaxed_finished_counter_races() {
    let report = check(Ordering::Relaxed);
    let failure = report
        .failure
        .expect("relaxed completion counter must race");
    assert!(
        failure.message.contains("data race"),
        "expected a data race, got: {}",
        failure.message
    );
    assert!(
        failure.message.contains("share-result"),
        "race should be on the share result cell, got: {}",
        failure.message
    );
}
