//! Model-checks the TaskGraph ready-ring handshake from
//! `crates/shard/src/exec.rs`: workers pop ready tasks under one mutex,
//! run them unlocked, then re-lock to retire the task, release
//! dependents whose indegree hits zero, and notify under the same
//! compound predicate the real executor uses. The explorer enumerates
//! every (preemption-bounded) interleaving; the race detector proves
//! the protocol's core guarantee — a dependency's task-body writes
//! happen-before every dependent's task body — rather than just
//! observing it hold on the schedules that ran.

use schedck::{explore, Config, MCell, MCondvar, MMutex, Th};

/// The mutable frontier, the model twin of `exec::RunState`.
struct Ring {
    ready: Vec<usize>,
    indegree: Vec<usize>,
    remaining: usize,
    running: usize,
}

/// Diamond DAG: 0 → {1, 2} → 3. Dependents per task.
const DEPENDENTS: [&[usize]; 4] = [&[1, 2], &[3], &[3], &[]];
const INDEGREE: [usize; 4] = [0, 1, 1, 2];
/// Reverse edges: what each task's body reads before writing its own.
const DEPS: [&[usize]; 4] = [&[], &[0], &[0], &[1, 2]];

fn worker(th: &Th, mx: MMutex, cv: MCondvar, st: &MCell<Ring>, data: &[MCell<u64>]) {
    loop {
        let mut g = mx.lock(th);
        let task = loop {
            enum Next {
                Run(usize),
                Done,
                Wait,
            }
            let next = st.write(th, |r| {
                if r.remaining == 0 {
                    Next::Done
                } else if let Some(t) = r.ready.pop() {
                    r.running += 1;
                    Next::Run(t)
                } else {
                    // A well-formed DAG never stalls: something must be
                    // running whenever ready is empty and work remains.
                    assert!(r.running > 0, "ready-ring stalled");
                    Next::Wait
                }
            });
            match next {
                Next::Run(t) => break t,
                Next::Done => return,
                Next::Wait => g = cv.wait(g),
            }
        };
        drop(g);
        // Task body, outside the lock — exactly where the real executor
        // runs kernels. Reading each dependency's output asserts the
        // handshake publishes it (a missing happens-before edge would be
        // reported as a data race even if the value looked right).
        for &d in DEPS[task] {
            assert_eq!(data[d].read(th, |v| *v), 100 + d as u64);
        }
        data[task].write(th, |v| *v = 100 + task as u64);
        let _g = mx.lock(th);
        let notify = st.write(th, |r| {
            r.running -= 1;
            r.remaining -= 1;
            for &d in DEPENDENTS[task] {
                r.indegree[d] -= 1;
                if r.indegree[d] == 0 {
                    r.ready.push(d);
                }
            }
            r.remaining == 0 || !r.ready.is_empty() || r.running == 0
        });
        if notify {
            cv.notify_all(th);
        }
    }
}

#[test]
fn ready_ring_handshake_is_clean_over_10k_schedules() {
    let cfg = Config {
        preemption_bound: 3,
        max_schedules: 80_000,
        max_steps: 20_000,
    };
    let report = explore(cfg, |th| {
        let mx = th.mutex("ring");
        let cv = th.condvar();
        let st = th.cell(
            "ring-state",
            Ring {
                ready: vec![0],
                indegree: INDEGREE.to_vec(),
                remaining: 4,
                running: 0,
            },
        );
        let data: Vec<MCell<u64>> = (0..4).map(|_| th.cell("task-data", 0u64)).collect();
        let mut joins = Vec::new();
        for _ in 0..3 {
            let (st, data, mx, cv) = (st.clone(), data.clone(), mx, cv);
            joins.push(th.spawn(move |th| worker(th, mx, cv, &st, &data)));
        }
        for j in joins {
            th.join(j);
        }
        st.read(th, |r| assert_eq!(r.remaining, 0, "tasks left unretired"));
        for (t, c) in data.iter().enumerate() {
            assert_eq!(c.read(th, |v| *v), 100 + t as u64);
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.schedules >= 10_000,
        "expected >= 10k distinct schedules, got {} (truncated: {})",
        report.schedules,
        report.truncated
    );
}

/// Seeded bug: the real executor notifies under the compound predicate
/// `remaining == 0 || !ready.is_empty() || running == 0`. The seeded
/// mutation keeps only the `!ready.is_empty()` arm — new work still
/// wakes sleepers, but the *completion* wakeup is lost. Any schedule
/// where a worker is asleep when the last task retires leaves it asleep
/// forever, and the explorer must find that deadlock.
#[test]
fn dropped_notify_is_caught_as_deadlock() {
    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 60_000,
        max_steps: 20_000,
    };
    let report = explore(cfg, |th| {
        let mx = th.mutex("ring");
        let cv = th.condvar();
        let st = th.cell(
            "ring-state",
            Ring {
                ready: vec![0],
                indegree: INDEGREE.to_vec(),
                remaining: 4,
                running: 0,
            },
        );
        let data: Vec<MCell<u64>> = (0..4).map(|_| th.cell("task-data", 0u64)).collect();
        let mut joins = Vec::new();
        for _ in 0..2 {
            let (st, data, mx, cv) = (st.clone(), data.clone(), mx, cv);
            joins.push(th.spawn(move |th| loop {
                let mut g = mx.lock(th);
                let task = loop {
                    let next = st.write(th, |r| {
                        if r.remaining == 0 {
                            Some(None)
                        } else if let Some(t) = r.ready.pop() {
                            r.running += 1;
                            Some(Some(t))
                        } else {
                            None
                        }
                    });
                    match next {
                        Some(Some(t)) => break t,
                        Some(None) => return,
                        None => g = cv.wait(g),
                    }
                };
                drop(g);
                data[task].write(th, |v| *v = 100 + task as u64);
                let _g = mx.lock(th);
                // BUG: only notifies for newly-ready work; the
                // completion wakeup (`remaining == 0`) is lost.
                let notify = st.write(th, |r| {
                    r.running -= 1;
                    r.remaining -= 1;
                    for &d in DEPENDENTS[task] {
                        r.indegree[d] -= 1;
                        if r.indegree[d] == 0 {
                            r.ready.push(d);
                        }
                    }
                    !r.ready.is_empty()
                });
                if notify {
                    cv.notify_all(th);
                }
            }));
        }
        for j in joins {
            th.join(j);
        }
    });
    let failure = report
        .failure
        .expect("losing ready-work wakeups must deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock, got: {}",
        failure.message
    );
}
