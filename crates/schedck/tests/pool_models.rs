//! Model-checks two more workspace protocols: the pool's
//! quarantine/respawn rendezvous (`crates/pool/src/lib.rs`, the
//! `reap_and_respawn` path) and the shard executor's exchange-retry
//! loop (`crates/shard/src/runner.rs` staging under
//! `resilience::retry::run`). Both are small condvar/mutex handshakes
//! whose liveness and publication guarantees the explorer proves over
//! every preemption-bounded interleaving.

use schedck::{explore, Config, MCell};

/// Quarantine/respawn: a worker trips its fault budget and
/// self-quarantines instead of taking the job; the supervisor observes
/// the flag under the slot mutex and spawns a replacement, which runs
/// the job and signals completion. Mirrors the pool's invariant that a
/// quarantined worker's slot is refilled before the job is considered
/// lost.
#[test]
fn quarantine_respawn_rendezvous_is_clean() {
    struct Slot {
        quarantined: bool,
        job_done: bool,
    }

    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 60_000,
        max_steps: 20_000,
    };
    let report = explore(cfg, |th| {
        let mx = th.mutex("pool.slot");
        let cv = th.condvar();
        let slot = th.cell(
            "slot-state",
            Slot {
                quarantined: false,
                job_done: false,
            },
        );
        let out = th.cell("job-output", 0u64);

        // The doomed worker: hits its fault budget, marks itself
        // quarantined under the slot lock, and exits without touching
        // the job.
        let (s1, mx1, cv1) = (slot.clone(), mx, cv);
        let doomed = th.spawn(move |th| {
            let _g = mx1.lock(th);
            s1.write(th, |s| s.quarantined = true);
            cv1.notify_all(th);
        });

        // The supervisor (root): waits for the quarantine report, then
        // respawns the slot with a fresh worker.
        let mut g = mx.lock(th);
        while !slot.read(th, |s| s.quarantined) {
            g = cv.wait(g);
        }
        slot.write(th, |s| s.quarantined = false);
        drop(g);

        let (s2, o2, mx2, cv2) = (slot.clone(), out.clone(), mx, cv);
        let replacement = th.spawn(move |th| {
            o2.write(th, |v| *v = 77);
            let _g = mx2.lock(th);
            s2.write(th, |s| s.job_done = true);
            cv2.notify_all(th);
        });

        let mut g = mx.lock(th);
        while !slot.read(th, |s| s.job_done) {
            g = cv.wait(g);
        }
        drop(g);
        // The mutex handoff publishes the replacement's job output.
        assert_eq!(out.read(th, |v| *v), 77);

        th.join(doomed);
        th.join(replacement);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
}

/// Exchange-retry: two workers stage disjoint blocks; each hits one
/// injected fault on its first attempt and replays the (idempotent)
/// staging write, then records bytes and recoveries under the shared
/// counter mutex — the shape of `runner::update_task`'s
/// `retry::run(|| stage_block(..))` with `recovered_exchanges`
/// accounting. The explorer proves replayed writes stay self-ordered
/// and the counters publish to the joiner.
#[test]
fn exchange_retry_replay_is_clean() {
    struct Counters {
        staged: u64,
        recovered: u64,
    }

    const BYTES: u64 = 64;

    let cfg = Config {
        preemption_bound: 2,
        max_schedules: 60_000,
        max_steps: 20_000,
    };
    let report = explore(cfg, |th| {
        let mx = th.mutex("shard.counters");
        let counters = th.cell(
            "counters",
            Counters {
                staged: 0,
                recovered: 0,
            },
        );
        let buffers: Vec<MCell<u64>> = (0..2).map(|_| th.cell("stage-buffer", 0u64)).collect();

        let mut joins = Vec::new();
        for i in 0..2 {
            let (buf, counters, mx) = (buffers[i].clone(), counters.clone(), mx);
            joins.push(th.spawn(move |th| {
                let mut attempts = 0u64;
                loop {
                    attempts += 1;
                    // The staging write — idempotent by design, so the
                    // replay after a caught fault simply overwrites.
                    buf.write(th, |v| *v = 1000 + i as u64);
                    let fault = attempts == 1;
                    if !fault {
                        break;
                    }
                }
                let _g = mx.lock(th);
                counters.write(th, |c| {
                    c.staged += BYTES;
                    c.recovered += attempts - 1;
                });
            }));
        }
        for j in joins {
            th.join(j);
        }
        let _g = mx.lock(th);
        counters.read(th, |c| {
            assert_eq!(c.staged, 2 * BYTES);
            assert_eq!(c.recovered, 2, "each worker recovered exactly once");
        });
        drop(_g);
        // join edges publish the (replayed) staging writes.
        for (i, b) in buffers.iter().enumerate() {
            assert_eq!(b.read(th, |v| *v), 1000 + i as u64);
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
    assert!(report.schedules > 10, "expected a real exploration");
}
