//! Property tests: CSR construction is panic-free on untrusted input.
//!
//! Skipped wholesale under Miri (`miri-core` CI job): proptest drives
//! hundreds of cases per property, which takes tens of minutes under the
//! interpreter, and the unsafe row-view code these feed is covered by
//! sparse's unit tests that *do* run under Miri.
//!
//! `Coo::try_push` + `Csr::from_coo` must accept any in-bounds triplet
//! stream and produce a structurally valid matrix; `Csr::from_raw` must
//! reject any malformed raw arrays with a typed [`SparseError`] instead of
//! panicking or constructing a matrix that later indexes out of bounds.

#![cfg(not(miri))]

use proptest::prelude::*;
use sparse::{Coo, Csr, SparseError};

proptest! {
    /// Arbitrary triplets through the checked push: out-of-bounds pushes
    /// are typed errors, and whatever survives builds a valid CSR whose
    /// nnz never exceeds the accepted count (duplicates merge).
    #[test]
    fn coo_to_csr_always_validates(
        rows in 1usize..16,
        cols in 1usize..16,
        triplets in proptest::collection::vec((0usize..24, 0usize..24, -4f32..4f32), 0..64),
    ) {
        let mut coo = Coo::new(rows, cols);
        let mut accepted = 0usize;
        for &(r, c, v) in &triplets {
            match coo.try_push(r, c, v) {
                Ok(()) => accepted += 1,
                Err(SparseError::IndexOutOfBounds { row, col, shape }) => {
                    prop_assert_eq!((row, col), (r, c));
                    prop_assert_eq!(shape, (rows, cols));
                    prop_assert!(r >= rows || c >= cols);
                }
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
        }
        let csr = Csr::from_coo(&coo);
        prop_assert!(csr.validate().is_ok());
        prop_assert!(csr.nnz() <= accepted);
        prop_assert_eq!(csr.shape(), (rows, cols));
    }

    /// Raw-array construction on arbitrary (mostly invalid) inputs: never
    /// a panic, and anything accepted passes the full invariant check.
    #[test]
    fn from_raw_rejects_or_validates(
        nrows in 0usize..8,
        ncols in 0usize..8,
        row_ptr in proptest::collection::vec(0usize..12, 0..10),
        col_idx in proptest::collection::vec(0u32..12, 0..12),
        values in proptest::collection::vec(-4f32..4f32, 0..12),
    ) {
        match Csr::from_raw(nrows, ncols, row_ptr, col_idx, values) {
            Ok(csr) => prop_assert!(csr.validate().is_ok()),
            Err(SparseError::InvalidCsr { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Monotone-but-wrong row pointers (non-zero start, short tail) and
    /// out-of-range columns are all caught by the invariant check.
    #[test]
    fn validate_catches_seeded_corruption(
        rows in 2usize..10,
        cols in 2usize..10,
        nnz_per_row in 1usize..4,
    ) {
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            for j in 0..nnz_per_row {
                coo.push(r, (r + j) % cols, 1.0);
            }
        }
        let csr = Csr::from_coo(&coo);
        prop_assert!(csr.validate().is_ok());
        // Corrupt a copy through the raw constructor: shift every pointer
        // up by one so the array no longer starts at zero.
        let bad_ptr: Vec<usize> = csr.row_ptr().iter().map(|p| p + 1).collect();
        let res = Csr::from_raw(
            rows,
            cols,
            bad_ptr,
            csr.col_idx().to_vec(),
            csr.values().to_vec(),
        );
        let rejected = matches!(res, Err(SparseError::InvalidCsr { .. }));
        prop_assert!(rejected, "shifted row_ptr was accepted");
    }
}
