//! GCN adjacency normalization (Kipf & Welling).
//!
//! A GCN layer computes `H' = sigma(A_hat * H * W)` where
//! `A_hat = D^-1/2 (A + I) D^-1/2`, `A` is the (unweighted) adjacency matrix
//! with self loops added, and `D` its degree matrix. This module builds
//! `A_hat` in CSR form.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// Normalization schemes for the adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NormKind {
    /// Symmetric GCN normalization `D^-1/2 (A + I) D^-1/2`.
    #[default]
    Symmetric,
    /// Random-walk (row) normalization `D^-1 (A + I)`.
    RandomWalk,
    /// Self loops added but no degree scaling.
    None,
}

/// Builds the normalized adjacency matrix `A_hat` from a square adjacency
/// CSR. Self loops are always added (entries on the diagonal are merged with
/// any pre-existing ones before scaling).
///
/// Edge values in the input are treated as weights; a plain 0/1 adjacency
/// yields the textbook formula.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] if `adj` is not square.
///
/// # Examples
///
/// ```
/// use sparse::{Coo, Csr};
/// use sparse::norm::{normalize, NormKind};
///
/// // A path graph 0 - 1: each vertex ends with degree 2 (1 edge + self loop).
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// let a_hat = normalize(&Csr::from_coo(&coo), NormKind::Symmetric).unwrap();
/// assert!((a_hat.get(0, 0).unwrap() - 0.5).abs() < 1e-6);
/// assert!((a_hat.get(0, 1).unwrap() - 0.5).abs() < 1e-6);
/// ```
pub fn normalize(adj: &Csr, kind: NormKind) -> Result<Csr> {
    if adj.nrows() != adj.ncols() {
        return Err(SparseError::NotSquare { shape: adj.shape() });
    }
    let n = adj.nrows();

    // A + I
    let mut coo = Coo::with_capacity(n, n, adj.nnz() + n);
    for (r, c, v) in adj.iter() {
        coo.push(r, c, v);
    }
    for i in 0..n {
        coo.push(i, i, 1.0);
    }
    let with_loops = Csr::from_coo(&coo);

    if kind == NormKind::None {
        return Ok(with_loops);
    }

    // Weighted degree of A + I.
    let mut degree = vec![0.0f64; n];
    for (r, _, v) in with_loops.iter() {
        degree[r] += v as f64;
    }

    let inv_sqrt: Vec<f64> = degree
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let inv: Vec<f64> = degree
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();

    let mut scaled = Coo::with_capacity(n, n, with_loops.nnz());
    for (r, c, v) in with_loops.iter() {
        let w = match kind {
            NormKind::Symmetric => v as f64 * inv_sqrt[r] * inv_sqrt[c],
            NormKind::RandomWalk => v as f64 * inv[r],
            NormKind::None => unreachable!("handled above"),
        };
        scaled.push(r, c, w as f32);
    }
    Ok(Csr::from_coo(&scaled))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Csr {
        // 0 - 1 - 2 undirected path
        let mut coo = Coo::new(3, 3);
        for &(a, b) in &[(0usize, 1usize), (1, 2)] {
            coo.push(a, b, 1.0);
            coo.push(b, a, 1.0);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn symmetric_norm_rows_of_regular_graph_sum_to_one() {
        // A 4-cycle is 2-regular; with self loops every degree is 3 and the
        // symmetric norm coincides with the random-walk norm, so rows sum to 1.
        let mut coo = Coo::new(4, 4);
        for &(a, b) in &[(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
            coo.push(a, b, 1.0);
            coo.push(b, a, 1.0);
        }
        let a_hat = normalize(&Csr::from_coo(&coo), NormKind::Symmetric).unwrap();
        for r in 0..4 {
            let s: f32 = a_hat.row_values(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn symmetric_norm_matches_hand_computation_on_path() {
        let a_hat = normalize(&path3(), NormKind::Symmetric).unwrap();
        // Degrees with self loops: [2, 3, 2].
        assert!((a_hat.get(0, 0).unwrap() - 0.5).abs() < 1e-6);
        let expect_01 = 1.0 / (2.0f32 * 3.0).sqrt();
        assert!((a_hat.get(0, 1).unwrap() - expect_01).abs() < 1e-6);
        assert!((a_hat.get(1, 1).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_norm_is_symmetric() {
        let a_hat = normalize(&path3(), NormKind::Symmetric).unwrap();
        for (r, c, v) in a_hat.iter() {
            let vt = a_hat.get(c, r).expect("symmetric entry");
            assert!((v - vt).abs() < 1e-6);
        }
    }

    #[test]
    fn random_walk_rows_sum_to_one() {
        let a_hat = normalize(&path3(), NormKind::RandomWalk).unwrap();
        for r in 0..3 {
            let s: f32 = a_hat.row_values(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn none_only_adds_self_loops() {
        let a_hat = normalize(&path3(), NormKind::None).unwrap();
        assert_eq!(a_hat.nnz(), path3().nnz() + 3);
        assert_eq!(a_hat.get(2, 2), Some(1.0));
        assert_eq!(a_hat.get(0, 1), Some(1.0));
    }

    #[test]
    fn isolated_vertices_get_self_loop_weight_one() {
        let adj = Csr::empty(2, 2);
        let a_hat = normalize(&adj, NormKind::Symmetric).unwrap();
        // Degree 1 (self loop only) -> weight 1/sqrt(1)/sqrt(1) = 1.
        assert_eq!(a_hat.get(0, 0), Some(1.0));
        assert_eq!(a_hat.get(1, 1), Some(1.0));
        assert_eq!(a_hat.nnz(), 2);
    }

    #[test]
    fn non_square_is_rejected() {
        let adj = Csr::empty(2, 3);
        assert!(matches!(
            normalize(&adj, NormKind::Symmetric),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn existing_self_loops_are_merged_not_duplicated() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a_hat = normalize(&Csr::from_coo(&coo), NormKind::None).unwrap();
        // (0,0) exists once with merged weight 2.0 (existing 1.0 + added 1.0).
        assert_eq!(a_hat.get(0, 0), Some(2.0));
        assert_eq!(a_hat.nnz(), 4);
    }
}
