//! Sparse matrix formats and graph-adjacency utilities.
//!
//! The aggregation phase of a GCN multiplies a sparse normalized adjacency
//! matrix by a dense feature matrix (SpMM). This crate provides the sparse
//! side of that story:
//!
//! * [`Coo`] — an edge-list / triplet builder format,
//! * [`Csr`] — compressed sparse row, the execution format used by every
//!   SpMM kernel in this workspace (and the format whose byte traffic the
//!   paper's analytical model, Eq. 1, is written for),
//! * [`norm`] — the symmetric GCN normalization
//!   `A_hat = D^-1/2 (A + I) D^-1/2` from Kipf & Welling,
//! * [`permute`] — validated vertex permutations and CSR relabeling, the
//!   substrate for locality-aware graph reordering,
//! * [`stats`] — degree/density statistics used by the characterization.
//!
//! # Examples
//!
//! ```
//! use sparse::{Coo, Csr};
//!
//! let mut coo = Coo::new(3, 3);
//! coo.push(0, 1, 1.0);
//! coo.push(1, 2, 2.0);
//! coo.push(0, 1, 0.5); // duplicate entries are summed on conversion
//! let csr = Csr::from_coo(&coo);
//! assert_eq!(csr.nnz(), 2);
//! assert_eq!(csr.get(0, 1), Some(1.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Coordinate-format triples, the construction format.
pub mod coo;
/// Compressed sparse column storage.
pub mod csc;
/// Compressed sparse row storage, the kernel-facing format.
pub mod csr;
/// Sparse-format validation errors.
pub mod error;
/// Symmetric degree normalization (D^-1/2 (A+I) D^-1/2).
pub mod norm;
/// Format conversions and elementwise sparse ops.
pub mod ops;
/// Row/column permutation of sparse matrices.
pub mod permute;
/// NNZ/row statistics and imbalance metrics.
pub mod stats;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use error::SparseError;
pub use permute::Permutation;
pub use stats::DegreeStats;

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
