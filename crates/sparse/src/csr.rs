//! Compressed Sparse Row format — the execution format for SpMM.

use crate::coo::Coo;
use crate::error::SparseError;
use crate::Result;
use matrix::DenseMatrix;
use serde::{Deserialize, Serialize};

/// A sparse matrix in Compressed Sparse Row (CSR) form.
///
/// CSR stores three arrays (the same three the paper's analytical traffic
/// model, Eq. 1, accounts for):
///
/// * `row_ptr` — `nrows + 1` offsets; row `i` occupies
///   `col_idx[row_ptr[i]..row_ptr[i+1]]`,
/// * `col_idx` — column index of each non-zero, sorted within each row,
/// * `values` — the non-zero values.
///
/// # Examples
///
/// ```
/// use sparse::{Coo, Csr};
///
/// let mut coo = Coo::new(2, 3);
/// coo.push(0, 2, 1.0);
/// coo.push(1, 0, 2.0);
/// let csr = Csr::from_coo(&coo);
/// assert_eq!(csr.row_cols(0), &[2]);
/// assert_eq!(csr.row_values(1), &[2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

/// Shared structural-invariant check behind [`Csr::from_raw`] and
/// [`Csr::validate`].
fn check_invariants(
    nrows: usize,
    ncols: usize,
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f32],
) -> Result<()> {
    let invalid = |reason: String| Err(SparseError::InvalidCsr { reason });
    if row_ptr.len() != nrows + 1 {
        return invalid(format!(
            "row_ptr length {} != nrows + 1 = {}",
            row_ptr.len(),
            nrows + 1
        ));
    }
    if row_ptr.first() != Some(&0) {
        return invalid("row_ptr must start at 0".to_string());
    }
    if *row_ptr.last().expect("non-empty row_ptr") != col_idx.len() {
        return invalid(format!(
            "row_ptr must end at nnz = {}, ends at {}",
            col_idx.len(),
            row_ptr.last().expect("non-empty row_ptr")
        ));
    }
    if col_idx.len() != values.len() {
        return invalid(format!(
            "col_idx length {} != values length {}",
            col_idx.len(),
            values.len()
        ));
    }
    for w in row_ptr.windows(2) {
        if w[0] > w[1] {
            return invalid("row_ptr must be non-decreasing".to_string());
        }
    }
    for r in 0..nrows {
        let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
        for pair in row.windows(2) {
            if pair[0] >= pair[1] {
                return invalid(format!("columns in row {r} not strictly increasing"));
            }
        }
        if let Some(&last) = row.last() {
            if last as usize >= ncols {
                return invalid(format!("column {last} out of range in row {r}"));
            }
        }
    }
    Ok(())
}

impl Csr {
    /// Creates an empty (all-zero) CSR matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `ncols` exceeds `u32::MAX` (column indices are stored as
    /// `u32`, which covers every graph in the paper's Table I).
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        assert!(ncols <= u32::MAX as usize, "ncols exceeds u32 index range");
        Csr {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from COO triplets, summing duplicates.
    ///
    /// Runs in `O(nnz + nrows)` via counting sort on rows followed by an
    /// in-row sort and merge of duplicate columns.
    ///
    /// # Panics
    ///
    /// Panics if `coo.ncols()` exceeds `u32::MAX`.
    pub fn from_coo(coo: &Coo) -> Self {
        assert!(
            coo.ncols() <= u32::MAX as usize,
            "ncols exceeds u32 index range"
        );
        let (rows, cols, vals) = coo.arrays();
        let nrows = coo.nrows();

        // Counting sort by row.
        let mut counts = vec![0usize; nrows + 1];
        for &r in rows {
            counts[r + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; rows.len()];
        {
            let mut next = counts.clone();
            for (idx, &r) in rows.iter().enumerate() {
                order[next[r]] = idx;
                next[r] += 1;
            }
        }

        // Per row: sort by column, merge duplicates.
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(rows.len());
        let mut values: Vec<f32> = Vec::with_capacity(rows.len());
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            for &idx in &order[counts[r]..counts[r + 1]] {
                scratch.push((cols[idx] as u32, vals[idx]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                col_idx.push(c);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }

        Csr {
            nrows,
            ncols: coo.ncols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from raw arrays, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidCsr`] if `row_ptr` is not monotone,
    /// does not start at 0 / end at `col_idx.len()`, if the index and value
    /// arrays disagree in length, if a column index is out of range, or if
    /// columns within a row are not strictly increasing.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        check_invariants(nrows, ncols, &row_ptr, &col_idx, &values)?;
        Ok(Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Decomposes the matrix into its raw `(row_ptr, col_idx, values)`
    /// arrays — the inverse of [`Csr::from_raw`]. Callers that rebuild a
    /// fresh matrix every batch (the gathered-neighbourhood inference path)
    /// use this to recycle the backing buffers instead of reallocating.
    pub fn into_raw(self) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
        (self.row_ptr, self.col_idx, self.values)
    }

    /// Re-checks every structural invariant of this matrix, plus a sweep
    /// for non-finite stored values. Construction through the safe entry
    /// points keeps the structure valid, so this is a boundary check for
    /// matrices arriving from deserialization or untrusted loaders.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidCsr`] naming the violated invariant
    /// (the same conditions as [`Csr::from_raw`], or a NaN/Inf value).
    pub fn validate(&self) -> Result<()> {
        check_invariants(
            self.nrows,
            self.ncols,
            &self.row_ptr,
            &self.col_idx,
            &self.values,
        )?;
        if let Some(i) = self.values.iter().position(|v| !v.is_finite()) {
            return Err(SparseError::InvalidCsr {
                reason: format!("non-finite value at non-zero index {i}"),
            });
        }
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are non-zero (`nnz / (nrows * ncols)`).
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// The row-pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (one entry per non-zero).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The non-zero value array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nrows()`.
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nrows()`.
    pub fn row_values(&self, i: usize) -> &[f32] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Number of non-zeros in row `i` (the out-degree for adjacency use).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nrows()`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Looks up entry `(row, col)` by binary search within the row.
    /// Returns `None` for structural zeros or out-of-range coordinates.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row >= self.nrows || col >= self.ncols {
            return None;
        }
        let cols = self.row_cols(row);
        cols.binary_search(&(col as u32))
            .ok()
            .map(|k| self.values[self.row_ptr[row] + k])
    }

    /// Iterates over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_values(r))
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Returns the transpose (equivalently: reinterprets the matrix as CSC).
    pub fn transpose(&self) -> Csr {
        // lint:allow(L009): plan-construction path — transposes run once
        // when a plan or partition is built, never inside the per-layer
        // inference loop the hot seeds guard.
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        // lint:allow(L009): plan-construction path (see above).
        let mut col_idx = vec![0u32; self.nnz()];
        // lint:allow(L009): plan-construction path (see above).
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                let dst = next[c as usize];
                col_idx[dst] = r as u32;
                values[dst] = v;
                next[c as usize] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the matrix as dense. Intended for tests on small inputs.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            m[(r, c)] += v;
        }
        m
    }

    /// Out-degree (row non-zero count) of every row.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.nrows).map(|r| self.row_nnz(r)).collect()
    }

    /// In-degree (column non-zero count) of every column.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            deg[c as usize] += 1;
        }
        deg
    }

    /// Total bytes of the three CSR arrays as laid out by this
    /// implementation (`usize` row pointers, `u32` columns, `f32` values).
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * size_of::<usize>()
            + self.col_idx.len() * size_of::<u32>()
            + self.values.len() * size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 0 1 0 ]
        // [ 2 0 3 ]
        // [ 0 0 0 ]
        let mut coo = Coo::new(3, 3);
        coo.push(1, 2, 3.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        Csr::from_coo(&coo)
    }

    #[test]
    fn from_coo_sorts_rows_and_columns() {
        let csr = sample();
        assert_eq!(csr.row_ptr(), &[0, 1, 3, 3]);
        assert_eq!(csr.row_cols(1), &[0, 2]);
        assert_eq!(csr.row_values(1), &[2.0, 3.0]);
        csr.validate().unwrap();
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, -1.0);
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), Some(3.5));
    }

    #[test]
    fn get_returns_none_for_structural_zero() {
        let csr = sample();
        assert_eq!(csr.get(0, 0), None);
        assert_eq!(csr.get(2, 2), None);
        assert_eq!(csr.get(5, 5), None);
        assert_eq!(csr.get(0, 1), Some(1.0));
    }

    #[test]
    fn transpose_flips_coordinates() {
        let csr = sample();
        let t = csr.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(1, 0), Some(1.0));
        assert_eq!(t.get(0, 1), Some(2.0));
        assert_eq!(t.get(2, 1), Some(3.0));
        t.validate().unwrap();
    }

    #[test]
    fn transpose_twice_is_identity() {
        let csr = sample();
        assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn to_dense_matches_triplets() {
        let csr = sample();
        let d = csr.to_dense();
        assert_eq!(d[(0, 1)], 1.0);
        assert_eq!(d[(1, 0)], 2.0);
        assert_eq!(d[(1, 2)], 3.0);
        assert_eq!(d[(2, 2)], 0.0);
    }

    #[test]
    fn degrees_count_rows_and_columns() {
        let csr = sample();
        assert_eq!(csr.out_degrees(), vec![1, 2, 0]);
        assert_eq!(csr.in_degrees(), vec![1, 1, 1]);
    }

    #[test]
    fn density_is_nnz_over_size() {
        let csr = sample();
        assert!((csr.density() - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(Csr::empty(0, 0).density(), 0.0);
    }

    #[test]
    fn from_raw_rejects_bad_row_ptr() {
        assert!(Csr::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn from_raw_rejects_unsorted_or_out_of_range_columns() {
        // duplicate column in one row
        assert!(Csr::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // decreasing columns
        assert!(Csr::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // column out of range
        assert!(Csr::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn from_raw_accepts_valid_input() {
        let csr = Csr::from_raw(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(1, 1), Some(3.0));
    }

    #[test]
    fn empty_matrix_behaves() {
        let csr = Csr::empty(4, 4);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_nnz(3), 0);
        csr.validate().unwrap();
    }

    #[test]
    fn storage_bytes_counts_all_arrays() {
        let csr = sample();
        let expected = 4 * 8 + 3 * 4 + 3 * 4;
        assert_eq!(csr.storage_bytes(), expected);
    }

    #[test]
    fn iter_visits_row_major() {
        let csr = sample();
        let triplets: Vec<_> = csr.iter().collect();
        assert_eq!(triplets, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)]);
    }
}
