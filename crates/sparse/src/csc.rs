//! Compressed Sparse Column format.
//!
//! CSC is the transpose-view companion to [`Csr`]: columns are contiguous
//! instead of rows. GCN aggregation itself wants CSR (it streams
//! *in-edges* per output row), but backpropagation and pull-style analytics
//! want fast access to *out*-edges — which is exactly a CSC view of the
//! same matrix.

use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// A sparse matrix in Compressed Sparse Column form.
///
/// Internally stored as the CSR of the transpose, which makes the
/// `Csr <-> Csc` conversions exact and cheap to reason about.
///
/// # Examples
///
/// ```
/// use sparse::{Coo, Csr, Csc};
///
/// let mut coo = Coo::new(2, 3);
/// coo.push(0, 2, 5.0);
/// coo.push(1, 2, 7.0);
/// let csc = Csc::from_csr(&Csr::from_coo(&coo));
/// assert_eq!(csc.col_rows(2), &[0, 1]);
/// assert_eq!(csc.col_values(2), &[5.0, 7.0]);
/// assert_eq!(csc.col_rows(0), &[0u32; 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csc {
    transposed: Csr,
}

impl Csc {
    /// Builds the CSC form of a CSR matrix.
    pub fn from_csr(csr: &Csr) -> Self {
        Csc {
            transposed: csr.transpose(),
        }
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr {
        self.transposed.transpose()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.transposed.ncols()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.transposed.nrows()
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows(), self.ncols())
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.transposed.nnz()
    }

    /// Row indices of the non-zeros in column `j`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn col_rows(&self, j: usize) -> &[u32] {
        self.transposed.row_cols(j)
    }

    /// Values of the non-zeros in column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn col_values(&self, j: usize) -> &[f32] {
        self.transposed.row_values(j)
    }

    /// Non-zero count of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.transposed.row_nnz(j)
    }

    /// Looks up entry `(row, col)`; `None` for structural zeros.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        self.transposed.get(col, row)
    }

    /// Iterates `(row, col, value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.transposed.iter().map(|(c, r, v)| (r, c, v))
    }
}

impl From<&Csr> for Csc {
    fn from(csr: &Csr) -> Self {
        Csc::from_csr(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        // [ 0 1 0 ]
        // [ 2 0 3 ]
        let mut coo = Coo::new(2, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 2, 3.0);
        Csr::from_coo(&coo)
    }

    #[test]
    fn round_trip_preserves_the_matrix() {
        let csr = sample();
        let csc = Csc::from_csr(&csr);
        assert_eq!(csc.to_csr(), csr);
        assert_eq!(csc.shape(), (2, 3));
        assert_eq!(csc.nnz(), 3);
    }

    #[test]
    fn column_access_matches_entries() {
        let csc = Csc::from_csr(&sample());
        assert_eq!(csc.col_rows(0), &[1]);
        assert_eq!(csc.col_values(0), &[2.0]);
        assert_eq!(csc.col_nnz(1), 1);
        assert_eq!(csc.get(1, 2), Some(3.0));
        assert_eq!(csc.get(0, 0), None);
    }

    #[test]
    fn iter_is_column_major() {
        let csc = Csc::from_csr(&sample());
        let triplets: Vec<_> = csc.iter().collect();
        assert_eq!(triplets, vec![(1, 0, 2.0), (0, 1, 1.0), (1, 2, 3.0)]);
    }

    #[test]
    fn from_ref_trait_works() {
        let csr = sample();
        let csc: Csc = (&csr).into();
        assert_eq!(csc.nnz(), csr.nnz());
    }
}
