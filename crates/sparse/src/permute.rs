//! Vertex permutations and CSR reordering.
//!
//! Locality-aware graph reordering — degree sorting, BFS, RCM — relabels
//! vertices so that SpMM's scattered feature-row reads land close together
//! (the effect the paper's PIUMA DMA kernels engineer by hand: turning
//! scattered 8-byte loads into dense blocks). This module supplies the
//! mechanical half of that story: a validated bijection type
//! ([`Permutation`]) and [`Csr::permute`], which relabels rows and columns
//! in one pass. The orderings themselves live in `graph::reorder`, next to
//! the graph generators they inspect.

use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// A validated bijection on `0..len`, stored in both directions so lookups
/// never pay an inversion.
///
/// Conventions used throughout the workspace:
///
/// * `new_of_old[old] = new` — where an old vertex lands (*scatter* view),
/// * `old_of_new[new] = old` — which old vertex fills a new slot (*gather*
///   view; this is the "ordering" a traversal produces).
///
/// # Examples
///
/// ```
/// use sparse::Permutation;
///
/// // The ordering [2, 0, 1]: new vertex 0 is old vertex 2, and so on.
/// let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.new_of_old(2), 0);
/// assert_eq!(p.old_of_new(0), 2);
/// assert_eq!(p.inverse().new_of_old(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<usize>,
    old_of_new: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..len`.
    pub fn identity(len: usize) -> Self {
        let id: Vec<usize> = (0..len).collect();
        Permutation {
            new_of_old: id.clone(),
            old_of_new: id,
        }
    }

    /// Builds a permutation from the *gather* direction: `order[new] = old`.
    /// This is the natural output of a traversal ("visit old vertex 7
    /// first, then 3, ...").
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if `order` is not a
    /// bijection on `0..order.len()`.
    pub fn from_new_to_old(order: Vec<usize>) -> Result<Self> {
        let new_of_old = invert("from_new_to_old", &order)?;
        Ok(Permutation {
            new_of_old,
            old_of_new: order,
        })
    }

    /// Builds a permutation from the *scatter* direction: `map[old] = new`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if `map` is not a
    /// bijection on `0..map.len()`.
    pub fn from_old_to_new(map: Vec<usize>) -> Result<Self> {
        let old_of_new = invert("from_old_to_new", &map)?;
        Ok(Permutation {
            new_of_old: map,
            old_of_new,
        })
    }

    /// Number of elements permuted.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether the permutation is over the empty set.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// Where old index `old` lands.
    ///
    /// # Panics
    ///
    /// Panics if `old >= self.len()`.
    pub fn new_of_old(&self, old: usize) -> usize {
        self.new_of_old[old]
    }

    /// Which old index occupies new slot `new`.
    ///
    /// # Panics
    ///
    /// Panics if `new >= self.len()`.
    pub fn old_of_new(&self, new: usize) -> usize {
        self.old_of_new[new]
    }

    /// The full scatter map (`[old] -> new`).
    pub fn as_new_of_old(&self) -> &[usize] {
        &self.new_of_old
    }

    /// The full gather map (`[new] -> old`).
    pub fn as_old_of_new(&self) -> &[usize] {
        &self.old_of_new
    }

    /// The inverse permutation (swaps the two stored directions).
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_of_old: self.old_of_new.clone(),
            old_of_new: self.new_of_old.clone(),
        }
    }

    /// Whether this is the identity (reordering would be a no-op).
    pub fn is_identity(&self) -> bool {
        self.new_of_old.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// Gathers a slice into permuted order: `out[new] = xs[old_of_new[new]]`.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != self.len()`.
    pub fn gather<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        assert_eq!(xs.len(), self.len(), "slice length mismatch");
        self.old_of_new.iter().map(|&o| xs[o].clone()).collect()
    }

    /// Scatters a permuted slice back to original order:
    /// `out[old] = xs[new_of_old[old]]`. Inverse of [`Permutation::gather`].
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != self.len()`.
    pub fn scatter<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        assert_eq!(xs.len(), self.len(), "slice length mismatch");
        self.new_of_old.iter().map(|&n| xs[n].clone()).collect()
    }
}

/// Inverts `map`, verifying it is a bijection on `0..map.len()`.
fn invert(op: &'static str, map: &[usize]) -> Result<Vec<usize>> {
    let n = map.len();
    let mut inv = vec![usize::MAX; n];
    for (i, &m) in map.iter().enumerate() {
        if m >= n {
            return Err(SparseError::InvalidPermutation {
                reason: format!("{op}: index {m} out of range for length {n}"),
            });
        }
        if inv[m] != usize::MAX {
            return Err(SparseError::InvalidPermutation {
                reason: format!("{op}: index {m} appears more than once"),
            });
        }
        inv[m] = i;
    }
    Ok(inv)
}

impl Csr {
    /// Relabels rows and columns: entry `(r, c)` of `self` becomes entry
    /// `(rows.new_of_old(r), cols.new_of_old(c))` of the result. Values are
    /// preserved exactly; only positions move.
    ///
    /// Runs in `O(nnz log d_max + nrows)` — each output row gathers its
    /// source row and re-sorts by the relabeled columns.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if either permutation's
    /// length does not match the corresponding dimension.
    pub fn permute(&self, rows: &Permutation, cols: &Permutation) -> Result<Csr> {
        if rows.len() != self.nrows() {
            return Err(SparseError::InvalidPermutation {
                reason: format!(
                    "row permutation length {} != nrows {}",
                    rows.len(),
                    self.nrows()
                ),
            });
        }
        if cols.len() != self.ncols() {
            return Err(SparseError::InvalidPermutation {
                reason: format!(
                    "column permutation length {} != ncols {}",
                    cols.len(),
                    self.ncols()
                ),
            });
        }
        let mut row_ptr = Vec::with_capacity(self.nrows() + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.nnz());
        let mut values: Vec<f32> = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for new_r in 0..self.nrows() {
            let old_r = rows.old_of_new(new_r);
            scratch.clear();
            for (&c, &v) in self.row_cols(old_r).iter().zip(self.row_values(old_r)) {
                scratch.push((cols.new_of_old(c as usize) as u32, v));
            }
            // A bijection cannot create duplicate columns, so sorting is all
            // that is needed to restore the within-row invariant.
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_raw(self.nrows(), self.ncols(), row_ptr, col_idx, values)
    }

    /// [`Csr::permute`] applying the same permutation to rows and columns —
    /// the adjacency-matrix case, where relabeling vertices relabels both
    /// dimensions at once.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if the matrix is not
    /// square or the permutation length does not match.
    pub fn permute_symmetric(&self, perm: &Permutation) -> Result<Csr> {
        if self.nrows() != self.ncols() {
            return Err(SparseError::InvalidPermutation {
                reason: format!(
                    "symmetric permutation requires a square matrix, got {}x{}",
                    self.nrows(),
                    self.ncols()
                ),
            });
        }
        self.permute(perm, perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr {
        // [ 0 1 0 ]
        // [ 2 0 3 ]
        // [ 0 4 0 ]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 1, 4.0);
        Csr::from_coo(&coo)
    }

    #[test]
    fn identity_round_trips() {
        let csr = sample();
        let id = Permutation::identity(3);
        assert!(id.is_identity());
        assert_eq!(csr.permute(&id, &id).unwrap(), csr);
    }

    #[test]
    fn permute_moves_entries() {
        let csr = sample();
        // Rotate vertices: old 0 -> new 1, old 1 -> new 2, old 2 -> new 0.
        let p = Permutation::from_old_to_new(vec![1, 2, 0]).unwrap();
        let b = csr.permute_symmetric(&p).unwrap();
        b.validate().unwrap();
        for (r, c, v) in csr.iter() {
            assert_eq!(b.get(p.new_of_old(r), p.new_of_old(c)), Some(v));
        }
        assert_eq!(b.nnz(), csr.nnz());
    }

    #[test]
    fn inverse_undoes_permute() {
        let csr = sample();
        let rows = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let cols = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let there = csr.permute(&rows, &cols).unwrap();
        let back = there.permute(&rows.inverse(), &cols.inverse()).unwrap();
        assert_eq!(back, csr);
    }

    #[test]
    fn gather_and_scatter_are_inverse() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let xs = vec!["a", "b", "c", "d"];
        let gathered = p.gather(&xs);
        assert_eq!(gathered, vec!["c", "a", "d", "b"]);
        assert_eq!(p.scatter(&gathered), xs);
    }

    #[test]
    fn invalid_permutations_are_rejected() {
        assert!(Permutation::from_new_to_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 5]).is_err());
        assert!(Permutation::from_old_to_new(vec![1, 1, 0]).is_err());
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let csr = sample();
        let p2 = Permutation::identity(2);
        let p3 = Permutation::identity(3);
        assert!(csr.permute(&p2, &p3).is_err());
        assert!(csr.permute(&p3, &p2).is_err());
    }

    #[test]
    fn non_square_symmetric_permute_is_rejected() {
        let csr = Csr::empty(2, 3);
        assert!(csr.permute_symmetric(&Permutation::identity(2)).is_err());
    }

    #[test]
    fn rectangular_permute_works() {
        let mut coo = Coo::new(2, 4);
        coo.push(0, 3, 1.0);
        coo.push(1, 0, 2.0);
        let csr = Csr::from_coo(&coo);
        let rows = Permutation::from_new_to_old(vec![1, 0]).unwrap();
        let cols = Permutation::from_new_to_old(vec![3, 2, 1, 0]).unwrap();
        let b = csr.permute(&rows, &cols).unwrap();
        assert_eq!(b.get(1, 0), Some(1.0)); // (0,3) -> (1,0)
        assert_eq!(b.get(0, 3), Some(2.0)); // (1,0) -> (0,3)
    }
}
