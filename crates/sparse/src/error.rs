//! Error types for sparse-matrix operations.

use std::error::Error;
use std::fmt;

/// Error produced by sparse-matrix construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A coordinate was outside the declared matrix shape.
    IndexOutOfBounds {
        /// The offending row index.
        row: usize,
        /// The offending column index.
        col: usize,
        /// Matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// Raw CSR arrays failed an invariant check.
    InvalidCsr {
        /// Which invariant was violated.
        reason: String,
    },
    /// A sparse and a dense operand had incompatible shapes.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Sparse operand shape.
        sparse: (usize, usize),
        /// Dense operand shape.
        dense: (usize, usize),
    },
    /// Normalization requires a square adjacency matrix.
    NotSquare {
        /// The actual shape.
        shape: (usize, usize),
    },
    /// A vertex permutation was not a bijection or had the wrong length.
    InvalidPermutation {
        /// Which requirement was violated.
        reason: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            SparseError::InvalidCsr { reason } => write!(f, "invalid CSR structure: {reason}"),
            SparseError::DimensionMismatch { op, sparse, dense } => write!(
                f,
                "dimension mismatch in {op}: sparse is {}x{}, dense is {}x{}",
                sparse.0, sparse.1, dense.0, dense.1
            ),
            SparseError::NotSquare { shape } => {
                write!(
                    f,
                    "operation requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
            SparseError::InvalidPermutation { reason } => {
                write!(f, "invalid permutation: {reason}")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_coordinates() {
        let e = SparseError::IndexOutOfBounds {
            row: 9,
            col: 4,
            shape: (3, 3),
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4') && s.contains("3x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
