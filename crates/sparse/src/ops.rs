//! Additional sparse linear-algebra operations: SpMV and sparse sums.
//!
//! SpMM with `K = 1` degenerates to sparse matrix-vector multiplication —
//! the kernel behind PageRank-style power iteration, another classic
//! PIUMA workload. A dedicated SpMV avoids the dense-matrix scaffolding.

use crate::csr::Csr;
use crate::error::SparseError;
use crate::Coo;
use crate::Result;

/// Sparse matrix-vector product `y = A * x`.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `x.len() != a.ncols()`.
///
/// # Examples
///
/// ```
/// use sparse::{Coo, Csr};
/// use sparse::ops::spmv;
///
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 1, 2.0);
/// coo.push(1, 0, 3.0);
/// let a = Csr::from_coo(&coo);
/// assert_eq!(spmv(&a, &[1.0, 10.0]).unwrap(), vec![20.0, 3.0]);
/// ```
pub fn spmv(a: &Csr, x: &[f32]) -> Result<Vec<f32>> {
    if x.len() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv",
            sparse: a.shape(),
            dense: (x.len(), 1),
        });
    }
    let mut y = vec![0.0f32; a.nrows()];
    for (u, out) in y.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
            acc += w * x[v as usize];
        }
        *out = acc;
    }
    Ok(y)
}

/// Element-wise sum of two sparse matrices (`a + b`).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if shapes differ.
pub fn add(a: &Csr, b: &Csr) -> Result<Csr> {
    if a.shape() != b.shape() {
        return Err(SparseError::DimensionMismatch {
            op: "add",
            sparse: a.shape(),
            dense: b.shape(),
        });
    }
    let mut coo = Coo::with_capacity(a.nrows(), a.ncols(), a.nnz() + b.nnz());
    for (r, c, v) in a.iter().chain(b.iter()) {
        coo.push(r, c, v);
    }
    Ok(Csr::from_coo(&coo))
}

/// PageRank by power iteration over the random-walk matrix: returns the
/// stationary distribution with damping `d` after `iterations` rounds.
/// `a` is interpreted as a (directed) adjacency matrix; dangling vertices
/// redistribute uniformly.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] if `a` is not square.
pub fn pagerank(a: &Csr, damping: f32, iterations: usize) -> Result<Vec<f32>> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare { shape: a.shape() });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Column-stochastic walk matrix = transpose of row-normalized A.
    let out_deg: Vec<f32> = (0..n).map(|u| a.row_nnz(u) as f32).collect();
    let at = a.transpose();
    let mut rank = vec![1.0 / n as f32; n];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f32; n];
        // Mass from dangling vertices spreads uniformly.
        let dangling: f32 = (0..n).filter(|&u| out_deg[u] == 0.0).map(|u| rank[u]).sum();
        let uniform = damping * dangling / n as f32;
        for (v, nv) in next.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (&u, &w) in at.row_cols(v).iter().zip(at.row_values(v)) {
                let u = u as usize;
                // Weight of edge u->v relative to u's out-weight; for 0/1
                // adjacencies this is 1/out_deg.
                acc += rank[u] * w / out_deg[u].max(1.0);
            }
            *nv += damping * acc + uniform;
        }
        rank = next;
    }
    Ok(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 0, 3.0);
        Csr::from_coo(&coo)
    }

    #[test]
    fn spmv_matches_dense_product() {
        let a = small();
        let x = [1.0f32, 2.0, 3.0];
        let y = spmv(&a, &x).unwrap();
        let dense = a.to_dense();
        for (u, &yu) in y.iter().enumerate() {
            let expected: f32 = (0..3).map(|v| dense[(u, v)] * x[v]).sum();
            assert!((yu - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn spmv_rejects_wrong_length() {
        assert!(spmv(&small(), &[1.0]).is_err());
    }

    #[test]
    fn add_merges_overlapping_entries() {
        let a = small();
        let b = small();
        let c = add(&a, &b).unwrap();
        assert_eq!(c.nnz(), a.nnz());
        assert_eq!(c.get(1, 2), Some(4.0));
        assert!(add(&a, &Csr::empty(2, 2)).is_err());
    }

    #[test]
    fn pagerank_sums_to_one_and_favours_hubs() {
        // Star: everything points at vertex 0.
        let mut coo = Coo::new(5, 5);
        for v in 1..5 {
            coo.push(v, 0, 1.0);
        }
        coo.push(0, 1, 1.0); // one out-edge so 0 is not dangling
        let a = Csr::from_coo(&coo);
        let r = pagerank(&a, 0.85, 50).unwrap();
        let total: f32 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "ranks sum to {total}");
        for v in 2..5 {
            assert!(r[0] > r[v], "hub must outrank leaf {v}");
        }
    }

    #[test]
    fn pagerank_handles_dangling_vertices() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0); // 1 and 2 are dangling
        let a = Csr::from_coo(&coo);
        let r = pagerank(&a, 0.85, 30).unwrap();
        let total: f32 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-3);
        assert!(r.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pagerank_of_symmetric_cycle_is_uniform() {
        let mut coo = Coo::new(4, 4);
        for v in 0..4usize {
            coo.push(v, (v + 1) % 4, 1.0);
        }
        let a = Csr::from_coo(&coo);
        let r = pagerank(&a, 0.85, 60).unwrap();
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-4, "cycle rank {x}");
        }
    }

    #[test]
    fn pagerank_rejects_non_square() {
        assert!(pagerank(&Csr::empty(2, 3), 0.85, 5).is_err());
    }
}
