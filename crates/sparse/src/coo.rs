//! Coordinate (triplet) sparse format — the builder format.

use crate::error::SparseError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A sparse matrix in coordinate (COO) form: a bag of `(row, col, value)`
/// triplets. COO is the natural output of graph generators and edge-list
/// readers; convert to [`crate::Csr`] before running kernels.
///
/// Duplicate coordinates are allowed and are *summed* during CSR conversion,
/// matching the multi-edge semantics of RMAT generators.
///
/// # Examples
///
/// ```
/// use sparse::Coo;
///
/// let mut coo = Coo::new(4, 4);
/// coo.push(0, 1, 1.0);
/// coo.push(3, 2, -2.0);
/// assert_eq!(coo.nnz(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f32>,
}

impl Coo {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Appends a triplet without bounds checking beyond a debug assertion.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinate is out of bounds; use
    /// [`Coo::try_push`] for checked insertion.
    pub fn push(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
    }

    /// Appends a triplet, validating the coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for coordinates outside the
    /// declared shape.
    pub fn try_push(&mut self, row: usize, col: usize, value: f32) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                shape: (self.nrows, self.ncols),
            });
        }
        self.push(row, col, value);
        Ok(())
    }

    /// Number of stored triplets (including duplicates).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Iterates over stored triplets as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Borrowed views of the three triplet arrays `(rows, cols, values)`.
    pub fn arrays(&self) -> (&[usize], &[usize], &[f32]) {
        (&self.rows, &self.cols, &self.values)
    }

    /// Adds the transposed copy of every entry, symmetrizing the matrix.
    /// Diagonal entries are not duplicated.
    ///
    /// This is how undirected graphs are built from directed edge lists.
    pub fn symmetrize(&mut self) {
        let n = self.nnz();
        for i in 0..n {
            let (r, c) = (self.rows[i], self.cols[i]);
            if r != c {
                self.rows.push(c);
                self.cols.push(r);
                self.values.push(self.values[i]);
            }
        }
    }
}

impl Extend<(usize, usize, f32)> for Coo {
    fn extend<I: IntoIterator<Item = (usize, usize, f32)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let coo = Coo::new(5, 5);
        assert_eq!(coo.nnz(), 0);
        assert_eq!(coo.shape(), (5, 5));
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut coo = Coo::new(2, 2);
        assert!(coo.try_push(2, 0, 1.0).is_err());
        assert!(coo.try_push(0, 2, 1.0).is_err());
        assert!(coo.try_push(1, 1, 1.0).is_ok());
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn iter_round_trips_triplets() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(2, 2, 3.0);
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(0, 1, 1.0), (2, 2, 3.0)]);
    }

    #[test]
    fn symmetrize_mirrors_off_diagonal_only() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(2, 2, 5.0);
        coo.symmetrize();
        let mut triplets: Vec<_> = coo.iter().collect();
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(triplets, vec![(0, 1, 2.0), (1, 0, 2.0), (2, 2, 5.0)]);
    }

    #[test]
    fn extend_appends_triplets() {
        let mut coo = Coo::new(4, 4);
        coo.extend(vec![(0, 0, 1.0), (1, 2, 2.0)]);
        assert_eq!(coo.nnz(), 2);
    }
}
