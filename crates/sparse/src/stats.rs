//! Degree and density statistics for sparse matrices.
//!
//! The paper characterizes GCN behaviour as a function of graph *scale*
//! (`|V|`) and *sparsity* (`|E| / |V|^2`); these statistics feed Figure 2's
//! contour analysis and the dataset catalog.

use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// Summary statistics of a degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices (rows).
    pub vertices: usize,
    /// Number of edges (non-zeros).
    pub edges: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Maximum out-degree.
    pub max: usize,
    /// Minimum out-degree.
    pub min: usize,
    /// Out-degree standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`); 0 for regular graphs,
    /// large for power-law graphs. Load imbalance of vertex-parallel SpMM
    /// grows with this value.
    pub cv: f64,
    /// Density `|E| / |V|^2`.
    pub density: f64,
    /// Fraction of vertices with zero out-degree.
    pub isolated_fraction: f64,
}

impl DegreeStats {
    /// Computes out-degree statistics of a CSR matrix.
    pub fn of(csr: &Csr) -> Self {
        let n = csr.nrows();
        let nnz = csr.nnz();
        if n == 0 {
            return DegreeStats {
                vertices: 0,
                edges: 0,
                mean: 0.0,
                max: 0,
                min: 0,
                std_dev: 0.0,
                cv: 0.0,
                density: 0.0,
                isolated_fraction: 0.0,
            };
        }
        let mut max = 0usize;
        let mut min = usize::MAX;
        let mut isolated = 0usize;
        let mut sum_sq = 0.0f64;
        for r in 0..n {
            let d = csr.row_nnz(r);
            max = max.max(d);
            min = min.min(d);
            if d == 0 {
                isolated += 1;
            }
            sum_sq += (d as f64) * (d as f64);
        }
        let mean = nnz as f64 / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        let std_dev = var.sqrt();
        DegreeStats {
            vertices: n,
            edges: nnz,
            mean,
            max,
            min,
            std_dev,
            cv: if mean > 0.0 { std_dev / mean } else { 0.0 },
            density: csr.density(),
            isolated_fraction: isolated as f64 / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn regular_graph_has_zero_cv() {
        // 3-cycle: every vertex has out-degree 1.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 1.0);
        let s = DegreeStats::of(&Csr::from_coo(&coo));
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.max, 1);
        assert_eq!(s.min, 1);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.isolated_fraction, 0.0);
    }

    #[test]
    fn star_graph_is_skewed() {
        // Hub 0 points to 1..=4.
        let mut coo = Coo::new(5, 5);
        for i in 1..5 {
            coo.push(0, i, 1.0);
        }
        let s = DegreeStats::of(&Csr::from_coo(&coo));
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 0);
        assert!(s.cv > 1.0, "hub graph should have high cv, got {}", s.cv);
        assert!((s.isolated_fraction - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_yields_zeroed_stats() {
        let s = DegreeStats::of(&Csr::empty(0, 0));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn density_matches_formula() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(2, 3, 1.0);
        let s = DegreeStats::of(&Csr::from_coo(&coo));
        assert!((s.density - 2.0 / 16.0).abs() < 1e-12);
    }
}
