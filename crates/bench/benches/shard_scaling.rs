//! Sharded GCN strong-scaling study: measured execution plus PIUMA
//! projection over N ∈ {1, 2, 4, 8} shards, F ∈ {16, 64, 256} feature
//! widths, both partition kinds, natural and RCM-reordered vertex order.
//!
//! Two result families per configuration, written to
//! `results/BENCH_shard_scaling.json` (one JSON object per row, one row
//! per line, so the report crate can scan it without a JSON parser):
//!
//! * **Measured**: median wall-clock of [`shard::ShardedGcn::infer`] on
//!   this host (the task graph drains through the process pool, so on a
//!   small host this measures work + scheduling overhead, not
//!   distributed-memory latency), with per-shard NNZ imbalance and halo
//!   volume (rows, bytes, fraction of staged traffic) from the partition
//!   ledger.
//! * **Projected**: [`shard::simulate_model`] on one 8-core PIUMA node
//!   per shard — per-node DMA halo gathers over the HyperX path, DRAM /
//!   dense-peak kernel bounds, and a closing barrier — reported as
//!   achieved GFLOPS and parallel efficiency against the N=1 baseline of
//!   the same kind/width/ordering.
//!
//! The reordering column is the satellite study: RCM tightens each row
//! block's reference window, so the halo fraction (and the exchanged
//! bytes) drop relative to the natural order at the same N.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, Criterion};
use gcn::{GcnConfig, GcnModel};
use graph::{OgbDataset, ReorderKind, ReorderedGraph};
use matrix::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shard::sim::parallel_efficiency;
use shard::{simulate_model, PartitionKind, ShardedGcn};
use sparse::Csr;
use std::fmt::Write as _;
use std::time::Instant;

/// Shard counts swept (one simulated PIUMA node per shard).
const N_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Feature widths swept (the paper's K ∈ {8..256} band edges + middle).
const F_SWEEP: [usize; 3] = [16, 64, 256];
/// Cores per simulated PIUMA node.
const CORES_PER_NODE: usize = 8;
/// Vertex cap for the Products twin.
const TWIN_CAP: usize = 1 << 12;
/// Wall-clock repetitions per measured configuration (median reported).
const REPS: usize = 3;

fn random_features(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    DenseMatrix::from_vec(rows, cols, data).unwrap()
}

fn median_secs(mut f: impl FnMut()) -> f64 {
    f(); // warmup sizes every stage / accumulator buffer
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The two orderings under study: natural twin order and RCM.
fn twins() -> [(&'static str, Csr); 2] {
    let g = OgbDataset::Products.materialize_scaled(TWIN_CAP, 0xC0FFEE);
    let natural = g.normalized_adjacency().unwrap();
    let rcm = ReorderedGraph::new(&g, ReorderKind::Rcm)
        .graph()
        .normalized_adjacency()
        .unwrap();
    [("natural", natural), ("rcm", rcm)]
}

struct Row {
    workers: usize,
    kind: PartitionKind,
    reordered: bool,
    f: usize,
    imbalance: f64,
    halo_rows: usize,
    halo_frac: f64,
    exchange_bytes: u64,
    median_s: f64,
    measured_gflops: f64,
    sim_gflops: f64,
    sim_efficiency: f64,
}

fn measure(a: &Csr, reordered: bool) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x5AAD);
    let mut rows = Vec::new();
    for kind in [PartitionKind::Rows1D, PartitionKind::Grid2D] {
        for &f in &F_SWEEP {
            let model = GcnModel::new(&GcnConfig::from_dims(vec![f, f]), 7);
            let x = random_features(&mut rng, a.nrows(), f);
            let flops = 2.0 * a.nnz() as f64 * f as f64 + 2.0 * a.nrows() as f64 * (f * f) as f64;
            let mut base_sim = None;
            for &n in &N_SWEEP {
                let mut sharded = ShardedGcn::new(a, n, kind).expect("shard plan builds");
                let median_s = median_secs(|| {
                    sharded
                        .infer(&model, &x)
                        .expect("sharded inference succeeds");
                });
                let report = sharded.report(&model);
                let sim = simulate_model(sharded.plan(), &[(f, f)], CORES_PER_NODE);
                let eff = match &base_sim {
                    None => {
                        let e = 1.0;
                        base_sim = Some(sim.clone());
                        e
                    }
                    Some(base) => parallel_efficiency(base, 1, &sim, n),
                };
                rows.push(Row {
                    workers: n,
                    kind,
                    reordered,
                    f,
                    imbalance: report.imbalance,
                    halo_rows: report.halo_rows,
                    halo_frac: report.halo_fraction,
                    exchange_bytes: report.staged_bytes,
                    median_s,
                    measured_gflops: flops / median_s / 1e9,
                    sim_gflops: sim.gflops(),
                    sim_efficiency: eff,
                });
            }
        }
    }
    rows
}

fn write_stats(rows: &[Row], vertices: usize, nnz: usize) {
    // Satellite headline: RCM's halo-byte reduction at the widest sweep
    // point (N=8, 1D, F=256) relative to the natural ordering.
    let halo_at = |reordered: bool| {
        rows.iter()
            .find(|r| {
                r.workers == 8
                    && r.kind == PartitionKind::Rows1D
                    && r.f == 256
                    && r.reordered == reordered
            })
            .map_or(0.0, |r| r.exchange_bytes as f64)
    };
    let natural = halo_at(false);
    let reduction = if natural > 0.0 {
        1.0 - halo_at(true) / natural
    } else {
        0.0
    };

    let mut rows_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            rows_json.push(',');
        }
        write!(
            rows_json,
            "\n    {{\"workers\": {}, \"kind\": \"{}\", \"reordered\": {}, \"f\": {}, \
             \"imbalance\": {:.3}, \"halo_rows\": {}, \"halo_frac\": {:.4}, \
             \"exchange_bytes\": {}, \"median_ms\": {:.3}, \"measured_gflops\": {:.3}, \
             \"sim_gflops\": {:.2}, \"sim_efficiency\": {:.3}}}",
            r.workers,
            r.kind.name(),
            r.reordered,
            r.f,
            r.imbalance,
            r.halo_rows,
            r.halo_frac,
            r.exchange_bytes,
            r.median_s * 1e3,
            r.measured_gflops,
            r.sim_gflops,
            r.sim_efficiency,
        )
        .expect("writing to a String cannot fail");
    }
    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"seed\": {BENCH_SEED},\n  \
         \"graph\": \"products_twin\", \"vertices\": {vertices}, \"nnz\": {nnz},\n  \
         \"cores_per_node\": {CORES_PER_NODE}, \"reps\": {REPS},\n  \
         \"rcm_halo_reduction_n8_1d_f256\": {reduction:.3},\n  \
         \"rows\": [{rows_json}\n  ]\n}}\n"
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(format!("{dir}/BENCH_shard_scaling.json"), &json))
    {
        eprintln!("shard_scaling: failed to write stats JSON: {e}");
    } else {
        eprintln!("shard_scaling: wrote {dir}/BENCH_shard_scaling.json");
    }
}

fn bench_all(c: &mut Criterion) {
    let mut all = Vec::new();
    let mut shape = (0usize, 0usize);
    for (name, a) in twins() {
        shape = (a.nrows(), a.nnz());
        eprintln!("shard_scaling: sweeping {name} ordering");
        all.extend(measure(&a, name == "rcm"));
    }
    write_stats(&all, shape.0, shape.1);

    // One interactive criterion datapoint per partition kind so the sweep
    // above stays a single-shot (it is far too wide for criterion's
    // sampling).
    let a = twins()[0].1.clone();
    let model = GcnModel::new(&GcnConfig::from_dims(vec![64, 64]), 7);
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let x = random_features(&mut rng, a.nrows(), 64);
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for kind in [PartitionKind::Rows1D, PartitionKind::Grid2D] {
        let mut sharded = ShardedGcn::new(&a, 4, kind).expect("shard plan builds");
        group.bench_function(format!("infer_n4_{}_f64", kind.name()), |b| {
            b.iter(|| {
                sharded
                    .infer(&model, &x)
                    .expect("sharded inference succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
