//! Benchmark target regenerating the paper's Fig9 experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use report::experiments::{Experiment, Fidelity};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_speedups");
    group.sample_size(10);
    group.bench_function("fig9", |b| b.iter(|| Experiment::Fig9.run(Fidelity::Quick)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
