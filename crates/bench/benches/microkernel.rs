//! Dense micro-kernel engine: packed register-tiled GEMM vs the scalar
//! baselines, and the widened-AXPY SpMM path across feature widths.
//!
//! Two question sets, matching the paper's two pillars of a GCN layer:
//!
//! * **GEMM GFLOPS** at 512x512x512, single-threaded: naive triple loop vs
//!   the cache-blocked scalar kernel (`matmul_blocked`, the pre-microkernel
//!   production path) vs the packed register-tiled engine on each available
//!   backend (scalar / portable / AVX2+FMA). The acceptance bar is packed
//!   beating blocked by >= 2x.
//! * **SpMM effective GB/s** at F in {16, 64, 256} on an RMAT graph, using
//!   the paper's traffic model (CSR read + one feature-row read per
//!   non-zero + output write) — feature-width scaling is exactly the lever
//!   the Harvard embedding study identifies, and the widened AXPY is what
//!   moves it.
//!
//! Alongside the interactive criterion groups, medians of explicit
//! wall-clock reps are written to `results/BENCH_microkernel.json`.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::rmat::RmatConfig;
use graph::Graph;
use matrix::gemm::{gemm_flops, matmul_blocked, matmul_naive};
use matrix::microkernel::{avx2_available, matmul_packed_with, Backend, KernelDispatch};
use matrix::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::Csr;
use std::fmt::Write as _;
use std::time::Instant;

/// GEMM edge for the measured numbers (the acceptance-criteria shape).
const GEMM_DIM: usize = 512;
/// Wall-clock repetitions per measured kernel (median reported).
const REPS: usize = 5;
/// log2 vertex count of the SpMM fixture graph.
const SPMM_SCALE: u32 = 14;
/// Average degree of the SpMM fixture graph.
const SPMM_DEGREE: usize = 8;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    DenseMatrix::from_vec(rows, cols, data).unwrap()
}

/// Median of `REPS` wall-clock timings of `f` (one warmup call first).
fn median_secs(mut f: impl FnMut()) -> f64 {
    f(); // warmup: touches buffers, grows pool scratch to capacity
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The packed-GEMM backends worth measuring on this machine, most capable
/// last; the final entry equals what `KernelDispatch::get()` resolves to
/// (absent `MICROKERNEL_FORCE`).
fn backends() -> Vec<KernelDispatch> {
    let mut v = vec![
        KernelDispatch::with_backend(Backend::Scalar),
        KernelDispatch::with_backend(Backend::Portable),
    ];
    if avx2_available() {
        v.push(KernelDispatch::with_backend(Backend::Avx2Fma));
    }
    v
}

/// Effective SpMM traffic in bytes under the paper's model: each non-zero
/// reads one `u32` column index + one `f32` value + one `F`-wide feature
/// row, and every output element is written once (read-modify-write
/// counted as one access each way).
fn spmm_traffic_bytes(a: &Csr, f: usize) -> f64 {
    let nnz = a.nnz() as f64;
    let n = a.nrows() as f64;
    nnz * 8.0 + nnz * (f as f64) * 4.0 + 2.0 * n * (f as f64) * 4.0
}

struct GemmMeasurement {
    name: String,
    median_s: f64,
    gflops: f64,
}

fn measure_gemm() -> Vec<GemmMeasurement> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let a = random_matrix(&mut rng, GEMM_DIM, GEMM_DIM);
    let b = random_matrix(&mut rng, GEMM_DIM, GEMM_DIM);
    let flops = gemm_flops(GEMM_DIM, GEMM_DIM, GEMM_DIM);
    let mut out = Vec::new();
    let mut push = |name: String, median_s: f64| {
        out.push(GemmMeasurement {
            name,
            median_s,
            gflops: flops / median_s / 1e9,
        });
    };
    push(
        "naive".into(),
        median_secs(|| {
            matmul_naive(&a, &b).unwrap();
        }),
    );
    push(
        "blocked".into(),
        median_secs(|| {
            matmul_blocked(&a, &b).unwrap();
        }),
    );
    let mut c = DenseMatrix::default();
    for kd in backends() {
        push(
            format!("packed_{}", kd.backend().name()),
            median_secs(|| {
                matmul_packed_with(kd, &a, &b, 1, &mut c).unwrap();
            }),
        );
    }
    out
}

struct SpmmMeasurement {
    f: usize,
    median_s: f64,
    gbps: f64,
}

fn measure_spmm(a: &Csr) -> Vec<SpmmMeasurement> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x5A11);
    let mut out = DenseMatrix::default();
    [16usize, 64, 256]
        .into_iter()
        .map(|f| {
            let h = random_matrix(&mut rng, a.ncols(), f);
            let median_s = median_secs(|| {
                kernels::spmm::spmm_sequential_into(a, &h, &mut out).unwrap();
            });
            SpmmMeasurement {
                f,
                median_s,
                gbps: spmm_traffic_bytes(a, f) / median_s / 1e9,
            }
        })
        .collect()
}

fn write_stats(a: &Csr) {
    let gemm = measure_gemm();
    let spmm = measure_spmm(a);
    let blocked = gemm
        .iter()
        .find(|m| m.name == "blocked")
        .map_or(0.0, |m| m.gflops);
    let packed_best = gemm
        .iter()
        .filter(|m| m.name.starts_with("packed_"))
        .map(|m| m.gflops)
        .fold(0.0, f64::max);
    let speedup = if blocked > 0.0 {
        packed_best / blocked
    } else {
        0.0
    };

    let mut kernels_json = String::new();
    for (i, m) in gemm.iter().enumerate() {
        if i > 0 {
            kernels_json.push(',');
        }
        write!(
            kernels_json,
            "\n      {{\"name\": \"{}\", \"median_ms\": {:.3}, \"gflops\": {:.3}}}",
            m.name,
            m.median_s * 1e3,
            m.gflops
        )
        .expect("writing to a String cannot fail");
    }
    let mut widths_json = String::new();
    for (i, m) in spmm.iter().enumerate() {
        if i > 0 {
            widths_json.push(',');
        }
        write!(
            widths_json,
            "\n      {{\"f\": {}, \"median_ms\": {:.3}, \"gbps\": {:.3}}}",
            m.f,
            m.median_s * 1e3,
            m.gbps
        )
        .expect("writing to a String cannot fail");
    }
    let json = format!(
        "{{\n  \"bench\": \"microkernel\",\n  \"seed\": {BENCH_SEED},\n  \
         \"dispatch\": \"{}\",\n  \"gemm\": {{\n    \"m\": {GEMM_DIM}, \"k\": {GEMM_DIM}, \
         \"n\": {GEMM_DIM},\n    \"flops\": {:.0},\n    \"reps\": {REPS},\n    \
         \"threads\": 1,\n    \"kernels\": [{kernels_json}\n    ],\n    \
         \"packed_vs_blocked_speedup\": {speedup:.3}\n  }},\n  \"spmm\": {{\n    \
         \"graph\": \"rmat_{SPMM_SCALE}\", \"vertices\": {}, \"nnz\": {},\n    \
         \"reps\": {REPS},\n    \"traffic_model\": \"nnz*8 + nnz*F*4 + 2*n*F*4 bytes\",\n    \
         \"widths\": [{widths_json}\n    ]\n  }}\n}}\n",
        KernelDispatch::get().backend().name(),
        gemm_flops(GEMM_DIM, GEMM_DIM, GEMM_DIM),
        a.nrows(),
        a.nnz(),
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(format!("{dir}/BENCH_microkernel.json"), &json))
    {
        eprintln!("microkernel: failed to write stats JSON: {e}");
    } else {
        eprintln!("microkernel: wrote {dir}/BENCH_microkernel.json");
    }
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel/gemm");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let a = random_matrix(&mut rng, GEMM_DIM, GEMM_DIM);
    let b = random_matrix(&mut rng, GEMM_DIM, GEMM_DIM);
    group.bench_function("blocked_scalar", |bch| {
        bch.iter(|| matmul_blocked(&a, &b).unwrap())
    });
    let mut out = DenseMatrix::default();
    for kd in backends() {
        let name = kd.backend().name();
        group.bench_with_input(BenchmarkId::new("packed", name), &kd, |bch, &kd| {
            bch.iter(|| matmul_packed_with(kd, &a, &b, 1, &mut out).unwrap())
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel/spmm_axpy");
    group.sample_size(10);
    let graph = Graph::rmat(&RmatConfig::power_law(SPMM_SCALE, SPMM_DEGREE), 3);
    let a = graph.normalized_adjacency().unwrap();
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let mut out = DenseMatrix::default();
    for f in [16usize, 64, 256] {
        let h = random_matrix(&mut rng, a.ncols(), f);
        group.bench_with_input(BenchmarkId::new("sequential", f), &f, |bch, _| {
            bch.iter(|| kernels::spmm::spmm_sequential_into(&a, &h, &mut out).unwrap())
        });
    }
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    let graph = Graph::rmat(&RmatConfig::power_law(SPMM_SCALE, SPMM_DEGREE), 3);
    let a = graph.normalized_adjacency().unwrap();
    write_stats(&a);
    bench_gemm(c);
    bench_spmm(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
