//! Dense micro-kernel engine: packed register-tiled GEMM vs the scalar
//! baselines, and the widened-AXPY SpMM path across feature widths.
//!
//! Two question sets, matching the paper's two pillars of a GCN layer:
//!
//! * **GEMM GFLOPS** at 512x512x512: naive triple loop vs `matmul_blocked`
//!   (now a single-threaded entry into the packed engine — its scalar
//!   cache-blocked loop regressed below naive at this size) vs the packed
//!   register-tiled engine on each available backend (scalar / portable /
//!   AVX2+FMA), single- and multi-threaded. The acceptance bar is the best
//!   packed backend beating naive by >= 2x and no shipped kernel slower
//!   than naive.
//! * **SpMM effective GB/s** at F in {16, 64, 256} on an RMAT graph at
//!   every storage precision (f32 / bf16 / f16 / int8), using the paper's
//!   traffic model (CSR read + one feature-row read per non-zero + output
//!   write) held at **f32-equivalent bytes** — so narrow storage shows up
//!   directly as higher effective GB/s when it converts saved bytes into
//!   saved wall-clock. Feature-width scaling is exactly the lever the
//!   Harvard embedding study identifies; the widened AXPY and narrow
//!   payloads are what move it.
//!
//! Alongside the interactive criterion groups, medians of explicit
//! wall-clock reps are written to `results/BENCH_microkernel.json`.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::rmat::RmatConfig;
use graph::Graph;
use matrix::gemm::{gemm_flops, matmul_blocked, matmul_naive};
use matrix::microkernel::{
    avx2_available, matmul_packed_prec_with, matmul_packed_with, Backend, KernelDispatch,
};
use matrix::{DenseMatrix, Precision, QuantMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::Csr;
use std::fmt::Write as _;
use std::time::Instant;

/// GEMM edge for the measured numbers (the acceptance-criteria shape).
const GEMM_DIM: usize = 512;
/// Executor count for the multi-threaded GEMM rows (the pool clamps to
/// the host's width, so this is an upper bound, not a promise).
const GEMM_THREADS: usize = 4;
/// Wall-clock repetitions per measured kernel (median reported).
const REPS: usize = 5;
/// log2 vertex count of the SpMM fixture graph.
const SPMM_SCALE: u32 = 14;
/// Average degree of the SpMM fixture graph.
const SPMM_DEGREE: usize = 8;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    DenseMatrix::from_vec(rows, cols, data).unwrap()
}

/// Median of `REPS` wall-clock timings of `f` (one warmup call first).
fn median_secs(mut f: impl FnMut()) -> f64 {
    f(); // warmup: touches buffers, grows pool scratch to capacity
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The packed-GEMM backends worth measuring on this machine, most capable
/// last; the final entry equals what `KernelDispatch::get()` resolves to
/// (absent `MICROKERNEL_FORCE`).
fn backends() -> Vec<KernelDispatch> {
    let mut v = vec![
        KernelDispatch::with_backend(Backend::Scalar),
        KernelDispatch::with_backend(Backend::Portable),
    ];
    if avx2_available() {
        v.push(KernelDispatch::with_backend(Backend::Avx2Fma));
    }
    v
}

/// Effective SpMM traffic in bytes under the paper's model: each non-zero
/// reads one `u32` column index + one `f32` value + one `F`-wide feature
/// row, and every output element is written once (read-modify-write
/// counted as one access each way).
fn spmm_traffic_bytes(a: &Csr, f: usize) -> f64 {
    let nnz = a.nnz() as f64;
    let n = a.nrows() as f64;
    nnz * 8.0 + nnz * (f as f64) * 4.0 + 2.0 * n * (f as f64) * 4.0
}

struct GemmMeasurement {
    name: String,
    threads: usize,
    median_s: f64,
    gflops: f64,
}

fn measure_gemm() -> Vec<GemmMeasurement> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let a = random_matrix(&mut rng, GEMM_DIM, GEMM_DIM);
    let b = random_matrix(&mut rng, GEMM_DIM, GEMM_DIM);
    let flops = gemm_flops(GEMM_DIM, GEMM_DIM, GEMM_DIM);
    let mut out = Vec::new();
    let mut push = |name: String, threads: usize, median_s: f64| {
        out.push(GemmMeasurement {
            name,
            threads,
            median_s,
            gflops: flops / median_s / 1e9,
        });
    };
    push(
        "naive".into(),
        1,
        median_secs(|| {
            matmul_naive(&a, &b).unwrap();
        }),
    );
    push(
        "blocked".into(),
        1,
        median_secs(|| {
            matmul_blocked(&a, &b).unwrap();
        }),
    );
    let mut c = DenseMatrix::default();
    for kd in backends() {
        for threads in [1usize, GEMM_THREADS] {
            push(
                format!("packed_{}", kd.backend().name()),
                threads,
                median_secs(|| {
                    matmul_packed_with(kd, &a, &b, threads, &mut c).unwrap();
                }),
            );
        }
    }
    // Narrow storage on the best backend: GEMM is compute-bound at this
    // shape, so these document overhead/parity, not a bandwidth win.
    let kd = *backends().last().expect("at least scalar");
    for precision in [Precision::Bf16, Precision::F16, Precision::Int8] {
        push(
            format!("packed_{}_{}", kd.backend().name(), precision.name()),
            1,
            median_secs(|| {
                matmul_packed_prec_with(kd, precision, &a, &b, 1, &mut c).unwrap();
            }),
        );
    }
    out
}

struct SpmmMeasurement {
    f: usize,
    precision: Precision,
    median_s: f64,
    /// Effective GB/s against the *f32-equivalent* traffic model, so a
    /// narrow precision that halves wall-clock doubles this number.
    gbps: f64,
}

fn measure_spmm(a: &Csr) -> Vec<SpmmMeasurement> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x5A11);
    let mut out = DenseMatrix::default();
    let mut q = QuantMatrix::new();
    let mut measurements = Vec::new();
    for f in [16usize, 64, 256] {
        let h = random_matrix(&mut rng, a.ncols(), f);
        let traffic = spmm_traffic_bytes(a, f);
        for precision in Precision::all() {
            // Quantization is staged once per layer in the fused path, so
            // the encode stays outside the timed region here too.
            let median_s = if precision == Precision::F32 {
                median_secs(|| {
                    kernels::spmm::spmm_sequential_into(a, &h, &mut out).unwrap();
                })
            } else {
                q.encode(&h, precision).unwrap();
                median_secs(|| {
                    kernels::spmm::spmm_sequential_quant_into(a, &q, &mut out).unwrap();
                })
            };
            measurements.push(SpmmMeasurement {
                f,
                precision,
                median_s,
                gbps: traffic / median_s / 1e9,
            });
        }
    }
    measurements
}

fn write_stats(a: &Csr) {
    let gemm = measure_gemm();
    let spmm = measure_spmm(a);
    let naive = gemm
        .iter()
        .find(|m| m.name == "naive")
        .map_or(0.0, |m| m.gflops);
    let packed_best = gemm
        .iter()
        .filter(|m| m.name.starts_with("packed_"))
        .map(|m| m.gflops)
        .fold(0.0, f64::max);
    let speedup = if naive > 0.0 {
        packed_best / naive
    } else {
        0.0
    };
    // Acceptance metric for narrow storage: best effective-GB/s gain over
    // f32 at the widest feature sweep point.
    let f32_gbps_at = |f: usize| {
        spmm.iter()
            .find(|m| m.f == f && m.precision == Precision::F32)
            .map_or(0.0, |m| m.gbps)
    };
    let narrow_speedup_f256 = spmm
        .iter()
        .filter(|m| m.f == 256 && m.precision.is_narrow())
        .map(|m| m.gbps / f32_gbps_at(256).max(1e-12))
        .fold(0.0, f64::max);

    let mut kernels_json = String::new();
    for (i, m) in gemm.iter().enumerate() {
        if i > 0 {
            kernels_json.push(',');
        }
        write!(
            kernels_json,
            "\n      {{\"name\": \"{}\", \"threads\": {}, \"median_ms\": {:.3}, \
             \"gflops\": {:.3}}}",
            m.name,
            m.threads,
            m.median_s * 1e3,
            m.gflops
        )
        .expect("writing to a String cannot fail");
    }
    let mut widths_json = String::new();
    for (wi, f) in [16usize, 64, 256].into_iter().enumerate() {
        if wi > 0 {
            widths_json.push(',');
        }
        let mut prec_json = String::new();
        for (pi, m) in spmm.iter().filter(|m| m.f == f).enumerate() {
            if pi > 0 {
                prec_json.push(',');
            }
            write!(
                prec_json,
                "\n        {{\"precision\": \"{}\", \"median_ms\": {:.3}, \"gbps\": {:.3}, \
                 \"speedup_vs_f32\": {:.3}}}",
                m.precision.name(),
                m.median_s * 1e3,
                m.gbps,
                m.gbps / f32_gbps_at(f).max(1e-12)
            )
            .expect("writing to a String cannot fail");
        }
        write!(
            widths_json,
            "\n      {{\"f\": {f}, \"precisions\": [{prec_json}\n      ]}}"
        )
        .expect("writing to a String cannot fail");
    }
    let json = format!(
        "{{\n  \"bench\": \"microkernel\",\n  \"seed\": {BENCH_SEED},\n  \
         \"dispatch\": \"{}\",\n  \"gemm\": {{\n    \"m\": {GEMM_DIM}, \"k\": {GEMM_DIM}, \
         \"n\": {GEMM_DIM},\n    \"flops\": {:.0},\n    \"reps\": {REPS},\n    \
         \"kernels\": [{kernels_json}\n    ],\n    \
         \"packed_vs_naive_speedup\": {speedup:.3}\n  }},\n  \"spmm\": {{\n    \
         \"graph\": \"rmat_{SPMM_SCALE}\", \"vertices\": {}, \"nnz\": {},\n    \
         \"reps\": {REPS},\n    \
         \"traffic_model\": \"f32-equivalent: nnz*8 + nnz*F*4 + 2*n*F*4 bytes\",\n    \
         \"widths\": [{widths_json}\n    ],\n    \
         \"narrow_speedup_f256\": {narrow_speedup_f256:.3}\n  }}\n}}\n",
        KernelDispatch::get().backend().name(),
        gemm_flops(GEMM_DIM, GEMM_DIM, GEMM_DIM),
        a.nrows(),
        a.nnz(),
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(format!("{dir}/BENCH_microkernel.json"), &json))
    {
        eprintln!("microkernel: failed to write stats JSON: {e}");
    } else {
        eprintln!("microkernel: wrote {dir}/BENCH_microkernel.json");
    }
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel/gemm");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let a = random_matrix(&mut rng, GEMM_DIM, GEMM_DIM);
    let b = random_matrix(&mut rng, GEMM_DIM, GEMM_DIM);
    group.bench_function("blocked_scalar", |bch| {
        bch.iter(|| matmul_blocked(&a, &b).unwrap())
    });
    let mut out = DenseMatrix::default();
    for kd in backends() {
        let name = kd.backend().name();
        group.bench_with_input(BenchmarkId::new("packed", name), &kd, |bch, &kd| {
            bch.iter(|| matmul_packed_with(kd, &a, &b, 1, &mut out).unwrap())
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel/spmm_axpy");
    group.sample_size(10);
    let graph = Graph::rmat(&RmatConfig::power_law(SPMM_SCALE, SPMM_DEGREE), 3);
    let a = graph.normalized_adjacency().unwrap();
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let mut out = DenseMatrix::default();
    let mut q = QuantMatrix::new();
    for f in [16usize, 64, 256] {
        let h = random_matrix(&mut rng, a.ncols(), f);
        group.bench_with_input(BenchmarkId::new("sequential", f), &f, |bch, _| {
            bch.iter(|| kernels::spmm::spmm_sequential_into(&a, &h, &mut out).unwrap())
        });
        for precision in [Precision::Bf16, Precision::F16, Precision::Int8] {
            q.encode(&h, precision).unwrap();
            let id = BenchmarkId::new(format!("sequential_{}", precision.name()), f);
            group.bench_with_input(id, &f, |bch, _| {
                bch.iter(|| kernels::spmm::spmm_sequential_quant_into(&a, &q, &mut out).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    let graph = Graph::rmat(&RmatConfig::power_law(SPMM_SCALE, SPMM_DEGREE), 3);
    let a = graph.normalized_adjacency().unwrap();
    write_stats(&a);
    bench_gemm(c);
    bench_spmm(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
