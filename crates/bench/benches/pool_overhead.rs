//! Spawn-per-call vs persistent-pool overhead on a 3-layer GCN.
//!
//! Each iteration runs full 3-layer inference over an RMAT graph
//! (2^16 vertices). The `spawn` rows use the legacy kernels that create and
//! join an OS thread team inside every parallel call
//! (`spmm_vertex_parallel_spawn`, `matmul_parallel_spawn`); the `pooled`
//! rows route through the persistent work-stealing pool plus the
//! zero-allocation `*_into` path. The gap between the two is the per-call
//! thread-management tax the pool eliminates — most visible at small K,
//! where kernel time cannot hide it.

use bench::features;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph::rmat::RmatConfig;
use graph::Graph;
use kernels::spmm::spmm_vertex_parallel_spawn;
use kernels::SpmmStrategy;
use matrix::gemm::matmul_parallel_spawn;
use matrix::{Activation, DenseMatrix, WeightInit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparse::Csr;

struct Layer {
    weight: DenseMatrix,
    bias: Vec<f32>,
}

fn layers(dims: &[usize]) -> Vec<Layer> {
    let mut rng = StdRng::seed_from_u64(5);
    dims.windows(2)
        .map(|w| Layer {
            weight: WeightInit::Glorot.build(w[0], w[1], &mut rng),
            bias: vec![0.01; w[1]],
        })
        .collect()
}

/// Inference with per-call thread spawning: the pre-pool baseline.
fn infer_spawn(a: &Csr, x: &DenseMatrix, layers: &[Layer], threads: usize) -> DenseMatrix {
    let mut h = x.clone();
    for layer in layers {
        let agg = spmm_vertex_parallel_spawn(a, &h, threads).unwrap();
        let mut upd = matmul_parallel_spawn(&agg, &layer.weight, threads).unwrap();
        upd.add_row_bias(&layer.bias).unwrap();
        upd.apply_activation(Activation::Relu);
        h = upd;
    }
    h
}

/// Inference on the persistent pool via the zero-allocation `_into` path.
fn infer_pooled(
    a: &Csr,
    x: &DenseMatrix,
    layers: &[Layer],
    threads: usize,
    mid: &mut DenseMatrix,
    h: &mut DenseMatrix,
    next: &mut DenseMatrix,
) {
    h.copy_from(x);
    let strategy = SpmmStrategy::VertexParallel { threads };
    for layer in layers {
        kernels::fused::gcn_layer_fused_into(
            a,
            h,
            &layer.weight,
            Some(&layer.bias),
            Activation::Relu,
            strategy,
            mid,
            next,
        )
        .unwrap();
        std::mem::swap(h, next);
    }
}

fn bench_pool_overhead(c: &mut Criterion) {
    let graph = Graph::rmat(&RmatConfig::power_law(16, 8), 3);
    let a = graph.normalized_adjacency().unwrap();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("pool_overhead");
    group.sample_size(10);
    for k in [16usize, 256] {
        let x = features(&a, k);
        let net = layers(&[k, k, k, 8]);
        group.bench_with_input(BenchmarkId::new("spawn_per_call", k), &k, |b, _| {
            b.iter(|| infer_spawn(&a, &x, &net, threads))
        });
        let (mut mid, mut h, mut next) = (
            DenseMatrix::default(),
            DenseMatrix::default(),
            DenseMatrix::default(),
        );
        group.bench_with_input(BenchmarkId::new("pooled", k), &k, |b, _| {
            b.iter(|| infer_pooled(&a, &x, &net, threads, &mut mid, &mut h, &mut next))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_overhead);
criterion_main!(benches);
