//! Benchmark target regenerating the Ablation extension experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use report::experiments::{Experiment, Fidelity};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("ablation", |b| {
        b.iter(|| Experiment::Ablation.run(Fidelity::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
