//! Benchmark target regenerating the paper's Fig4 experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use report::experiments::{Experiment, Fidelity};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_gpu_breakdown");
    group.sample_size(10);
    group.bench_function("fig4", |b| b.iter(|| Experiment::Fig4.run(Fidelity::Quick)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
