//! Benchmark target regenerating the paper's Fig6 experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use report::experiments::{Experiment, Fidelity};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_bw_latency");
    group.sample_size(10);
    group.bench_function("fig6", |b| b.iter(|| Experiment::Fig6.run(Fidelity::Quick)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
