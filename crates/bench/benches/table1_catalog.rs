//! Benchmark target regenerating the paper's Table1 experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use report::experiments::{Experiment, Fidelity};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_catalog");
    group.sample_size(10);
    group.bench_function("table1", |b| {
        b.iter(|| Experiment::Table1.run(Fidelity::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
