//! Micro-benchmarks of the dense GEMM kernels (the GCN update phase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrix::gemm::{matmul_blocked, matmul_naive, matmul_parallel};
use matrix::{DenseMatrix, WeightInit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("gemm_kernels");
    group.sample_size(10);
    // Tall-skinny GCN update shapes: |V| x K_in times K_in x K_out.
    for &(m, kin, kout) in &[(4096usize, 64usize, 64usize), (4096, 256, 256)] {
        let a = WeightInit::Glorot.build(m, kin, &mut rng);
        let w = WeightInit::Glorot.build(kin, kout, &mut rng);
        let id = format!("{m}x{kin}x{kout}");
        group.bench_with_input(BenchmarkId::new("naive", &id), &id, |b, _| {
            b.iter(|| matmul_naive(&a, &w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("blocked", &id), &id, |b, _| {
            b.iter(|| matmul_blocked(&a, &w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", &id), &id, |b, _| {
            b.iter(|| matmul_parallel(&a, &w, threads).unwrap())
        });
    }
    let _ = DenseMatrix::zeros(1, 1);
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
