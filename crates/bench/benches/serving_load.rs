//! Open-loop load study of the inference service: Poisson arrivals at a
//! sweep of rates, batched (coalescing window) versus per-request
//! dispatch, on a Products Table-I twin.
//!
//! The generator is **open loop**: arrival times are drawn up front from
//! an exponential inter-arrival distribution (fixed seed) and requests
//! are submitted on that clock whether or not earlier responses have
//! come back — exactly the regime where admission control matters,
//! because a saturated service must shed instead of queueing without
//! bound. Each (mode, rate) cell reports goodput (completed responses
//! per second of wall clock, submission through drain), shed rate by
//! cause, latency quantiles from the service's own histogram, and the
//! batch-size histogram showing how wide the coalescing window actually
//! got.
//!
//! Results go to `results/BENCH_serving.json`; the headline is the
//! batched/per-request goodput ratio at the highest rate — the knee
//! where one gathered SpMM+GEMM call per window beats one plan-build and
//! kernel call per request.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, Criterion};
use gcn::{GcnConfig, GcnModel};
use graph::OgbDataset;
use matrix::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serving::{GcnService, Rejection, ServiceConfig};
use sparse::Csr;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Offered load sweep, requests per second. The top rate sits well past
/// the per-request arm's capacity on any host this runs on.
const RATES: [f64; 4] = [250.0, 1_000.0, 4_000.0, 16_000.0];
/// Requests per (mode, rate) cell.
const REQUESTS: usize = 800;
/// Vertex cap for the Products twin.
const TWIN_CAP: usize = 1 << 12;
/// Model shape: input width, hidden width, layers (= gather hops).
const F_IN: usize = 64;
const F_HID: usize = 64;
const LAYERS: usize = 2;

fn service_config(batched: bool) -> ServiceConfig {
    let cfg = ServiceConfig {
        max_batch: 64,
        max_batch_rows: 4096,
        batch_window: Duration::from_millis(1),
        queue_limit: 256,
        latency_budget: Duration::from_millis(500),
        lanes: 2,
        tenants: vec![serving::TenantSpec::default()],
        ..ServiceConfig::single_tenant()
    };
    if batched {
        cfg
    } else {
        cfg.per_request()
    }
}

/// Sleep until `deadline` with sub-millisecond accuracy: coarse sleep for
/// the bulk, spin for the tail (thread::sleep alone is too coarse for
/// 60 µs inter-arrival gaps at 16k req/s).
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > Duration::from_micros(300) {
            std::thread::sleep(left - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

struct Cell {
    mode: &'static str,
    rate: f64,
    submitted: usize,
    completed: u64,
    shed: u64,
    shed_queue_full: u64,
    shed_deadline: u64,
    shed_rate: f64,
    elapsed_s: f64,
    goodput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    mean_batch: f64,
    batch_hist: Vec<u64>,
}

fn run_cell(
    mode: &'static str,
    batched: bool,
    rate: f64,
    model: &GcnModel,
    a: &Csr,
    x: &DenseMatrix,
    seed: u64,
) -> Cell {
    let svc = GcnService::planned(model.clone(), a.clone(), x.clone(), service_config(batched))
        .expect("service config is valid");
    // Warm the plan caches so the measured window starts hot.
    svc.submit_vertex(0, 0)
        .expect("warmup request admits")
        .wait()
        .expect("warmup request completes");

    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap = 1.0 / rate;
    let n = a.nrows();
    let t0 = Instant::now();
    let mut next = t0;
    let mut handles = Vec::with_capacity(REQUESTS);
    let mut door_sheds = 0u64;
    for _ in 0..REQUESTS {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        next += Duration::from_secs_f64(-mean_gap * u.ln());
        pace_until(next);
        match svc.submit_vertex(0, rng.gen_range(0..n)) {
            Ok(h) => handles.push(h),
            Err(Rejection::QueueFull { .. }) => door_sheds += 1,
            Err(other) => panic!("unexpected admission rejection: {other}"),
        }
    }
    let mut completed = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => completed += 1,
            Err(Rejection::DeadlineExceeded { .. }) => {}
            Err(other) => panic!("unexpected in-flight rejection: {other}"),
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let m = svc.shutdown();
    // Exclude the warmup request from the throughput numbers (its
    // latency sample stays in the histogram; one sample in 800 is noise
    // below the histogram's own resolution).
    let measured = m.completed.saturating_sub(1);
    assert_eq!(measured, completed, "every admitted request resolved");
    eprintln!(
        "serving_load: {mode:>11} @ {rate:>6.0} req/s: goodput {:.0} rps, \
         shed {:.1}% ({} full / {} late), p99 {:?}, mean batch {:.1}",
        completed as f64 / elapsed,
        m.shed_rate * 100.0,
        m.shed_queue_full,
        m.shed_deadline,
        m.p99,
        m.mean_batch_size(),
    );
    assert_eq!(
        door_sheds, m.shed_queue_full,
        "door sheds are all QueueFull"
    );
    Cell {
        mode,
        rate,
        submitted: REQUESTS,
        completed,
        shed: m.shed,
        shed_queue_full: m.shed_queue_full,
        shed_deadline: m.shed_deadline,
        shed_rate: m.shed_rate,
        elapsed_s: elapsed,
        goodput_rps: completed as f64 / elapsed,
        p50_us: m.p50.as_secs_f64() * 1e6,
        p99_us: m.p99.as_secs_f64() * 1e6,
        p999_us: m.p999.as_secs_f64() * 1e6,
        mean_batch: m.mean_batch_size(),
        batch_hist: m.batch_size_hist,
    }
}

fn write_stats(cells: &[Cell]) {
    // Headline: batched vs per-request goodput at the top rate, and the
    // knee — the lowest swept rate where the ratio first exceeds 1.5x.
    let goodput = |mode: &str, rate: f64| {
        cells
            .iter()
            .find(|c| c.mode == mode && (c.rate - rate).abs() < 1e-9)
            .map_or(0.0, |c| c.goodput_rps)
    };
    let top = RATES[RATES.len() - 1];
    let per_request_top = goodput("per_request", top);
    let speedup_top = if per_request_top > 0.0 {
        goodput("batched", top) / per_request_top
    } else {
        0.0
    };
    let knee = RATES
        .iter()
        .find(|&&r| {
            let pr = goodput("per_request", r);
            pr > 0.0 && goodput("batched", r) / pr > 1.5
        })
        .copied()
        .unwrap_or(0.0);

    let mut rows_json = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows_json.push(',');
        }
        let hist: Vec<String> = c.batch_hist.iter().map(u64::to_string).collect();
        write!(
            rows_json,
            "\n    {{\"mode\": \"{}\", \"rate\": {:.0}, \"submitted\": {}, \
             \"completed\": {}, \"shed\": {}, \"shed_queue_full\": {}, \
             \"shed_deadline\": {}, \"shed_rate\": {:.4}, \"elapsed_s\": {:.3}, \
             \"goodput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"p999_us\": {:.1}, \"mean_batch\": {:.2}, \"batch_hist\": [{}]}}",
            c.mode,
            c.rate,
            c.submitted,
            c.completed,
            c.shed,
            c.shed_queue_full,
            c.shed_deadline,
            c.shed_rate,
            c.elapsed_s,
            c.goodput_rps,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.mean_batch,
            hist.join(", "),
        )
        .expect("writing to a String cannot fail");
    }
    let json = format!(
        "{{\n  \"bench\": \"serving_load\",\n  \"seed\": {BENCH_SEED},\n  \
         \"graph\": \"products_twin\", \"vertices\": {TWIN_CAP}, \
         \"model\": [{F_IN}, {F_HID}], \"layers\": {LAYERS},\n  \
         \"requests_per_cell\": {REQUESTS}, \"latency_budget_ms\": 500,\n  \
         \"batched_speedup_at_top_rate\": {speedup_top:.2},\n  \
         \"knee_rate_rps\": {knee:.0},\n  \
         \"rows\": [{rows_json}\n  ]\n}}\n"
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(format!("{dir}/BENCH_serving.json"), &json))
    {
        eprintln!("serving_load: failed to write stats JSON: {e}");
    } else {
        eprintln!(
            "serving_load: wrote {dir}/BENCH_serving.json \
             (batched speedup at {top:.0} req/s: {speedup_top:.2}x)"
        );
    }
}

fn bench_all(c: &mut Criterion) {
    let g = OgbDataset::Products.materialize_scaled(TWIN_CAP, 0xC0FFEE);
    let a = g.normalized_adjacency().unwrap();
    let x = {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x10AD);
        let data = (0..a.nrows() * F_IN)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        DenseMatrix::from_vec(a.nrows(), F_IN, data).unwrap()
    };
    let model = GcnModel::new(&GcnConfig::paper_model(F_IN, F_HID, LAYERS), 3);

    let mut cells = Vec::new();
    for (mode, batched) in [("per_request", false), ("batched", true)] {
        for (i, &rate) in RATES.iter().enumerate() {
            cells.push(run_cell(
                mode,
                batched,
                rate,
                &model,
                &a,
                &x,
                BENCH_SEED ^ ((i as u64) << 8) ^ batched as u64,
            ));
        }
    }
    write_stats(&cells);

    // One interactive criterion datapoint per mode: closed-loop burst of
    // 64 requests (the sweep above is single-shot; open-loop pacing is
    // far too slow for criterion's sampling).
    let mut group = c.benchmark_group("serving_load");
    group.sample_size(10);
    for (mode, batched) in [("per_request", false), ("batched", true)] {
        // Closed-loop arm: no admission pressure wanted here, so relax
        // the latency budget the open-loop sweep deliberately keeps tight.
        let mut cfg = service_config(batched);
        cfg.latency_budget = Duration::from_secs(30);
        let svc = GcnService::planned(model.clone(), a.clone(), x.clone(), cfg)
            .expect("service config is valid");
        group.bench_function(format!("burst64_{mode}"), |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..64)
                    .map(|v| svc.submit_vertex(0, v * 61 % TWIN_CAP).unwrap())
                    .collect();
                for h in handles {
                    h.wait().unwrap();
                }
            })
        });
        svc.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
