//! Benchmark target regenerating the ExtRandomwalk extension experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use report::experiments::{Experiment, Fidelity};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_randomwalk");
    group.sample_size(10);
    group.bench_function("ext_randomwalk", |b| {
        b.iter(|| Experiment::ExtRandomwalk.run(Fidelity::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
