//! Micro-benchmark: feature-tiled SpMM vs the row-parallel kernels — the
//! cache-blocking optimization of Graphite/GE-SpMM, with its K crossover.

use bench::{features, products_twin};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::spmm::spmm_vertex_parallel;
use kernels::tiled::{spmm_feature_parallel, spmm_feature_tiled};

fn bench_tiled(c: &mut Criterion) {
    let a = products_twin();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("tiled_spmm");
    group.sample_size(10);
    for k in [32usize, 256] {
        let h = features(&a, k);
        group.bench_with_input(BenchmarkId::new("vertex_parallel", k), &k, |b, _| {
            b.iter(|| spmm_vertex_parallel(&a, &h, threads).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("feature_tiled_seq", k), &k, |b, _| {
            b.iter(|| spmm_feature_tiled(&a, &h, 64).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("feature_parallel", k), &k, |b, _| {
            b.iter(|| spmm_feature_parallel(&a, &h, threads).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiled);
criterion_main!(benches);
