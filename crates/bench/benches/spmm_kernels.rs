//! Micro-benchmarks of the executable SpMM kernels (Section II-C trade-offs
//! on the host CPU: vertex-parallel vs edge-parallel vs sequential).

use bench::{features, products_twin};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::spmm::{spmm_edge_parallel, spmm_sequential, spmm_vertex_parallel};

fn bench_spmm(c: &mut Criterion) {
    let a = products_twin();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("spmm_kernels");
    group.sample_size(10);
    for k in [8usize, 64] {
        let h = features(&a, k);
        group.bench_with_input(BenchmarkId::new("sequential", k), &k, |b, _| {
            b.iter(|| spmm_sequential(&a, &h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("vertex_parallel", k), &k, |b, _| {
            b.iter(|| spmm_vertex_parallel(&a, &h, threads).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("edge_parallel", k), &k, |b, _| {
            b.iter(|| spmm_edge_parallel(&a, &h, threads).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
