//! Planned + reordered SpMM vs the per-call `Auto` strategy.
//!
//! Three executions of the same aggregation are compared on a skewed RMAT
//! graph (2^16 vertices) and a uniform Erdős–Rényi control:
//!
//! * `auto` — `SpmmStrategy::Auto`, which re-derives degree statistics and
//!   partitions rows by *count* on every call (the PR 1 baseline),
//! * `planned` — a cached [`SpmmPlan`]: NNZ-balanced row partition and
//!   strategy resolution paid once, reused every iteration,
//! * `planned_rcm` — the same plan built on the RCM-reordered graph, so
//!   neighbouring rows read neighbouring feature rows.
//!
//! A second group runs full 3-layer GCN inference through `Auto` vs the
//! workspace-cached plan. Alongside the timing output the bench writes
//! plan statistics (slot NNZ spread, imbalance) and per-ordering bandwidth
//! reductions to `results/BENCH_plan_reorder.json`.

use bench::{features, BENCH_SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcn::{GcnConfig, GcnModel, InferenceWorkspace};
use graph::generators::erdos_renyi;
use graph::reorder::mean_bandwidth;
use graph::rmat::RmatConfig;
use graph::{Graph, ReorderKind, ReorderedGraph};
use kernels::{SpmmPlan, SpmmStrategy};
use matrix::DenseMatrix;
use sparse::Csr;
use std::fmt::Write as _;

/// log2 of the vertex count; matches the paper's smallest RMAT scale.
const SCALE: usize = 16;
/// Average degree of the generated graphs.
const DEGREE: usize = 8;

struct Fixture {
    name: &'static str,
    graph: Graph,
}

fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            name: "rmat_16",
            graph: Graph::rmat(&RmatConfig::power_law(SCALE as u32, DEGREE), 3),
        },
        Fixture {
            name: "er_16",
            graph: erdos_renyi(1 << SCALE, (1 << SCALE) * DEGREE / 2, BENCH_SEED),
        },
    ]
}

fn spmm_auto(a: &Csr, h: &DenseMatrix, out: &mut DenseMatrix) {
    SpmmStrategy::Auto.run_into(a, h, out).unwrap();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_reorder/spmm");
    group.sample_size(10);
    for fx in fixtures() {
        let a = fx.graph.normalized_adjacency().unwrap();
        let reordered = ReorderedGraph::new(&fx.graph, ReorderKind::Rcm);
        let a_rcm = reordered.graph().normalized_adjacency().unwrap();
        for k in [64usize, 256] {
            let h = features(&a, k);
            let h_rcm = reordered.permute_features(&h);
            let plan = SpmmPlan::new(&a, k);
            let plan_rcm = SpmmPlan::new(&a_rcm, k);
            let mut out = DenseMatrix::zeros(a.nrows(), k);
            let id = format!("{}/k{}", fx.name, k);
            group.bench_with_input(BenchmarkId::new("auto", &id), &k, |b, _| {
                b.iter(|| spmm_auto(&a, &h, &mut out))
            });
            group.bench_with_input(BenchmarkId::new("planned", &id), &k, |b, _| {
                b.iter(|| plan.run_into(&a, &h, &mut out).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("planned_rcm", &id), &k, |b, _| {
                b.iter(|| plan_rcm.run_into(&a_rcm, &h_rcm, &mut out).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_gcn(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_reorder/gcn");
    group.sample_size(10);
    let graph = Graph::rmat(&RmatConfig::power_law(SCALE as u32, DEGREE), 3);
    let a_hat = graph.normalized_adjacency().unwrap();
    let k = 64usize;
    let model = GcnModel::new(&GcnConfig::paper_model(k, k, 16), 7);
    let x = graph.random_features(k, 2);
    let mut auto_ws = InferenceWorkspace::new();
    group.bench_with_input(BenchmarkId::new("auto", k), &k, |b, _| {
        b.iter(|| {
            model
                .infer_normalized_with(&a_hat, &x, SpmmStrategy::Auto, &mut auto_ws)
                .unwrap();
        })
    });
    let mut planned_ws = InferenceWorkspace::new();
    group.bench_with_input(BenchmarkId::new("planned", k), &k, |b, _| {
        b.iter(|| {
            model
                .infer_planned_with(&a_hat, &x, &mut planned_ws)
                .unwrap();
        })
    });
    group.finish();
}

/// Hand-rolled JSON (the workspace vendors no serde_json): plan quality and
/// reordering bandwidth numbers for `results/BENCH_plan_reorder.json`.
fn write_stats() {
    let mut graphs = String::new();
    for (i, fx) in fixtures().iter().enumerate() {
        let a = fx.graph.normalized_adjacency().unwrap();
        let plan = SpmmPlan::new(&a, 64);
        let ps = plan.plan_stats();
        let before = mean_bandwidth(fx.graph.adjacency());
        let mut orderings = String::new();
        for (j, kind) in [
            ReorderKind::DegreeDescending,
            ReorderKind::Bfs,
            ReorderKind::Rcm,
        ]
        .into_iter()
        .enumerate()
        {
            let reordered = ReorderedGraph::new(&fx.graph, kind);
            let after = mean_bandwidth(reordered.graph().adjacency());
            if j > 0 {
                orderings.push(',');
            }
            write!(
                orderings,
                "\n        {{\"kind\": \"{kind}\", \"mean_bandwidth\": {after:.2}, \
                 \"reduction\": {:.4}}}",
                reordered.bandwidth_reduction(&fx.graph)
            )
            .expect("writing to a String cannot fail");
        }
        if i > 0 {
            graphs.push(',');
        }
        write!(
            graphs,
            "\n    {{\n      \"name\": \"{}\",\n      \"vertices\": {},\n      \
             \"nnz\": {},\n      \"exec\": \"{}\",\n      \"plan\": {{\"slots\": {}, \
             \"min_slot_nnz\": {}, \"max_slot_nnz\": {}, \"ideal_slot_nnz\": {:.2}, \
             \"imbalance\": {:.4}}},\n      \"mean_bandwidth_native\": {before:.2},\n      \
             \"reorderings\": [{}\n      ]\n    }}",
            fx.name,
            a.nrows(),
            a.nnz(),
            plan.exec(),
            ps.slots,
            ps.min_slot_nnz,
            ps.max_slot_nnz,
            ps.ideal_slot_nnz,
            ps.imbalance,
            orderings
        )
        .expect("writing to a String cannot fail");
    }
    let json = format!(
        "{{\n  \"bench\": \"plan_reorder\",\n  \"seed\": {BENCH_SEED},\n  \
         \"graphs\": [{graphs}\n  ]\n}}\n"
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(format!("{dir}/BENCH_plan_reorder.json"), &json))
    {
        eprintln!("plan_reorder: failed to write stats JSON: {e}");
    } else {
        eprintln!("plan_reorder: wrote {dir}/BENCH_plan_reorder.json");
    }
}

fn bench_all(c: &mut Criterion) {
    write_stats();
    bench_spmm(c);
    bench_gcn(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
