//! Chaos soak study: recovery latency and goodput dips under a seeded
//! kill/heal schedule, on an Arxiv Table-I twin served by the sharded
//! backend.
//!
//! The schedule arms three fault windows in turn — shard-task kills
//! (masked replay recovers them), exchange faults at a rate high enough
//! to trip the circuit breaker into planned failover, and batch-executor
//! panics (typed `Faulted` sheds) — with clean cooldowns between them.
//! For each window the soak harness reports the recovery latency (heal
//! to first post-heal success), the worst goodput dip and its duration,
//! and the post-recovery goodput over the tail of the cooldown.
//!
//! Results go to `results/BENCH_recovery.json`; the headline gate is
//! that post-recovery goodput lands within 10% of the pre-fault steady
//! state for every window, with zero hung handles and zero bitwise
//! mismatches across the whole run.

use bench::BENCH_SEED;
use criterion::{criterion_group, criterion_main, Criterion};
use gcn::{GcnConfig, GcnModel, InferenceWorkspace};
use graph::OgbDataset;
use kernels::SpmmPlan;
use matrix::DenseMatrix;
use resilience::fault::FaultKind;
use serving::soak::{run_soak, SoakConfig};
use serving::{GcnService, PartitionKind, ServiceConfig};
use sparse::Csr;
use std::time::Duration;

/// Vertex cap for the Arxiv twin.
const TWIN_CAP: usize = 1 << 9;
/// Shards behind the service.
const WORKERS: usize = 4;
/// Post-recovery goodput must land within this fraction of steady state.
const GOODPUT_TOLERANCE: f64 = 0.10;

fn setup() -> (GcnModel, Csr, DenseMatrix, DenseMatrix) {
    let a_hat = OgbDataset::Arxiv
        .materialize_scaled(TWIN_CAP, 0xC0FFEE)
        .normalized_adjacency()
        .expect("twin adjacency normalizes");
    let model = GcnModel::new(&GcnConfig::from_dims(vec![16, 32, 8]), 7);
    let n = a_hat.nrows();
    let data: Vec<f32> = (0..n * 16)
        .map(|i| {
            let mut z = 11u64.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
        })
        .collect();
    let x = DenseMatrix::from_vec(n, 16, data).expect("shape matches by construction");
    let mut ws = InferenceWorkspace::new();
    ws.install_plan(SpmmPlan::with_width(&a_hat, 16, 1));
    let want = model
        .infer_planned_with(&a_hat, &x, &mut ws)
        .expect("planned inference succeeds")
        .clone();
    (model, a_hat, x, want)
}

/// The measured schedule: longer phases than the gate test so goodput
/// estimates are stable enough to compare within 10%.
fn schedule(seed: u64) -> SoakConfig {
    let mut cfg = SoakConfig::quick(seed);
    cfg.warmup = Duration::from_millis(800);
    cfg.cooldown = Duration::from_millis(800);
    cfg.window(
        "shard.task",
        FaultKind::Panic,
        0.05,
        Duration::from_millis(400),
    )
    .window(
        "shard.exchange",
        FaultKind::Panic,
        0.30,
        Duration::from_millis(400),
    )
    .window(
        "serving.batch",
        FaultKind::Panic,
        0.05,
        Duration::from_millis(300),
    )
}

fn bench_all(c: &mut Criterion) {
    let _quiet = resilience::retry::quiet_panics();
    let (model, a_hat, x, want) = setup();
    let svc = GcnService::sharded(
        model,
        a_hat,
        x,
        WORKERS,
        PartitionKind::Rows1D,
        ServiceConfig::single_tenant(),
    )
    .expect("sharded service starts");

    let cfg = schedule(BENCH_SEED);
    let report = run_soak(&svc, &want, &cfg);
    assert!(report.clean(), "soak gate: hung or mismatched handles");
    for w in &report.windows {
        eprintln!(
            "chaos_soak: {:<28} recovery {:>6?}, dip {:.0}% for {:?}, \
             post {:.0}/s vs steady {:.0}/s",
            w.window.label,
            w.recovery_latency.unwrap_or_default(),
            w.dip_depth * 100.0,
            w.dip_duration,
            w.post_goodput,
            report.steady_goodput,
        );
        assert!(
            w.post_goodput >= (1.0 - GOODPUT_TOLERANCE) * report.steady_goodput,
            "{}: post-recovery goodput {:.1}/s fell more than {:.0}% below \
             steady state {:.1}/s",
            w.window.label,
            w.post_goodput,
            GOODPUT_TOLERANCE * 100.0,
            report.steady_goodput,
        );
    }

    let json = report.to_json();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(format!("{dir}/BENCH_recovery.json"), &json))
    {
        eprintln!("chaos_soak: failed to write stats JSON: {e}");
    } else {
        eprintln!(
            "chaos_soak: wrote {dir}/BENCH_recovery.json \
             (steady {:.0}/s, {} windows)",
            report.steady_goodput,
            report.windows.len(),
        );
    }

    // One interactive criterion datapoint: a clean closed-loop burst on
    // the recovered service — post-soak latency has to look like
    // pre-soak latency, and the timing here makes regressions visible.
    let mut group = c.benchmark_group("chaos_soak");
    group.sample_size(10);
    group.bench_function("post_recovery_burst64", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..64)
                .map(|v| svc.submit_vertex(0, v * 61 % TWIN_CAP).unwrap())
                .collect();
            for h in handles {
                h.wait().unwrap();
            }
        })
    });
    group.finish();
    svc.shutdown();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
