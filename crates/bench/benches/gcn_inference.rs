//! End-to-end GCN inference benchmark over the executable kernels.

use bench::products_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcn::{GcnConfig, GcnModel};
use kernels::SpmmStrategy;

fn bench_gcn(c: &mut Criterion) {
    let g = products_graph();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let a_hat = g.normalized_adjacency().unwrap();
    let mut group = c.benchmark_group("gcn_inference");
    group.sample_size(10);
    for k in [16usize, 64] {
        let config = GcnConfig::paper_model(100, k, 47);
        let model = GcnModel::new(&config, 1);
        let x = g.random_features(100, 2);
        for strategy in [
            SpmmStrategy::VertexParallel { threads },
            SpmmStrategy::EdgeParallel { threads },
        ] {
            group.bench_with_input(BenchmarkId::new(strategy.to_string(), k), &k, |b, _| {
                b.iter(|| model.infer_normalized(&a_hat, &x, strategy).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gcn);
criterion_main!(benches);
