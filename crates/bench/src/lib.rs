//! Shared fixtures for the benchmark harness.
//!
//! Each Criterion bench target regenerates one paper table/figure (through
//! [`report::experiments`]) or measures the executable kernels directly.
//! Fixtures live here so every bench sees identical inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use graph::{Graph, OgbDataset};
use matrix::DenseMatrix;
use sparse::Csr;

/// Vertex cap of the benchmark twin graphs (2^12 keeps every bench in the
/// seconds range; raise for smoother curves).
pub const BENCH_MAX_VERTICES: usize = 1 << 12;

/// Deterministic seed shared by every bench fixture.
pub const BENCH_SEED: u64 = 0xBE_7C_11;

/// The scaled `products` twin used by kernel and simulator benches.
pub fn products_twin() -> Csr {
    OgbDataset::Products
        .materialize_scaled(BENCH_MAX_VERTICES, BENCH_SEED)
        .into_adjacency()
}

/// The scaled `products` twin as a [`Graph`] (for GCN benches).
pub fn products_graph() -> Graph {
    OgbDataset::Products.materialize_scaled(BENCH_MAX_VERTICES, BENCH_SEED)
}

/// A feature matrix matching `csr`'s column count.
pub fn features(csr: &Csr, k: usize) -> DenseMatrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ k as u64);
    let data = (0..csr.ncols() * k)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    DenseMatrix::from_vec(csr.ncols(), k, data).expect("shape matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(products_twin(), products_twin());
        let a = products_twin();
        assert_eq!(features(&a, 8), features(&a, 8));
    }

    #[test]
    fn twin_respects_cap() {
        assert!(products_twin().nrows() <= BENCH_MAX_VERTICES);
    }
}
