//! Service-level contracts: bitwise coalescing invariance, open-loop
//! admission behaviour, and chaos (fault-injection) containment.
//!
//! Test names are prefixed so CI's serving-load job can filter one
//! concern per step: `bitwise_*` (any interleaving/coalescing of
//! requests returns bit-identical rows to serial per-request planned
//! inference, on every Table-I twin), `smoke_*` (fixed-seed open loop:
//! zero sheds at low rate, measurable batching gain), and `chaos_*`
//! (seeded panics on the `serving.*` fault points surface as typed
//! rejections on the affected requests only — every handle resolves, the
//! service never hangs, and survivors are still bit-correct).

use std::sync::mpsc;
use std::time::{Duration, Instant};

use gcn::{GcnConfig, GcnModel, InferenceWorkspace};
use graph::OgbDataset;
use kernels::SpmmPlan;
use matrix::DenseMatrix;
use proptest::prelude::*;
use resilience::fault::{self, FaultConfig, FaultKind};
use serving::{GcnService, Rejection, Request, ServiceConfig, TenantSpec};
use sparse::Csr;

/// Small twin cap keeps all nine datasets fast while preserving degree
/// profiles (hubs are what make gathered neighbourhoods interesting).
const TWIN_CAP: usize = 1 << 9;

fn twin(d: OgbDataset) -> Csr {
    d.materialize_scaled(TWIN_CAP, 0xC0FFEE)
        .normalized_adjacency()
        .expect("twin adjacency normalizes")
}

/// Deterministic feature matrix (splitmix-style hash): identical bits on
/// every platform, no RNG dependency.
fn features(n: usize, dim: usize, seed: u64) -> DenseMatrix {
    let data: Vec<f32> = (0..n * dim)
        .map(|i| {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
        })
        .collect();
    DenseMatrix::from_vec(n, dim, data).expect("shape matches by construction")
}

/// The serial per-request reference: full-graph planned inference through
/// a pinned width-1 plan (serving a request serially means reading the
/// target rows out of this).
fn reference(model: &GcnModel, a_hat: &Csr, x: &DenseMatrix) -> DenseMatrix {
    let mut ws = InferenceWorkspace::new();
    ws.install_plan(SpmmPlan::with_width(a_hat, x.cols(), 1));
    model
        .infer_planned_with(a_hat, x, &mut ws)
        .expect("planned inference succeeds")
        .clone()
}

fn assert_row_bitwise(name: &str, target: usize, got: &[f32], want: &[f32]) {
    assert_eq!(
        got.len(),
        want.len(),
        "{name}: row width for vertex {target}"
    );
    for (j, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{name}: vertex {target} column {j} diverged: service {g:e} vs serial {w:e}"
        );
    }
}

fn batched_config(max_batch: usize, window_us: u64, lanes: usize) -> ServiceConfig {
    ServiceConfig {
        max_batch,
        max_batch_rows: 4096,
        batch_window: Duration::from_micros(window_us),
        queue_limit: 4096,
        latency_budget: Duration::from_secs(30),
        lanes,
        tenants: vec![TenantSpec::default()],
        breaker: serving::BreakerConfig::default(),
        brownout: serving::BrownoutPolicy::default(),
    }
}

/// Every Table-I twin: a mixed stream of vertex and subgraph requests,
/// coalesced by a held-open batching window across two lanes, must match
/// the serial reference to the bit.
#[test]
fn bitwise_all_table1_twins() {
    let config = GcnConfig::from_dims(vec![16, 32, 8]);
    for d in OgbDataset::TABLE1 {
        let name = d.stats().name;
        let a = twin(d);
        let n = a.nrows();
        let model = GcnModel::new(&config, 7);
        let x = features(n, 16, 11);
        let want = reference(&model, &a, &x);

        let svc = GcnService::planned(model, a, x, batched_config(16, 500, 2))
            .expect("service starts on every twin");
        // A deterministic mix: singles walking the graph, subgraphs with
        // duplicates and hubs, an empty-window straggler pattern.
        let mut expected: Vec<Vec<usize>> = Vec::new();
        let mut handles = Vec::new();
        for i in 0..40 {
            let targets = match i % 4 {
                0 => vec![(i * 13) % n],
                1 => vec![(i * 7) % n, (i * 7) % n, 0],
                2 => vec![n - 1 - (i % n.min(17)), (i * 3) % n],
                _ => vec![(i * 31) % n; 3],
            };
            handles.push(
                svc.submit(Request::subgraph(0, targets.clone()))
                    .expect("request admits under a deep queue"),
            );
            expected.push(targets);
        }
        for (h, targets) in handles.into_iter().zip(expected) {
            let r = h.wait().expect("request completes");
            assert_eq!(r.rows.rows(), targets.len(), "{name}: row count");
            for (i, &t) in targets.iter().enumerate() {
                assert_row_bitwise(name, t, r.rows.row(i), want.row(t));
            }
        }
        let m = svc.shutdown();
        assert_eq!(m.shed, 0, "{name}: nothing shed under a deep queue");
        assert!(
            m.batches < m.completed,
            "{name}: the window actually coalesced ({} batches for {} requests)",
            m.batches,
            m.completed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any partition of any target multiset into requests, under any
    /// batching shape (batch cap, window, lane count), is bitwise
    /// equivalent to serial per-request inference.
    #[test]
    fn bitwise_coalescing_invariant(
        targets in proptest::collection::vec(0usize..TWIN_CAP, 1..48),
        splits in proptest::collection::vec(1usize..6, 1..16),
        max_batch in 1usize..12,
        window_us in 0u64..800,
        lanes in 1usize..4,
    ) {
        let a = twin(OgbDataset::Arxiv);
        let n = a.nrows();
        let model = GcnModel::new(&GcnConfig::from_dims(vec![16, 24]), 7);
        let x = features(n, 16, 11);
        let want = reference(&model, &a, &x);

        let svc = GcnService::planned(model, a, x, batched_config(max_batch, window_us, lanes))
            .expect("service starts");
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        let mut cursor = 0usize;
        for &w in &splits {
            if cursor >= targets.len() {
                break;
            }
            let chunk: Vec<usize> =
                targets[cursor..(cursor + w).min(targets.len())]
                    .iter()
                    .map(|t| t % n)
                    .collect();
            cursor += w;
            handles.push(svc.submit(Request::subgraph(0, chunk.clone())).expect("admits"));
            expected.push(chunk);
        }
        for (h, chunk) in handles.into_iter().zip(expected) {
            let r = h.wait().expect("completes");
            for (i, &t) in chunk.iter().enumerate() {
                assert_row_bitwise("arxiv", t, r.rows.row(i), want.row(t));
            }
        }
        svc.shutdown();
    }
}

/// Fixed-seed open loop at a rate the service trivially sustains: every
/// request completes, nothing is shed, and the window coalesces.
#[test]
fn smoke_low_rate_zero_sheds() {
    let a = twin(OgbDataset::Products);
    let n = a.nrows();
    let model = GcnModel::new(&GcnConfig::from_dims(vec![16, 16]), 7);
    let x = features(n, 16, 5);
    let mut cfg = batched_config(32, 1_000, 2);
    cfg.queue_limit = 256;
    cfg.latency_budget = Duration::from_secs(5);
    let svc = GcnService::planned(model, a, x, cfg).expect("service starts");

    // ~200 req/s for 120 requests; deterministic near-Poisson gaps from
    // the same splitmix hash the feature generator uses.
    let mut handles = Vec::new();
    for i in 0..120u64 {
        let mut z = 0xFEEDu64.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1));
        z ^= z >> 29;
        let gap_us = 2_000 + (z % 6_000); // mean ~5 ms
        std::thread::sleep(Duration::from_micros(gap_us));
        handles.push(
            svc.submit_vertex(0, (i as usize * 37) % n)
                .expect("low-rate submission always admits"),
        );
    }
    for h in handles {
        h.wait().expect("low-rate request completes");
    }
    let m = svc.shutdown();
    assert_eq!(m.completed, 120);
    assert_eq!(m.shed, 0, "zero sheds at low rate");
    assert_eq!(m.shed_rate, 0.0);
}

/// Closed-loop burst: coalescing must beat per-request dispatch on wall
/// clock (the batched service runs a handful of gathered calls where the
/// per-request one builds a sub-plan per request).
#[test]
fn smoke_batching_beats_per_request() {
    let a = twin(OgbDataset::Products);
    let n = a.nrows();
    let model = GcnModel::new(&GcnConfig::from_dims(vec![32, 32, 16]), 7);
    let x = features(n, 32, 5);

    let burst = |cfg: ServiceConfig| {
        let svc =
            GcnService::planned(model.clone(), a.clone(), x.clone(), cfg).expect("service starts");
        // Warm plan caches outside the timed region.
        svc.submit_vertex(0, 0)
            .expect("admits")
            .wait()
            .expect("completes");
        let t0 = Instant::now();
        for _round in 0..3 {
            let handles: Vec<_> = (0..64)
                .map(|i| svc.submit_vertex(0, (i * 61) % n).expect("admits"))
                .collect();
            for h in handles {
                h.wait().expect("completes");
            }
        }
        let elapsed = t0.elapsed();
        let m = svc.shutdown();
        (elapsed, m)
    };

    let (serial, sm) = burst(batched_config(1, 0, 1));
    let (batched, bm) = burst(batched_config(64, 2_000, 1));
    assert_eq!(sm.completed, 193);
    assert_eq!(bm.completed, 193);
    assert!(
        bm.mean_batch_size() > 2.0,
        "burst must actually coalesce (mean batch {})",
        bm.mean_batch_size()
    );
    assert!(
        batched < serial,
        "batched burst ({batched:?}) must beat per-request dispatch ({serial:?})"
    );
}

/// Seeded panics on every `serving.*` fault point: all handles resolve
/// (no hangs — enforced with a hard timeout), failures are typed, the
/// service keeps serving after each contained fault, and every response
/// that does come back is still bit-correct.
#[test]
fn chaos_faults_surface_as_typed_rejections() {
    let seed = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let a = twin(OgbDataset::Arxiv);
    let n = a.nrows();
    let model = GcnModel::new(&GcnConfig::from_dims(vec![16, 16]), 7);
    let x = features(n, 16, 11);
    let want = reference(&model, &a, &x);

    let _armed = fault::arm(
        FaultConfig::new(seed)
            .point("serving.queue", FaultKind::Panic, 0.05)
            .point("serving.batch", FaultKind::Panic, 0.10),
    );
    let svc = GcnService::planned(model, a, x, batched_config(8, 200, 2)).expect("service starts");

    let (tx, rx) = mpsc::channel();
    let mut submitted = 0usize;
    let mut door_faults = 0usize;
    for i in 0..300usize {
        match svc.submit_vertex(0, (i * 13) % n) {
            Ok(h) => {
                submitted += 1;
                let tx = tx.clone();
                let target = (i * 13) % n;
                std::thread::spawn(move || {
                    let _ = tx.send((target, h.wait()));
                });
            }
            Err(Rejection::Faulted { site, shard }) => {
                assert_eq!(site, "serving.queue");
                assert_eq!(shard, None);
                door_faults += 1;
            }
            Err(other) => panic!("unexpected admission rejection: {other}"),
        }
    }
    let mut completed = 0usize;
    let mut faulted = 0usize;
    for _ in 0..submitted {
        // The no-hang assertion: every outstanding handle must resolve
        // well inside the timeout even while panics land mid-batch.
        let (target, outcome) = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("every handle resolves: the service must not hang under faults");
        match outcome {
            Ok(r) => {
                completed += 1;
                assert_row_bitwise("arxiv", target, r.rows.row(0), want.row(target));
            }
            Err(Rejection::Faulted { site, .. }) => {
                assert_eq!(site, "serving.batch");
                faulted += 1;
            }
            Err(Rejection::Shutdown | Rejection::Stopped(_)) => {}
            Err(other) => panic!("unexpected in-flight rejection: {other}"),
        }
    }
    let m = svc.shutdown();
    assert_eq!(m.completed as usize, completed);
    assert!(
        completed > 0,
        "the service must keep serving between contained faults"
    );
    assert_eq!(
        m.shed_faulted as usize,
        faulted + door_faults,
        "every fault is accounted as a typed shed"
    );
}

/// Killing the service mid-flight (queue loaded, lanes busy) resolves
/// every handle with a typed rejection or a completed response — no
/// hangs, no lost requests.
#[test]
fn chaos_kill_mid_flight_rejects_typed() {
    let a = twin(OgbDataset::Products);
    let n = a.nrows();
    let model = GcnModel::new(&GcnConfig::from_dims(vec![16, 16]), 7);
    let x = features(n, 16, 5);
    let mut cfg = batched_config(4, 5_000, 1);
    cfg.queue_limit = 1024;
    let svc = GcnService::planned(model, a, x, cfg).expect("service starts");

    let handles: Vec<_> = (0..200)
        .map(|i| svc.submit_vertex(0, (i * 7) % n).expect("admits"))
        .collect();
    let (tx, rx) = mpsc::channel();
    for h in handles {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let _ = tx.send(h.wait());
        });
    }
    svc.kill();
    let mut served = 0;
    let mut rejected = 0;
    for _ in 0..200 {
        match rx
            .recv_timeout(Duration::from_secs(60))
            .expect("every handle resolves after kill — no hangs")
        {
            Ok(_) => served += 1,
            Err(Rejection::Shutdown | Rejection::Stopped(_)) => rejected += 1,
            Err(other) => panic!("unexpected rejection after kill: {other}"),
        }
    }
    assert_eq!(served + rejected, 200);
    assert!(rejected > 0, "killing mid-flight drops queued work");
}
