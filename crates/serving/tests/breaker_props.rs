//! Property checks on the circuit-breaker state machine, driven with a
//! virtual clock (the breaker's transitions all take `now: Instant`
//! explicitly, so no real time passes here).
//!
//! The two liveness invariants the failover path leans on:
//!
//! * **never stuck open** — from any reachable state, once `cooldown`
//!   has elapsed since the last trip, the next `try_admit` admits;
//! * **bounded probes** — half-open admits exactly `probe_quota`
//!   requests before any outcome is reported, and refuses every request
//!   past the quota until outcomes arrive.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use serving::{BreakerConfig, BreakerState, CircuitBreaker};

/// One scripted action against the breaker.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Try to admit at `now + advance_ms`; report success if admitted.
    AdmitThenSucceed(u64),
    /// Try to admit at `now + advance_ms`; report failure if admitted.
    AdmitThenFail(u64),
    /// Report a success that was never admitted (stale straggler).
    StraySuccess,
}

fn op_strategy(max_advance_ms: u64) -> impl Strategy<Value = Op> {
    (0u64..3, 0u64..max_advance_ms + 1).prop_map(|(k, ms)| match k {
        0 => Op::AdmitThenSucceed(ms),
        1 => Op::AdmitThenFail(ms),
        _ => Op::StraySuccess,
    })
}

fn cfg(threshold: u32, cooldown_ms: u64, quota: u32) -> BreakerConfig {
    BreakerConfig {
        failure_threshold: threshold,
        cooldown: Duration::from_millis(cooldown_ms),
        probe_quota: quota,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Never stuck open: whatever op sequence ran before, advancing the
    /// clock a full cooldown past the last observed trip always re-admits.
    #[test]
    fn never_stuck_open(
        threshold in 1u32..5,
        cooldown_ms in 1u64..200,
        quota in 1u32..4,
        ops in proptest::collection::vec(op_strategy(50), 1..40),
    ) {
        let t0 = Instant::now();
        let mut clock = t0;
        let mut b = CircuitBreaker::new(cfg(threshold, cooldown_ms, quota));
        for op in ops {
            match op {
                Op::AdmitThenSucceed(ms) => {
                    clock += Duration::from_millis(ms);
                    if b.try_admit(clock) {
                        b.on_success();
                    }
                }
                Op::AdmitThenFail(ms) => {
                    clock += Duration::from_millis(ms);
                    if b.try_admit(clock) {
                        b.on_failure(clock);
                    }
                }
                Op::StraySuccess => b.on_success(),
            }
        }
        // However the run left the machine, a full cooldown later the
        // breaker must admit again.
        let later = clock + Duration::from_millis(cooldown_ms);
        prop_assert!(
            b.try_admit(later),
            "stuck {:?} after a full cooldown (opens={})",
            b.state(),
            b.opens()
        );
        prop_assert_ne!(b.state(), BreakerState::Open);
    }

    /// Half-open admits exactly the probe quota: after tripping and
    /// cooling down, precisely `quota` admissions pass before any
    /// outcome is reported, then everything is refused; reporting all
    /// quota successes closes the breaker, any failure re-opens it.
    #[test]
    fn half_open_admits_exactly_the_probe_quota(
        threshold in 1u32..5,
        cooldown_ms in 1u64..200,
        quota in 1u32..6,
        probes_succeed in (0u32..2).prop_map(|b| b == 1),
        extra_tries in 1usize..8,
    ) {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg(threshold, cooldown_ms, quota));
        for _ in 0..threshold {
            prop_assert!(b.try_admit(t0));
            b.on_failure(t0);
        }
        prop_assert_eq!(b.state(), BreakerState::Open);
        let probe_time = t0 + Duration::from_millis(cooldown_ms);
        let mut admitted = 0u32;
        for _ in 0..(quota as usize + extra_tries) {
            if b.try_admit(probe_time) {
                admitted += 1;
            }
        }
        prop_assert_eq!(admitted, quota);
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        if probes_succeed {
            for i in 0..quota {
                // Still refusing while probe outcomes trickle in.
                if i < quota - 1 {
                    prop_assert!(!b.try_admit(probe_time));
                }
                b.on_success();
            }
            prop_assert_eq!(b.state(), BreakerState::Closed);
            prop_assert!(b.try_admit(probe_time), "closed admits immediately");
        } else {
            b.on_failure(probe_time);
            prop_assert_eq!(b.state(), BreakerState::Open);
            prop_assert!(
                !b.try_admit(probe_time),
                "re-opened breaker refuses inside the fresh cooldown"
            );
            prop_assert!(
                b.try_admit(probe_time + Duration::from_millis(cooldown_ms)),
                "and probes again after it"
            );
        }
    }
}
