//! The inference service: lanes, backends, lifecycle.
//!
//! [`GcnService`] owns the admission queue plus a small set of **lane
//! threads** (the bounded in-flight executor: at most `queue_limit`
//! requests queued and `lanes x max_batch` requests executing, in the
//! spirit of the organizer engine's `CONCURRENT_OPERATIONS` cap). Each
//! lane blocks on the queue, lets the batching window coalesce arrivals,
//! then runs the whole batch as **one** backend call:
//!
//! * **planned** — [`GcnModel::infer_rows_planned_into`] gathers the
//!   batch's k-hop neighbourhood once and runs the cached width-1
//!   [`kernels::SpmmPlan`] over the induced sub-problem;
//! * **sharded** — one [`ShardedGcn::infer`] pass serves every request in
//!   the batch, and each target row is attributed to its owning shard via
//!   [`shard::ShardPlan::owner_of_row`] for routing statistics.
//!
//! Both backends sit on the same bitwise contract (width-1 plans,
//! row-partition-invariant GEMM), so coalescing requests into batches —
//! in any interleaving — never changes a single bit of any response.
//!
//! Every batch executes under a [`RunGuard`] **child** of the lane guard
//! carrying the batch's tightest request deadline, so a nested budget can
//! only shrink the remaining time (the PR-9 guard semantics fix), and a
//! `kill()` cancels all lanes through the shared token. Panics — real or
//! injected through the `serving.queue` / `serving.batch` fault points —
//! are contained per lane iteration and turn into typed
//! [`Rejection::Faulted`] deliveries, never hangs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use gcn::rows::RowsWorkspace;
use gcn::{GcnError, GcnModel};
use matrix::{DenseMatrix, Precision};
use resilience::audit;
use resilience::guard::{CancelToken, RunGuard};
use shard::{PartitionKind, ShardError, ShardedGcn};
use sparse::Csr;

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::queue::{AdmissionQueue, Pending, TenantLane};
use crate::request::{
    Brownout, BrownoutCause, Rejection, Request, Response, ResponseHandle, ServedBy, TenantId,
};
use crate::tenant::{FixedQuota, Resources, TenantSpec};

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Most requests coalesced into one batch.
    pub max_batch: usize,
    /// Most output rows per batch (caps gathered-neighbourhood work when
    /// subgraph requests are large).
    pub max_batch_rows: usize,
    /// How long a lane holds a batch open for late arrivals once the
    /// first request is in hand. Zero disables coalescing (per-request
    /// dispatch — the baseline the load generator compares against).
    pub batch_window: Duration,
    /// Most requests queued; admission sheds `QueueFull` above this.
    pub queue_limit: usize,
    /// Per-request latency budget: requests still queued past it are
    /// shed `DeadlineExceeded`, never served arbitrarily late.
    pub latency_budget: Duration,
    /// Lane (executor) threads.
    pub lanes: usize,
    /// Per-tenant scheduling weight and row quota; tenant `i` is
    /// `tenants[i]`.
    pub tenants: Vec<TenantSpec>,
    /// Circuit-breaker tunables for the sharded backend (ignored by
    /// planned-only services).
    pub breaker: BreakerConfig,
    /// When and how to degrade precision before shedding.
    pub brownout: BrownoutPolicy,
}

/// Brownout policy: degrade precision (through the existing narrow
/// storage chain) before shedding, and surface the degradation as a typed
/// annotation on every affected response.
#[derive(Debug, Clone)]
pub struct BrownoutPolicy {
    /// Queue depth at or above which planned batches run at the brownout
    /// precision (`usize::MAX` disables overload brownout).
    pub queue_high_water: usize,
    /// Run breaker-triggered failover batches at the brownout precision
    /// (absorbing the failed-over load more cheaply).
    pub on_open_breaker: bool,
    /// The degraded storage precision.
    pub precision: Precision,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            queue_high_water: usize::MAX,
            on_open_breaker: true,
            precision: Precision::Bf16,
        }
    }
}

impl ServiceConfig {
    /// A single unlimited tenant with batching on — the quickstart shape.
    pub fn single_tenant() -> Self {
        ServiceConfig {
            max_batch: 64,
            max_batch_rows: 4096,
            batch_window: Duration::from_millis(1),
            queue_limit: 1024,
            latency_budget: Duration::from_secs(1),
            lanes: 2,
            tenants: vec![TenantSpec::default()],
            breaker: BreakerConfig::default(),
            brownout: BrownoutPolicy::default(),
        }
    }

    /// This config with per-request dispatch (no coalescing): batch size
    /// 1, zero window. The load generator's baseline arm.
    pub fn per_request(mut self) -> Self {
        self.max_batch = 1;
        self.batch_window = Duration::ZERO;
        self
    }
}

/// Why a service could not be constructed (requests are rejected with
/// [`Rejection`] instead once the service is running).
#[derive(Debug)]
pub enum ServingError {
    /// The configuration is unusable (no tenants, no lanes, …).
    Config(String),
    /// The model/graph/features triple is inconsistent.
    Model(GcnError),
    /// Building the sharded backend failed.
    Shard(ShardError),
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::Config(m) => write!(f, "invalid service config: {m}"),
            ServingError::Model(e) => write!(f, "model/graph mismatch: {e}"),
            ServingError::Shard(e) => write!(f, "sharded backend: {e}"),
        }
    }
}

impl std::error::Error for ServingError {}

impl From<ShardError> for ServingError {
    fn from(e: ShardError) -> Self {
        ServingError::Shard(e)
    }
}

/// The immutable inference state every lane shares.
struct Engine {
    model: GcnModel,
    a_hat: Csr,
    features: DenseMatrix,
    /// `Some` = sharded backend (the runner needs `&mut`, so lanes take
    /// turns); `None` = planned gathered-rows backend (per-lane
    /// workspaces, fully concurrent).
    sharded: Option<Mutex<ShardedGcn>>,
    /// Per-shard request-row attribution (empty for the planned backend).
    routes: Mutex<Vec<u64>>,
    /// Sharded-backend circuit breaker (idle for planned-only services).
    /// Never locked while `sharded` or `routes` is held — the lock graph
    /// stays edge-free.
    breaker: Mutex<CircuitBreaker>,
    /// Precision-degradation policy.
    brownout: BrownoutPolicy,
}

struct Inner {
    queue: AdmissionQueue,
    metrics: Arc<ServiceMetrics>,
    engine: Engine,
    token: CancelToken,
}

/// Per-lane reusable buffers.
struct LaneCtx {
    ws: RowsWorkspace,
    out: DenseMatrix,
    batch: Vec<Pending>,
    shed: Vec<Pending>,
    targets: Vec<usize>,
}

/// An async GCN inference service over one graph (see module docs).
///
/// ```no_run
/// use serving::{GcnService, Request, ServiceConfig};
/// # fn demo(model: gcn::GcnModel, a_hat: sparse::Csr, x: matrix::DenseMatrix) {
/// let svc = GcnService::planned(model, a_hat, x, ServiceConfig::single_tenant()).unwrap();
/// let handle = svc.submit(Request::vertex(0, 42)).unwrap();
/// let response = handle.wait().unwrap();
/// assert_eq!(response.rows.rows(), 1);
/// svc.shutdown();
/// # }
/// ```
pub struct GcnService {
    inner: Arc<Inner>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for GcnService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcnService")
            .field("lanes", &self.threads.len())
            .field("queue_depth", &self.inner.queue.depth())
            .finish()
    }
}

impl GcnService {
    /// A service over the planned single-node backend: batches gather
    /// their joint k-hop neighbourhood and run the cached plan.
    pub fn planned(
        model: GcnModel,
        a_hat: Csr,
        features: DenseMatrix,
        cfg: ServiceConfig,
    ) -> Result<GcnService, ServingError> {
        Self::start(model, a_hat, features, None, cfg)
    }

    /// A service over the sharded backend: each batch runs one
    /// [`ShardedGcn::infer`] pass across `workers` shards, and requests
    /// are attributed to owning shards for routing statistics.
    pub fn sharded(
        model: GcnModel,
        a_hat: Csr,
        features: DenseMatrix,
        workers: usize,
        kind: PartitionKind,
        cfg: ServiceConfig,
    ) -> Result<GcnService, ServingError> {
        let runner = ShardedGcn::new(&a_hat, workers, kind)?;
        Self::start(model, a_hat, features, Some(runner), cfg)
    }

    fn start(
        model: GcnModel,
        a_hat: Csr,
        features: DenseMatrix,
        sharded: Option<ShardedGcn>,
        cfg: ServiceConfig,
    ) -> Result<GcnService, ServingError> {
        if cfg.tenants.is_empty() {
            return Err(ServingError::Config("at least one tenant".into()));
        }
        if cfg.lanes == 0 {
            return Err(ServingError::Config("at least one lane".into()));
        }
        if features.cols() != model.input_dim() {
            return Err(ServingError::Model(GcnError::FeatureDimMismatch {
                expected: model.input_dim(),
                actual: features.cols(),
            }));
        }
        if features.rows() != a_hat.nrows() {
            return Err(ServingError::Model(GcnError::VertexCountMismatch {
                graph: a_hat.nrows(),
                features: features.rows(),
            }));
        }
        let metrics = Arc::new(ServiceMetrics::default());
        let lanes: Vec<TenantLane> = cfg
            .tenants
            .iter()
            .map(|t| TenantLane::new(t.weight))
            .collect();
        let resources: Box<dyn Resources> = Box::new(FixedQuota::per_tenant(
            cfg.tenants.iter().map(|t| t.quota_rows).collect(),
        ));
        let workers = sharded.as_ref().map_or(0, |s| s.plan().workers());
        let inner = Arc::new(Inner {
            queue: AdmissionQueue::new(
                lanes,
                resources,
                cfg.queue_limit,
                cfg.latency_budget,
                cfg.max_batch,
                cfg.max_batch_rows,
                cfg.batch_window,
                metrics.clone(),
            ),
            metrics,
            engine: Engine {
                model,
                a_hat,
                features,
                sharded: sharded.map(Mutex::new),
                routes: Mutex::new(vec![0; workers]),
                breaker: Mutex::new(CircuitBreaker::new(cfg.breaker.clone())),
                brownout: cfg.brownout.clone(),
            },
            token: CancelToken::new(),
        });
        let mut threads = Vec::with_capacity(cfg.lanes);
        for i in 0..cfg.lanes {
            let inner = inner.clone();
            let t = thread::Builder::new()
                .name(format!("serving-lane-{i}"))
                .spawn(move || lane_main(&inner))
                .map_err(|e| ServingError::Config(format!("spawning lane {i}: {e}")))?;
            threads.push(t);
        }
        Ok(GcnService { inner, threads })
    }

    /// Submit a request. `Ok` hands back the response handle; `Err` is a
    /// typed admission rejection (including `Faulted` if a chaos fault
    /// fires inside admission — submission never panics the caller).
    pub fn submit(&self, req: Request) -> Result<ResponseHandle, Rejection> {
        match catch_unwind(AssertUnwindSafe(|| self.inner.queue.submit(req))) {
            Ok(r) => r,
            Err(_) => {
                let r = Rejection::Faulted {
                    site: "serving.queue".into(),
                    shard: None,
                };
                self.inner.metrics.on_rejected(&r);
                Err(r)
            }
        }
    }

    /// Submit a single-vertex request.
    pub fn submit_vertex(&self, tenant: TenantId, v: usize) -> Result<ResponseHandle, Rejection> {
        self.submit(Request::vertex(tenant, v))
    }

    /// Submit a subgraph request (one output row per target).
    pub fn submit_subgraph(
        &self,
        tenant: TenantId,
        targets: Vec<usize>,
    ) -> Result<ResponseHandle, Rejection> {
        self.submit(Request::subgraph(tenant, targets))
    }

    /// Point-in-time counters: throughput, sheds by cause, batch-size
    /// histogram, latency quantiles.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Current circuit-breaker state for the sharded backend (always
    /// `Closed` for planned-only services, which never trip it).
    pub fn breaker_state(&self) -> BreakerState {
        audit::recover("serving.breaker", &self.inner.engine.breaker).state()
    }

    /// Per-shard target-row attribution (`routes()[w]` = output rows the
    /// sharded backend computed on worker `w`). Empty for the planned
    /// backend.
    pub fn shard_routes(&self) -> Vec<u64> {
        audit::recover("serving.routes", &self.inner.engine.routes).clone()
    }

    /// Graceful shutdown: intake closes (new submissions shed
    /// `Shutdown`), queued work drains through the lanes, then the lanes
    /// exit. Returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        let mut drained = Vec::new();
        self.inner.queue.close(false, &mut drained);
        self.join();
        self.inner.metrics.snapshot()
    }

    /// Kill the service mid-flight: cancel every lane's guard, drop all
    /// queued requests with typed `Shutdown` rejections, and join the
    /// lanes. Queued work is *not* served. Returns the final metrics.
    pub fn kill(mut self) -> MetricsSnapshot {
        self.inner.token.cancel();
        let mut drained = Vec::new();
        self.inner.queue.close(true, &mut drained);
        for p in drained {
            self.inner.metrics.on_rejected(&Rejection::Shutdown);
            p.slot.fulfill(Err(Rejection::Shutdown));
        }
        self.join();
        self.inner.metrics.snapshot()
    }

    fn join(&mut self) {
        for t in self.threads.drain(..) {
            // A lane that panicked outside its catch_unwind containment
            // has already abandoned its work; joining it is best-effort.
            let _ = t.join();
        }
    }
}

impl Drop for GcnService {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.inner.token.cancel();
        let mut drained = Vec::new();
        self.inner.queue.close(true, &mut drained);
        for p in drained {
            p.slot.fulfill(Err(Rejection::Shutdown));
        }
        self.join();
    }
}

/// One lane: loop { pop → shed → execute → deliver }, with per-iteration
/// panic containment (fault injection lands here as typed rejections).
fn lane_main(inner: &Inner) {
    let guard = RunGuard::with_token(inner.token.clone());
    let mut ctx = LaneCtx {
        ws: RowsWorkspace::new(),
        out: DenseMatrix::default(),
        batch: Vec::new(),
        shed: Vec::new(),
        targets: Vec::new(),
    };
    loop {
        match catch_unwind(AssertUnwindSafe(|| serve_once(inner, &guard, &mut ctx))) {
            Ok(true) => {}
            Ok(false) => break,
            Err(_) => abandon(inner, &mut ctx),
        }
    }
}

/// Deliver `Faulted` to everything the lane was holding when a panic
/// (injected or real) interrupted it, releasing the tenants' charges.
fn abandon(inner: &Inner, ctx: &mut LaneCtx) {
    let r = Rejection::Faulted {
        site: "serving.batch".into(),
        shard: None,
    };
    for p in ctx.batch.drain(..) {
        inner.queue.release(p.tenant, p.rows);
        inner.metrics.on_rejected(&r);
        p.slot.fulfill(Err(r.clone()));
    }
    // Shed entries had their charges released at pop time.
    for p in ctx.shed.drain(..) {
        inner.metrics.on_rejected(&r);
        p.slot.fulfill(Err(r.clone()));
    }
}

/// One pop-execute-deliver cycle. Returns `false` when the queue closed
/// and drained — the lane exits.
fn serve_once(inner: &Inner, guard: &RunGuard, ctx: &mut LaneCtx) -> bool {
    ctx.batch.clear();
    ctx.shed.clear();
    let alive = inner.queue.pop_batch(&mut ctx.batch, &mut ctx.shed);
    let budget = inner.queue.budget();
    for p in ctx.shed.drain(..) {
        let r = Rejection::DeadlineExceeded { budget };
        inner.metrics.on_rejected(&r);
        p.slot.fulfill(Err(r));
    }
    if ctx.batch.is_empty() {
        return alive;
    }
    let popped = Instant::now();
    // The batch runs under a child of the lane guard carrying the
    // tightest request deadline: the nested budget can only shrink the
    // outer one (RunGuard::and_budget clamps), and a service kill()
    // cancels it through the shared token.
    let tightest = ctx
        .batch
        .iter()
        .map(|p| p.deadline)
        .min()
        .unwrap_or(popped)
        .saturating_duration_since(popped);
    let batch_guard = guard.child_with_budget(tightest);
    if let Some(reason) = batch_guard.should_stop() {
        let r = Rejection::Stopped(reason);
        for p in ctx.batch.drain(..) {
            inner.queue.release(p.tenant, p.rows);
            inner.metrics.on_rejected(&r);
            p.slot.fulfill(Err(r.clone()));
        }
        return alive;
    }
    ctx.targets.clear();
    for p in &ctx.batch {
        ctx.targets.extend_from_slice(p.kind.targets());
    }
    inner.metrics.on_batch(ctx.batch.len(), ctx.targets.len());
    // The whole coalesced batch becomes ONE backend call.
    resilience::fault_point!("serving.batch");
    match run_backend(inner, &batch_guard, &ctx.targets, &mut ctx.ws, &mut ctx.out) {
        Ok(outcome) => {
            let done = Instant::now();
            let width = ctx.out.cols();
            let batch_size = ctx.batch.len();
            if outcome.degraded.is_some() {
                inner.metrics.on_brownout();
            }
            let mut row0 = 0usize;
            for p in ctx.batch.drain(..) {
                let k = p.kind.rows();
                let mut rows = DenseMatrix::zeros(k, width);
                for i in 0..k {
                    rows.row_mut(i).copy_from_slice(ctx.out.row(row0 + i));
                }
                row0 += k;
                let queued = popped.saturating_duration_since(p.enqueued);
                let total = done.saturating_duration_since(p.enqueued);
                inner.queue.release(p.tenant, p.rows);
                inner.metrics.on_completed(queued, total);
                p.slot.fulfill(Ok(Response {
                    rows,
                    queued,
                    total,
                    batch_size,
                    served_by: outcome.served_by,
                    degraded: outcome.degraded,
                }));
            }
        }
        Err(r) => {
            for p in ctx.batch.drain(..) {
                inner.queue.release(p.tenant, p.rows);
                inner.metrics.on_rejected(&r);
                p.slot.fulfill(Err(r.clone()));
            }
        }
    }
    alive
}

/// How one batch was ultimately served.
struct BatchOutcome {
    served_by: ServedBy,
    degraded: Option<Brownout>,
}

/// Run the planned single-node backend, browned out to `precision` when
/// one is given.
fn run_planned(
    engine: &Engine,
    targets: &[usize],
    precision: Option<Precision>,
    ws: &mut RowsWorkspace,
    out: &mut DenseMatrix,
) -> Result<(), String> {
    match precision {
        None => engine
            .model
            .infer_rows_planned_into(&engine.a_hat, &engine.features, targets, ws, out)
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Some(p) => engine
            .model
            .infer_rows_planned_prec_into(&engine.a_hat, &engine.features, targets, p, ws, out)
            .map(|_| ())
            .map_err(|e| e.to_string()),
    }
}

/// Publish the breaker's current state into the metrics gauge. The
/// breaker lock is taken and released here alone — never while the
/// runner or routes locks are held.
/// Admit one sharded attempt through the breaker. Like every helper
/// below, acquires the breaker lock alone and drops it before returning,
/// so no function ever orders the breaker lock against the runner or
/// routing locks (L011).
fn breaker_try_admit(inner: &Inner, now: Instant) -> bool {
    audit::recover("serving.breaker", &inner.engine.breaker).try_admit(now)
}

/// Report a sharded success to the breaker and refresh the gauge.
fn breaker_on_success(inner: &Inner) {
    audit::recover("serving.breaker", &inner.engine.breaker).on_success();
    breaker_gauge(inner);
}

/// Report a sharded failure to the breaker and refresh the gauge.
fn breaker_on_failure(inner: &Inner, now: Instant) {
    audit::recover("serving.breaker", &inner.engine.breaker).on_failure(now);
    breaker_gauge(inner);
}

/// Is the breaker anywhere but closed right now?
fn breaker_not_closed(inner: &Inner) -> bool {
    audit::recover("serving.breaker", &inner.engine.breaker).state() != BreakerState::Closed
}

fn breaker_gauge(inner: &Inner) {
    let b = audit::recover("serving.breaker", &inner.engine.breaker);
    let state = match b.state() {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    };
    inner.metrics.set_breaker(state, b.opens());
}

/// Run one batch against the engine's backend, leaving one output row
/// per target in `out`.
///
/// Sharded services route through the circuit breaker: a failed sharded
/// pass records the originating fault site from the runner's health
/// registry, trips the breaker toward open, and **fails over** to the
/// planned single-node backend as a hedged re-dispatch under a child of
/// the batch guard (so the retry still honours the batch budget and the
/// service kill token). While the breaker is open, batches skip the
/// sharded backend entirely and — per [`BrownoutPolicy`] — run the
/// failover at degraded precision.
fn run_backend(
    inner: &Inner,
    guard: &RunGuard,
    targets: &[usize],
    ws: &mut RowsWorkspace,
    out: &mut DenseMatrix,
) -> Result<BatchOutcome, Rejection> {
    let engine = &inner.engine;
    for &t in targets {
        if t >= engine.a_hat.nrows() {
            return Err(Rejection::Inference(
                GcnError::VertexOutOfRange {
                    vertex: t,
                    vertices: engine.a_hat.nrows(),
                }
                .to_string(),
            ));
        }
    }
    let overloaded = inner.queue.depth() >= engine.brownout.queue_high_water;
    let m = match &engine.sharded {
        None => {
            // Planned-only service: brownout under queue overload, no
            // breaker in the path.
            let degraded = overloaded.then_some(Brownout {
                precision: engine.brownout.precision,
                cause: BrownoutCause::OverloadedQueue,
            });
            run_planned(
                engine,
                targets,
                degraded.as_ref().map(|b| b.precision),
                ws,
                out,
            )
            .map_err(Rejection::Inference)?;
            return Ok(BatchOutcome {
                served_by: ServedBy::Planned,
                degraded,
            });
        }
        Some(m) => m,
    };
    let now = Instant::now();
    let admitted = breaker_try_admit(inner, now);
    let sharded_error: Option<(String, Option<usize>)> = if admitted {
        let mut runner = audit::recover("serving.sharded", m);
        match runner.infer(&engine.model, &engine.features) {
            Ok(h) => {
                out.resize_for_overwrite(targets.len(), h.cols());
                let mut routes = audit::recover("serving.routes", &engine.routes);
                for (i, &t) in targets.iter().enumerate() {
                    out.row_mut(i).copy_from_slice(h.row(t));
                    if let Some(w) = runner.plan().owner_of_row(t) {
                        if let Some(c) = routes.get_mut(w) {
                            *c += 1;
                        }
                    }
                }
                drop(routes);
                drop(runner);
                breaker_on_success(inner);
                return Ok(BatchOutcome {
                    served_by: ServedBy::Sharded,
                    degraded: None,
                });
            }
            Err(e) => {
                // Attribute the failure before releasing the runner: the
                // health registry's most recent event names the fault
                // site and shard this error escaped from.
                let (site, shard) = match runner.health().last() {
                    Some(ev) => (ev.site.clone(), ev.shard),
                    None => (e.to_string(), None),
                };
                drop(runner);
                breaker_on_failure(inner, now);
                Some((site, shard))
            }
        }
    } else {
        None
    };
    // Failover: hedged re-dispatch on the planned backend under a child
    // guard — still subject to the batch budget and kill token.
    inner.metrics.on_failover();
    let hedge = guard.child();
    if let Some(reason) = hedge.should_stop() {
        return Err(Rejection::Stopped(reason));
    }
    let breaker_open = breaker_not_closed(inner);
    let degraded = if overloaded {
        Some(Brownout {
            precision: engine.brownout.precision,
            cause: BrownoutCause::OverloadedQueue,
        })
    } else if breaker_open && engine.brownout.on_open_breaker {
        Some(Brownout {
            precision: engine.brownout.precision,
            cause: BrownoutCause::OpenBreaker,
        })
    } else {
        None
    };
    match run_planned(
        engine,
        targets,
        degraded.as_ref().map(|b| b.precision),
        ws,
        out,
    ) {
        Ok(()) => Ok(BatchOutcome {
            served_by: ServedBy::PlannedFailover,
            degraded,
        }),
        Err(e2) => match sharded_error {
            Some((site, shard)) => Err(Rejection::Faulted {
                site: format!("{site}; fallback: {e2}"),
                shard,
            }),
            None => Err(Rejection::Inference(e2)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcn::GcnConfig;
    use graph::rmat::RmatConfig;
    use graph::Graph;
    use kernels::SpmmPlan;

    fn setup() -> (GcnModel, Csr, DenseMatrix) {
        let g = Graph::rmat(&RmatConfig::power_law(8, 6), 5);
        let model = GcnModel::new(&GcnConfig::paper_model(8, 16, 4), 2);
        let x = g.random_features(8, 9);
        (model, g.normalized_adjacency().unwrap(), x)
    }

    fn reference(model: &GcnModel, a: &Csr, x: &DenseMatrix) -> DenseMatrix {
        let mut ws = gcn::InferenceWorkspace::new();
        ws.install_plan(SpmmPlan::with_width(a, x.cols(), 1));
        model.infer_planned_with(a, x, &mut ws).unwrap().clone()
    }

    #[test]
    fn planned_service_serves_correct_rows() {
        let (model, a, x) = setup();
        let full = reference(&model, &a, &x);
        let svc = GcnService::planned(model, a, x, ServiceConfig::single_tenant()).unwrap();
        let handles: Vec<_> = (0..20)
            .map(|v| svc.submit_vertex(0, v * 7).unwrap())
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let r = h.wait().unwrap();
            assert_eq!(r.rows.row(0), full.row(i * 7), "vertex {}", i * 7);
        }
        let m = svc.shutdown();
        assert_eq!(m.completed, 20);
        assert_eq!(m.shed, 0);
    }

    #[test]
    fn subgraph_requests_get_one_row_per_target() {
        let (model, a, x) = setup();
        let full = reference(&model, &a, &x);
        let svc = GcnService::planned(model, a, x, ServiceConfig::single_tenant()).unwrap();
        let h = svc.submit_subgraph(0, vec![3, 1, 3, 99]).unwrap();
        let r = h.wait().unwrap();
        assert_eq!(r.rows.rows(), 4);
        for (i, &t) in [3usize, 1, 3, 99].iter().enumerate() {
            assert_eq!(r.rows.row(i), full.row(t));
        }
        svc.shutdown();
    }

    #[test]
    fn sharded_service_matches_planned_bitwise_and_routes() {
        let (model, a, x) = setup();
        let full = reference(&model, &a, &x);
        let svc = GcnService::sharded(
            model,
            a,
            x,
            4,
            PartitionKind::Rows1D,
            ServiceConfig::single_tenant(),
        )
        .unwrap();
        let handles: Vec<_> = (0..12)
            .map(|v| svc.submit_vertex(0, v * 11).unwrap())
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let r = h.wait().unwrap();
            assert_eq!(r.rows.row(0), full.row(i * 11), "vertex {}", i * 11);
        }
        assert_eq!(svc.shard_routes().iter().sum::<u64>(), 12);
        svc.shutdown();
    }

    #[test]
    fn out_of_range_vertex_is_a_typed_inference_rejection() {
        let (model, a, x) = setup();
        let n = a.nrows();
        let svc = GcnService::planned(model, a, x, ServiceConfig::single_tenant()).unwrap();
        let h = svc.submit_vertex(0, n + 5).unwrap();
        assert!(matches!(h.wait(), Err(Rejection::Inference(_))));
        svc.shutdown();
    }

    #[test]
    fn kill_rejects_queued_work_with_shutdown() {
        let (model, a, x) = setup();
        let mut cfg = ServiceConfig::single_tenant();
        cfg.lanes = 1;
        cfg.batch_window = Duration::from_millis(50);
        let svc = GcnService::planned(model, a, x, cfg).unwrap();
        let handles: Vec<_> = (0..50)
            .map(|v| svc.submit_vertex(0, v % 64).unwrap())
            .collect();
        let m = svc.kill();
        let mut served = 0;
        let mut shut = 0;
        for h in handles {
            match h.wait() {
                Ok(_) => served += 1,
                Err(Rejection::Shutdown | Rejection::Stopped(_)) => shut += 1,
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        assert_eq!(served + shut, 50, "every handle resolves — no hangs");
        assert!(shut > 0, "killing mid-flight drops queued work");
        assert_eq!(m.completed, served);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (model, a, x) = setup();
        let mut cfg = ServiceConfig::single_tenant();
        cfg.lanes = 1;
        let svc = GcnService::planned(model, a, x, cfg).unwrap();
        let handles: Vec<_> = (0..30).map(|v| svc.submit_vertex(0, v).unwrap()).collect();
        let m = svc.shutdown();
        for h in handles {
            h.wait().unwrap();
        }
        assert_eq!(m.completed, 30);
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let (model, a, _) = setup();
        let wrong = DenseMatrix::zeros(a.nrows(), 5);
        assert!(matches!(
            GcnService::planned(
                model.clone(),
                a.clone(),
                wrong,
                ServiceConfig::single_tenant()
            ),
            Err(ServingError::Model(GcnError::FeatureDimMismatch { .. }))
        ));
        let mut cfg = ServiceConfig::single_tenant();
        cfg.tenants.clear();
        let x = DenseMatrix::zeros(a.nrows(), 8);
        assert!(matches!(
            GcnService::planned(model, a, x, cfg),
            Err(ServingError::Config(_))
        ));
    }
}
