//! Per-tenant resource accounting and fair-share configuration.
//!
//! The service meters concurrent work per tenant through a [`Resources`]
//! implementation (the dfut-style `can_execute(requirements, available)`
//! pattern reduced to charge/release over one resource axis: in-flight
//! output rows). Admission charges a request's row count against its
//! tenant before queueing it and releases the charge when the response
//! (or rejection) is delivered, so a tenant flooding the queue runs out
//! of quota instead of starving everyone else. Dispatch-side fairness is
//! separate: the queue drains tenants by deficit round-robin weighted by
//! [`TenantSpec::weight`] (see `queue`).
//!
//! NOTE: trait methods are called from the hot admission path (L009
//! closure) — implementations must not allocate or panic in steady state.

use crate::request::TenantId;

/// Accounting policy for concurrent per-tenant work.
///
/// `units` is the request's cost in output rows (a subgraph request
/// costs its target count, a vertex request costs 1), so quotas bound
/// *work*, not request count.
pub trait Resources: Send {
    /// Try to reserve `units` for `tenant`. Returns `false` (and charges
    /// nothing) if the reservation would exceed the tenant's quota.
    fn try_charge(&mut self, tenant: TenantId, units: u64) -> bool;

    /// Return `units` previously charged to `tenant`.
    fn release(&mut self, tenant: TenantId, units: u64);

    /// Units currently charged to `tenant`.
    fn in_flight(&self, tenant: TenantId) -> u64;

    /// The quota `try_charge` enforces for `tenant` (for rejections).
    fn limit(&self, tenant: TenantId) -> u64;
}

/// The default [`Resources`] policy: one fixed in-flight row quota per
/// tenant, tracked in a dense per-tenant table.
#[derive(Debug, Clone)]
pub struct FixedQuota {
    limits: Vec<u64>,
    in_flight: Vec<u64>,
}

impl FixedQuota {
    /// Same quota for every tenant.
    pub fn uniform(tenants: usize, limit: u64) -> Self {
        FixedQuota {
            limits: vec![limit; tenants],
            in_flight: vec![0; tenants],
        }
    }

    /// Per-tenant quotas (tenant `i` gets `limits[i]`).
    pub fn per_tenant(limits: Vec<u64>) -> Self {
        let n = limits.len();
        FixedQuota {
            limits,
            in_flight: vec![0; n],
        }
    }
}

impl Resources for FixedQuota {
    fn try_charge(&mut self, tenant: TenantId, units: u64) -> bool {
        let t = tenant as usize;
        let (Some(used), Some(&limit)) = (self.in_flight.get_mut(t), self.limits.get(t)) else {
            return false;
        };
        if used.saturating_add(units) > limit {
            return false;
        }
        *used += units;
        true
    }

    fn release(&mut self, tenant: TenantId, units: u64) {
        if let Some(used) = self.in_flight.get_mut(tenant as usize) {
            *used = used.saturating_sub(units);
        }
    }

    fn in_flight(&self, tenant: TenantId) -> u64 {
        self.in_flight.get(tenant as usize).copied().unwrap_or(0)
    }

    fn limit(&self, tenant: TenantId) -> u64 {
        self.limits.get(tenant as usize).copied().unwrap_or(0)
    }
}

/// One tenant's scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Deficit round-robin weight: per scheduling pass, a tenant may
    /// dispatch up to `weight` requests before the cursor moves on.
    /// Zero is clamped to 1.
    pub weight: u32,
    /// In-flight output-row quota enforced by the default [`FixedQuota`].
    pub quota_rows: u64,
}

impl TenantSpec {
    /// Equal-weight tenant with the given row quota.
    pub fn with_quota(quota_rows: u64) -> Self {
        TenantSpec {
            weight: 1,
            quota_rows,
        }
    }
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            weight: 1,
            quota_rows: u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_charges_and_releases() {
        let mut q = FixedQuota::uniform(2, 10);
        assert!(q.try_charge(0, 6));
        assert!(q.try_charge(0, 4));
        assert!(!q.try_charge(0, 1), "tenant 0 is at its quota");
        assert!(q.try_charge(1, 10), "tenant 1 is unaffected");
        q.release(0, 4);
        assert_eq!(q.in_flight(0), 6);
        assert!(q.try_charge(0, 4));
    }

    #[test]
    fn unknown_tenants_never_admit() {
        let mut q = FixedQuota::uniform(1, 10);
        assert!(!q.try_charge(7, 1));
        q.release(7, 1); // no-op, must not panic
        assert_eq!(q.in_flight(7), 0);
        assert_eq!(q.limit(7), 0);
    }

    #[test]
    fn release_saturates_at_zero() {
        let mut q = FixedQuota::per_tenant(vec![5]);
        q.release(0, 100);
        assert_eq!(q.in_flight(0), 0);
        assert!(q.try_charge(0, 5));
    }

    #[test]
    fn overflowing_charge_is_rejected_not_wrapped() {
        let mut q = FixedQuota::uniform(1, u64::MAX - 1);
        assert!(q.try_charge(0, u64::MAX - 1));
        assert!(!q.try_charge(0, u64::MAX), "saturating add must not wrap");
    }
}
