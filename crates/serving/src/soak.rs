//! Seeded chaos soak harness: kill/heal schedules over the fault points.
//!
//! A soak run drives a live [`GcnService`] through an alternating
//! schedule of **clean** and **faulted** phases. Each [`FaultWindow`]
//! arms one fault-point prefix (e.g. `shard.task` panics at 5%) for a
//! fixed duration, then heals (disarms) and lets the service recover
//! through a clean cooldown. Throughout, the harness submits a steady
//! paced stream of single-vertex requests and reaps every handle,
//! classifying each outcome:
//!
//! * **ok-bitwise** — a full-precision response whose row equals the
//!   reference output bit for bit (the recovery contract);
//! * **degraded** — a browned-out response (typed
//!   [`crate::request::Brownout`] annotation; not bitwise-comparable);
//! * **mismatched** — a full-precision response that differs from the
//!   reference (a recovery-soundness bug: the soak gate is zero);
//! * **shed** — a typed [`Rejection`], counted by cause;
//! * **hung** — a handle that never resolved within the drain budget
//!   (a liveness bug: the soak gate is zero).
//!
//! The per-window [`WindowReport`] additionally measures **recovery
//! latency** (heal → first ok response submitted after the heal),
//! **goodput dip** depth/duration during the fault, and post-recovery
//! goodput — the numbers `results/BENCH_recovery.json` is built from.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use matrix::DenseMatrix;
use resilience::fault::{self, FaultConfig, FaultKind};

use crate::request::{Rejection, Response, ResponseHandle};
use crate::service::GcnService;

/// One armed fault phase in a soak schedule.
#[derive(Debug, Clone)]
pub struct FaultWindow {
    /// Human label for reports (e.g. `"kill shard.task"`).
    pub label: String,
    /// Fault-point prefix to arm (e.g. `shard.task`, `shard.exchange`,
    /// `serving.batch`).
    pub site: String,
    /// Failure mode injected at matched sites.
    pub kind: FaultKind,
    /// Per-visit firing probability while the window is armed.
    pub rate: f64,
    /// How long the window stays armed before healing.
    pub duration: Duration,
}

impl FaultWindow {
    /// A window of `duration` injecting `kind` at `rate` on sites
    /// prefixed by `site`.
    pub fn new(site: &str, kind: FaultKind, rate: f64, duration: Duration) -> Self {
        FaultWindow {
            label: format!("{kind:?} {site} @{rate}"),
            site: site.to_string(),
            kind,
            rate,
            duration,
        }
    }
}

/// Tunables for one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Seed for the deterministic fault-firing decisions.
    pub seed: u64,
    /// Gap between request submissions (the offered-load pacing).
    pub pacing: Duration,
    /// Clean phase before the first window — establishes the pre-fault
    /// steady-state goodput baseline.
    pub warmup: Duration,
    /// Clean phase after each window — the recovery measurement span.
    pub cooldown: Duration,
    /// The kill/heal schedule, run in order.
    pub windows: Vec<FaultWindow>,
    /// Goodput bucketing interval for dip depth/duration.
    pub bucket: Duration,
    /// How long to wait for outstanding handles after the schedule ends
    /// before declaring them hung.
    pub drain: Duration,
}

impl SoakConfig {
    /// A fast schedule suitable for tests: sub-second phases, 50 ms
    /// goodput buckets, and no windows (add them with
    /// [`SoakConfig::window`]).
    pub fn quick(seed: u64) -> Self {
        SoakConfig {
            seed,
            pacing: Duration::from_micros(300),
            warmup: Duration::from_millis(200),
            cooldown: Duration::from_millis(300),
            windows: Vec::new(),
            bucket: Duration::from_millis(50),
            drain: Duration::from_secs(10),
        }
    }

    /// Append a fault window to the schedule.
    pub fn window(mut self, site: &str, kind: FaultKind, rate: f64, duration: Duration) -> Self {
        self.windows
            .push(FaultWindow::new(site, kind, rate, duration));
        self
    }
}

/// Outcome tallies for one scope (a window, or the whole run).
#[derive(Debug, Clone, Default)]
pub struct Tally {
    /// Requests submitted in the scope.
    pub submitted: u64,
    /// Full-precision responses bitwise-equal to the reference.
    pub ok_bitwise: u64,
    /// Browned-out responses (typed degradation, not compared bitwise).
    pub degraded: u64,
    /// Full-precision responses that differ from the reference.
    pub mismatched: u64,
    /// Handles unresolved at the end of the drain budget.
    pub hung: u64,
    /// Typed rejections by cause name.
    pub shed: BTreeMap<String, u64>,
}

impl Tally {
    fn absorb_ok(&mut self, bitwise: bool, degraded: bool) {
        if degraded {
            self.degraded += 1;
        } else if bitwise {
            self.ok_bitwise += 1;
        } else {
            self.mismatched += 1;
        }
    }

    fn absorb_shed(&mut self, r: &Rejection) {
        *self.shed.entry(shed_cause(r).to_string()).or_insert(0) += 1;
    }

    /// Total typed sheds across causes.
    pub fn shed_total(&self) -> u64 {
        self.shed.values().sum()
    }
}

/// Measurements for one fault window plus its recovery cooldown.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// The window that was armed.
    pub window: FaultWindow,
    /// Outcomes for requests submitted while the window was armed or
    /// recovering (window + its cooldown).
    pub tally: Tally,
    /// Heal → first ok (bitwise or degraded) response that was submitted
    /// after the heal. `None` when no post-heal request succeeded.
    pub recovery_latency: Option<Duration>,
    /// Worst goodput dip during the window relative to the pre-fault
    /// steady state, in `[0, 1]` (0 = no dip, 1 = full outage).
    pub dip_depth: f64,
    /// Total time (in buckets) goodput sat below 90% of steady state
    /// during the window span.
    pub dip_duration: Duration,
    /// Goodput over the second half of the cooldown (responses/s) — the
    /// post-recovery figure gated against the steady state.
    pub post_goodput: f64,
}

/// The full result of [`run_soak`].
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Seed the schedule ran under.
    pub seed: u64,
    /// Pre-fault steady-state goodput (ok responses/s during warmup).
    pub steady_goodput: f64,
    /// Per-window measurements, in schedule order.
    pub windows: Vec<WindowReport>,
    /// Whole-run outcome tallies (warmup included).
    pub totals: Tally,
}

impl SoakReport {
    /// `true` when every handle resolved typed and every full-precision
    /// response was bitwise-correct — the chaos-soak gate.
    pub fn clean(&self) -> bool {
        self.totals.hung == 0 && self.totals.mismatched == 0
    }

    /// Render the report as the `BENCH_recovery.json` document.
    pub fn to_json(&self) -> String {
        let mut windows = String::new();
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                windows.push(',');
            }
            windows.push_str(&format!(
                concat!(
                    "{{\"label\":{label:?},\"site\":{site:?},\"rate\":{rate},",
                    "\"duration_ms\":{dur},{tally},",
                    "\"recovery_latency_ms\":{rec},",
                    "\"dip_depth\":{depth:.4},\"dip_duration_ms\":{dd},",
                    "\"post_goodput\":{post:.2}}}"
                ),
                label = w.window.label,
                site = w.window.site,
                rate = w.window.rate,
                dur = w.window.duration.as_millis(),
                tally = tally_json(&w.tally),
                rec = w
                    .recovery_latency
                    .map_or("null".to_string(), |d| d.as_millis().to_string()),
                depth = w.dip_depth,
                dd = w.dip_duration.as_millis(),
                post = w.post_goodput,
            ));
        }
        format!(
            concat!(
                "{{\"bench\":\"chaos_soak\",\"seed\":{seed},",
                "\"steady_goodput\":{steady:.2},",
                "\"windows\":[{windows}],",
                "\"totals\":{{{totals}}}}}"
            ),
            seed = self.seed,
            steady = self.steady_goodput,
            windows = windows,
            totals = tally_json(&self.totals),
        )
    }
}

fn tally_json(t: &Tally) -> String {
    let mut shed = String::new();
    for (i, (cause, n)) in t.shed.iter().enumerate() {
        if i > 0 {
            shed.push(',');
        }
        shed.push_str(&format!("{cause:?}:{n}"));
    }
    format!(
        concat!(
            "\"submitted\":{sub},\"ok_bitwise\":{ok},\"degraded\":{deg},",
            "\"mismatched\":{mis},\"hung\":{hung},",
            "\"shed\":{{{shed}}},\"shed_total\":{shed_total}"
        ),
        sub = t.submitted,
        ok = t.ok_bitwise,
        deg = t.degraded,
        mis = t.mismatched,
        hung = t.hung,
        shed = shed,
        shed_total = t.shed_total(),
    )
}

/// Short cause name for a typed rejection (the shed-by-cause key).
fn shed_cause(r: &Rejection) -> &'static str {
    match r {
        Rejection::QueueFull { .. } => "queue_full",
        Rejection::DeadlineExceeded { .. } => "deadline",
        Rejection::TenantOverLimit { .. } => "tenant",
        Rejection::UnknownTenant { .. } => "unknown_tenant",
        Rejection::Shutdown => "shutdown",
        Rejection::Stopped(_) => "stopped",
        Rejection::Faulted { .. } => "faulted",
        Rejection::Inference(_) => "inference",
    }
}

/// Which schedule phase a request was submitted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Warmup,
    Window(usize),
    Cooldown(usize),
}

impl Phase {
    fn window_scope(self) -> Option<usize> {
        match self {
            Phase::Warmup => None,
            Phase::Window(i) | Phase::Cooldown(i) => Some(i),
        }
    }
}

struct InFlight {
    handle: ResponseHandle,
    vertex: usize,
    phase: Phase,
    submitted: Duration,
}

struct SoakState<'a> {
    reference: &'a DenseMatrix,
    start: Instant,
    inflight: Vec<InFlight>,
    /// Completion offsets of ok (bitwise or degraded) responses.
    ok_times: Vec<Duration>,
    totals: Tally,
    per_window: Vec<Tally>,
    /// Earliest heal→ok latency observed per window.
    recovery: Vec<Option<Duration>>,
    /// Heal offset per window (set when the window's guard drops).
    heal_at: Vec<Option<Duration>>,
}

impl SoakState<'_> {
    fn scope_tallies(&mut self, phase: Phase) -> &mut Tally {
        match phase.window_scope() {
            // BTreeMap-free shortcut: warmup outcomes only hit totals.
            None => &mut self.totals,
            Some(i) => &mut self.per_window[i],
        }
    }

    fn classify_ok(&mut self, s: &InFlight, resp: &Response, completed: Duration) {
        let degraded = resp.degraded.is_some();
        let bitwise = resp.rows.rows() == 1 && resp.rows.row(0) == self.reference.row(s.vertex);
        self.ok_times.push(completed);
        self.totals.absorb_ok(bitwise, degraded);
        if let Some(i) = s.phase.window_scope() {
            self.per_window[i].absorb_ok(bitwise, degraded);
            if let Some(heal) = self.heal_at[i] {
                if s.submitted >= heal {
                    let lat = completed.saturating_sub(heal);
                    let slot = &mut self.recovery[i];
                    if slot.is_none_or(|prev| lat < prev) {
                        *slot = Some(lat);
                    }
                }
            }
        }
    }

    fn classify_shed(&mut self, phase: Phase, r: &Rejection) {
        self.totals.absorb_shed(r);
        if let Some(i) = phase.window_scope() {
            self.per_window[i].absorb_shed(r);
        }
    }

    /// Take every resolved handle out of the in-flight set and classify.
    fn reap(&mut self) {
        let mut i = 0;
        while i < self.inflight.len() {
            match self.inflight[i].handle.try_take() {
                None => i += 1,
                Some(outcome) => {
                    let s = self.inflight.swap_remove(i);
                    let completed = self.start.elapsed();
                    match outcome {
                        Ok(resp) => self.classify_ok(&s, &resp, completed),
                        Err(r) => self.classify_shed(s.phase, &r),
                    }
                }
            }
        }
    }
}

/// Run the soak schedule against a live service.
///
/// `reference` is the full single-node `infer_planned` output over every
/// graph vertex — row `v` is the expected (bitwise) response for vertex
/// `v`. The harness arms each window's fault config in turn (clean
/// phases arm a zero-rate config so environment fault settings cannot
/// leak in), paces single-vertex submissions round-robin over the
/// graph, and classifies every handle. See the module docs for the
/// outcome taxonomy.
pub fn run_soak(svc: &GcnService, reference: &DenseMatrix, cfg: &SoakConfig) -> SoakReport {
    let n = reference.rows().max(1);
    let start = Instant::now();
    let mut st = SoakState {
        reference,
        start,
        inflight: Vec::new(),
        ok_times: Vec::new(),
        totals: Tally::default(),
        per_window: vec![Tally::default(); cfg.windows.len()],
        recovery: vec![None; cfg.windows.len()],
        heal_at: vec![None; cfg.windows.len()],
    };
    let mut next_vertex = 0usize;
    let mut window_spans: Vec<(Duration, Duration)> = Vec::new();
    let mut cooldown_spans: Vec<(Duration, Duration)> = Vec::new();

    let run_phase = |st: &mut SoakState<'_>,
                     next_vertex: &mut usize,
                     phase: Phase,
                     dur: Duration,
                     armed: FaultConfig| {
        let phase_start = start.elapsed();
        let guard = fault::arm(armed);
        while start.elapsed().saturating_sub(phase_start) < dur {
            let v = *next_vertex % n;
            *next_vertex += 1;
            let submitted = start.elapsed();
            st.scope_tallies(phase).submitted += 1;
            if phase.window_scope().is_some() {
                st.totals.submitted += 1;
            }
            match svc.submit_vertex(0, v) {
                Ok(handle) => st.inflight.push(InFlight {
                    handle,
                    vertex: v,
                    phase,
                    submitted,
                }),
                Err(r) => st.classify_shed(phase, &r),
            }
            st.reap();
            std::thread::sleep(cfg.pacing);
        }
        drop(guard);
        (phase_start, start.elapsed())
    };

    // Warmup: steady-state baseline under a zero-rate armed config.
    let (warm_start, warm_end) = run_phase(
        &mut st,
        &mut next_vertex,
        Phase::Warmup,
        cfg.warmup,
        FaultConfig::new(cfg.seed),
    );

    for (i, w) in cfg.windows.iter().enumerate() {
        let armed = FaultConfig::new(cfg.seed).point(&w.site, w.kind, w.rate);
        let span = run_phase(
            &mut st,
            &mut next_vertex,
            Phase::Window(i),
            w.duration,
            armed,
        );
        window_spans.push(span);
        st.heal_at[i] = Some(span.1);
        let cd = run_phase(
            &mut st,
            &mut next_vertex,
            Phase::Cooldown(i),
            cfg.cooldown,
            FaultConfig::new(cfg.seed),
        );
        cooldown_spans.push(cd);
    }

    // Drain: everything still outstanding must resolve within the
    // budget or it is a hang.
    let drain_deadline = start.elapsed() + cfg.drain;
    while !st.inflight.is_empty() && start.elapsed() < drain_deadline {
        st.reap();
        if !st.inflight.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    st.reap();
    for s in std::mem::take(&mut st.inflight) {
        st.totals.hung += 1;
        if let Some(i) = s.phase.window_scope() {
            st.per_window[i].hung += 1;
        }
    }

    let steady = goodput(&st.ok_times, warm_start, warm_end);
    let windows = cfg
        .windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let (ws, we) = window_spans[i];
            let (cs, ce) = cooldown_spans[i];
            let (dip_depth, dip_duration) = dip(&st.ok_times, ws, we, steady, cfg.bucket);
            // Post-recovery goodput over the second half of the cooldown.
            let mid = cs + ce.saturating_sub(cs) / 2;
            WindowReport {
                window: w.clone(),
                tally: st.per_window[i].clone(),
                recovery_latency: st.recovery[i],
                dip_depth,
                dip_duration,
                post_goodput: goodput(&st.ok_times, mid, ce),
            }
        })
        .collect();

    SoakReport {
        seed: cfg.seed,
        steady_goodput: steady,
        windows,
        totals: st.totals,
    }
}

/// Ok responses per second completing inside `[from, to)`.
fn goodput(ok_times: &[Duration], from: Duration, to: Duration) -> f64 {
    let span = to.saturating_sub(from).as_secs_f64();
    if span <= 0.0 {
        return 0.0;
    }
    let n = ok_times.iter().filter(|&&t| t >= from && t < to).count();
    n as f64 / span
}

/// Bucketed goodput dip over `[from, to)` relative to `steady`:
/// (worst-bucket depth in `[0, 1]`, total time below 90% of steady).
fn dip(
    ok_times: &[Duration],
    from: Duration,
    to: Duration,
    steady: f64,
    bucket: Duration,
) -> (f64, Duration) {
    if steady <= 0.0 || bucket.is_zero() || to <= from {
        return (0.0, Duration::ZERO);
    }
    let mut worst = 0.0f64;
    let mut below = Duration::ZERO;
    let mut b0 = from;
    while b0 < to {
        let b1 = (b0 + bucket).min(to);
        let rate = goodput(ok_times, b0, b1);
        let depth = (1.0 - rate / steady).clamp(0.0, 1.0);
        if depth > worst {
            worst = depth;
        }
        if rate < 0.9 * steady {
            below += b1.saturating_sub(b0);
        }
        b0 = b1;
    }
    (worst, below)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_classification_and_json_render() {
        let mut t = Tally::default();
        t.submitted = 5;
        t.absorb_ok(true, false);
        t.absorb_ok(true, true);
        t.absorb_ok(false, false);
        t.absorb_shed(&Rejection::Shutdown);
        t.absorb_shed(&Rejection::Faulted {
            site: "shard.task".into(),
            shard: Some(1),
        });
        assert_eq!(t.ok_bitwise, 1);
        assert_eq!(t.degraded, 1);
        assert_eq!(t.mismatched, 1);
        assert_eq!(t.shed_total(), 2);
        let report = SoakReport {
            seed: 42,
            steady_goodput: 100.0,
            windows: vec![WindowReport {
                window: FaultWindow::new(
                    "shard.task",
                    FaultKind::Panic,
                    0.05,
                    Duration::from_millis(100),
                ),
                tally: t.clone(),
                recovery_latency: Some(Duration::from_millis(7)),
                dip_depth: 0.25,
                dip_duration: Duration::from_millis(50),
                post_goodput: 95.0,
            }],
            totals: t,
        };
        assert!(!report.clean(), "a mismatch fails the gate");
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"chaos_soak\""));
        assert!(json.contains("\"recovery_latency_ms\":7"));
        assert!(json.contains("\"faulted\":1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn goodput_and_dip_math() {
        let ms = Duration::from_millis;
        // 10 completions evenly over [0, 100ms), then silence.
        let ok: Vec<Duration> = (0..10).map(|i| ms(i * 10)).collect();
        let steady = goodput(&ok, ms(0), ms(100));
        assert!((steady - 100.0).abs() < 1e-9);
        let (depth, below) = dip(&ok, ms(100), ms(200), steady, ms(50));
        assert!((depth - 1.0).abs() < 1e-9, "full outage after 100ms");
        assert_eq!(below, ms(100));
        let (depth, below) = dip(&ok, ms(0), ms(100), steady, ms(50));
        assert!(depth.abs() < 1e-9, "no dip during the steady span");
        assert_eq!(below, Duration::ZERO);
    }
}
