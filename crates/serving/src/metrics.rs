//! Service observability: latency histograms and shed/throughput counters.
//!
//! All record paths are lock-free single atomic adds — they are called
//! from the admission/dispatch hot path (L009 closure) and must not
//! allocate or panic. Aggregation (quantiles, snapshots) walks the
//! buckets with plain loads and is only called from control-plane code.
//!
//! The histogram is log-linear (HDR-style): 8 linear sub-buckets per
//! power-of-two octave of nanoseconds, giving ≤ 12.5% relative error per
//! reported quantile across the full `Duration` range — enough to tell a
//! 2 ms p99 from a 10 ms one without per-sample storage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::request::Rejection;

/// Sub-bucket resolution: 2^3 = 8 linear buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Enough groups for every nanosecond magnitude a `u64` can hold.
const BUCKETS: usize = SUB * 62;

/// Lock-free log-linear latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index for a nanosecond value.
fn index_of(nanos: u64) -> usize {
    if nanos < SUB as u64 {
        return nanos as usize;
    }
    let top = 63 - nanos.leading_zeros();
    let sub = ((nanos >> (top - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    let grp = (top - SUB_BITS + 1) as usize;
    (grp * SUB + sub).min(BUCKETS - 1)
}

/// Lower-bound nanosecond value of a bucket (inverse of [`index_of`]).
fn value_of(idx: usize) -> u64 {
    let grp = idx / SUB;
    let sub = (idx % SUB) as u64;
    if grp == 0 {
        sub
    } else {
        (SUB as u64 + sub) << (grp - 1)
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, sample: Duration) {
        let nanos = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        if let Some(b) = self.buckets.get(index_of(nanos)) {
            // lint:allow(L006): monotone event counter; quantile readers
            // tolerate eventually-consistent totals.
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            // lint:allow(L006): see record(); snapshot reads are advisory.
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// The non-empty buckets as `(lower_bound_ns, count)` pairs, ascending
    /// — the JSON-exportable form of the histogram.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                // lint:allow(L006): see record(); snapshot reads are
                // advisory.
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (value_of(i), n))
            })
            .collect()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of recorded samples, as the
    /// lower bound of the bucket containing it. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            // lint:allow(L006): see record().
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_nanos(value_of(i));
            }
        }
        Duration::from_nanos(value_of(BUCKETS - 1))
    }
}

/// Batch-size histogram buckets: batch request count `n` lands in bucket
/// `floor(log2(n))`, so bucket `i` covers `[2^i, 2^(i+1))` requests.
pub const BATCH_SIZE_BUCKETS: usize = 16;

/// Counters and histograms for one service instance.
///
/// Sheds are split by cause so the load generator (and CI) can assert
/// *which* admission-control rule fired, not just that something was
/// dropped.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    shed_tenant: AtomicU64,
    shed_shutdown: AtomicU64,
    shed_faulted: AtomicU64,
    shed_inference: AtomicU64,
    batches: AtomicU64,
    batched_rows: AtomicU64,
    failovers: AtomicU64,
    brownout_batches: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_state: AtomicU64,
    batch_sizes: [AtomicU64; BATCH_SIZE_BUCKETS],
    queue_wait: LatencyHistogram,
    latency: LatencyHistogram,
}

impl ServiceMetrics {
    /// Count one submission attempt (admitted or not).
    pub fn on_submitted(&self) {
        // lint:allow(L006): monotone event counter, no data published.
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one admitted (queued) request.
    pub fn on_admitted(&self) {
        // lint:allow(L006): monotone event counter, no data published.
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one rejection, by cause.
    pub fn on_rejected(&self, why: &Rejection) {
        let counter = match why {
            Rejection::QueueFull { .. } => &self.shed_queue_full,
            Rejection::DeadlineExceeded { .. } | Rejection::Stopped(_) => &self.shed_deadline,
            Rejection::TenantOverLimit { .. } | Rejection::UnknownTenant { .. } => {
                &self.shed_tenant
            }
            Rejection::Shutdown => &self.shed_shutdown,
            Rejection::Faulted { .. } => &self.shed_faulted,
            Rejection::Inference(_) => &self.shed_inference,
        };
        // lint:allow(L006): monotone event counter, no data published.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one executed batch of `requests` requests / `rows` output
    /// rows.
    pub fn on_batch(&self, requests: usize, rows: usize) {
        // lint:allow(L006): monotone event counters, no data published.
        self.batches.fetch_add(1, Ordering::Relaxed);
        // lint:allow(L006): see above.
        self.batched_rows.fetch_add(rows as u64, Ordering::Relaxed);
        let idx = (usize::BITS - 1 - requests.max(1).leading_zeros()) as usize;
        if let Some(b) = self.batch_sizes.get(idx.min(BATCH_SIZE_BUCKETS - 1)) {
            // lint:allow(L006): see above.
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one completed request with its queue wait and total latency.
    pub fn on_completed(&self, queued: Duration, total: Duration) {
        // lint:allow(L006): monotone event counter, no data published.
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.queue_wait.record(queued);
        self.latency.record(total);
    }

    /// Count one batch failed over from the sharded backend to the
    /// planned single-node fallback.
    pub fn on_failover(&self) {
        // lint:allow(L006): monotone event counter, no data published.
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one batch served at degraded (brownout) precision.
    pub fn on_brownout(&self) {
        // lint:allow(L006): monotone event counter, no data published.
        self.brownout_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the sharded backend's breaker state (0 = closed, 1 = open,
    /// 2 = half-open) and its cumulative open count.
    pub fn set_breaker(&self, state: u8, opens: u64) {
        let state = u64::from(state);
        // lint:allow(L006): last-writer-wins advisory gauge; readers need
        // no ordering with the transition that produced it.
        self.breaker_state.store(state, Ordering::Relaxed);
        // lint:allow(L006): see above.
        self.breaker_opens.store(opens, Ordering::Relaxed);
    }

    /// Aggregate the counters into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // lint:allow(L006): snapshot reads of monotone counters; the
        // numbers are advisory and need no ordering with anything.
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let shed_queue_full = load(&self.shed_queue_full);
        let shed_deadline = load(&self.shed_deadline);
        let shed_tenant = load(&self.shed_tenant);
        let shed_shutdown = load(&self.shed_shutdown);
        let shed_faulted = load(&self.shed_faulted);
        let shed_inference = load(&self.shed_inference);
        let submitted = load(&self.submitted);
        let shed = shed_queue_full
            + shed_deadline
            + shed_tenant
            + shed_shutdown
            + shed_faulted
            + shed_inference;
        MetricsSnapshot {
            submitted,
            admitted: load(&self.admitted),
            completed: load(&self.completed),
            shed_queue_full,
            shed_deadline,
            shed_tenant,
            shed_shutdown,
            shed_faulted,
            shed_inference,
            shed,
            shed_rate: if submitted == 0 {
                0.0
            } else {
                shed as f64 / submitted as f64
            },
            batches: load(&self.batches),
            batched_rows: load(&self.batched_rows),
            failovers: load(&self.failovers),
            brownout_batches: load(&self.brownout_batches),
            breaker_opens: load(&self.breaker_opens),
            breaker_state: breaker_state_name(load(&self.breaker_state)),
            batch_size_hist: self.batch_sizes.iter().map(load).collect(),
            queue_p50: self.queue_wait.quantile(0.50),
            queue_p99: self.queue_wait.quantile(0.99),
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
            p999: self.latency.quantile(0.999),
        }
    }

    /// Render the current counters, quantiles, breaker state, and both
    /// latency histograms (non-empty buckets, `[lower_bound_ns, count]`
    /// pairs) as a JSON object — the form the chaos soak harness embeds
    /// in `results/BENCH_recovery.json`.
    pub fn snapshot_json(&self) -> String {
        let s = self.snapshot();
        let hist = |pairs: Vec<(u64, u64)>| {
            let items: Vec<String> = pairs.iter().map(|(lo, n)| format!("[{lo},{n}]")).collect();
            format!("[{}]", items.join(","))
        };
        format!(
            concat!(
                "{{\"submitted\":{},\"admitted\":{},\"completed\":{},",
                "\"shed\":{{\"queue_full\":{},\"deadline\":{},\"tenant\":{},",
                "\"shutdown\":{},\"faulted\":{},\"inference\":{},\"total\":{}}},",
                "\"failovers\":{},\"brownout_batches\":{},",
                "\"breaker\":{{\"state\":\"{}\",\"opens\":{}}},",
                "\"batches\":{},\"batched_rows\":{},",
                "\"latency_ns\":{{\"queue_p50\":{},\"queue_p99\":{},",
                "\"p50\":{},\"p99\":{},\"p999\":{}}},",
                "\"queue_wait_hist\":{},\"latency_hist\":{}}}"
            ),
            s.submitted,
            s.admitted,
            s.completed,
            s.shed_queue_full,
            s.shed_deadline,
            s.shed_tenant,
            s.shed_shutdown,
            s.shed_faulted,
            s.shed_inference,
            s.shed,
            s.failovers,
            s.brownout_batches,
            s.breaker_state,
            s.breaker_opens,
            s.batches,
            s.batched_rows,
            s.queue_p50.as_nanos(),
            s.queue_p99.as_nanos(),
            s.p50.as_nanos(),
            s.p99.as_nanos(),
            s.p999.as_nanos(),
            hist(self.queue_wait.nonzero_buckets()),
            hist(self.latency.nonzero_buckets()),
        )
    }
}

/// Human-readable name for the breaker-state gauge value.
fn breaker_state_name(v: u64) -> &'static str {
    match v {
        1 => "open",
        2 => "half-open",
        _ => "closed",
    }
}

/// Owned, point-in-time view of a service's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Submission attempts (admitted + rejected at the door).
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests completed with a response.
    pub completed: u64,
    /// Sheds: queue at depth limit.
    pub shed_queue_full: u64,
    /// Sheds: latency budget expired before dispatch (or batch stopped).
    pub shed_deadline: u64,
    /// Sheds: tenant over quota or unknown.
    pub shed_tenant: u64,
    /// Sheds: service shut down with the request pending.
    pub shed_shutdown: u64,
    /// Sheds: fault (injected or real panic) hit the request's batch.
    pub shed_faulted: u64,
    /// Sheds: backend error (dimension mismatch, bad vertex, kernel).
    pub shed_inference: u64,
    /// All sheds combined.
    pub shed: u64,
    /// `shed / submitted` (0 when nothing was submitted).
    pub shed_rate: f64,
    /// Executed batches.
    pub batches: u64,
    /// Output rows across all executed batches.
    pub batched_rows: u64,
    /// Batches failed over from the sharded backend to the planned
    /// single-node fallback.
    pub failovers: u64,
    /// Batches served at degraded (brownout) precision.
    pub brownout_batches: u64,
    /// Times the sharded backend's circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Breaker state at snapshot time (`closed` / `open` / `half-open`;
    /// `closed` for services with no sharded backend).
    pub breaker_state: &'static str,
    /// Batch-size histogram: bucket `i` counts batches of
    /// `[2^i, 2^(i+1))` requests.
    pub batch_size_hist: Vec<u64>,
    /// Median queue wait.
    pub queue_p50: Duration,
    /// 99th-percentile queue wait.
    pub queue_p99: Duration,
    /// Median submission-to-completion latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// 99.9th-percentile latency.
    pub p999: Duration,
}

impl MetricsSnapshot {
    /// Mean requests per executed batch (0 when no batches ran).
    pub fn mean_batch_size(&self) -> f64 {
        let total: u64 = self
            .batch_size_hist
            .iter()
            .enumerate()
            .map(|(i, &n)| n * (1u64 << i))
            .sum();
        if self.batches == 0 {
            0.0
        } else {
            // Bucket lower bounds underestimate; good enough for the
            // "did batching happen at all" assertions CI makes.
            total as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_roundtrip_with_bounded_error() {
        for v in [0u64, 1, 7, 8, 15, 16, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = index_of(v);
            let lo = value_of(idx);
            assert!(lo <= v, "lower bound {lo} above sample {v}");
            // Log-linear with 8 sub-buckets: ≤ 12.5% relative error.
            assert!(
                (v - lo) as f64 <= v as f64 / 8.0 + 1.0,
                "bucket error too large for {v}: lower bound {lo}"
            );
        }
    }

    #[test]
    fn quantiles_order_and_saturate() {
        let h = LatencyHistogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!(p50 >= Duration::from_millis(40) && p50 <= Duration::from_millis(56));
        assert!(p99 >= Duration::from_millis(87));
        assert!(p99 <= Duration::from_millis(101));
        assert!(p50 <= p99);
        assert_eq!(LatencyHistogram::default().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_aggregates_sheds_by_cause() {
        let m = ServiceMetrics::default();
        m.on_submitted();
        m.on_submitted();
        m.on_admitted();
        m.on_rejected(&Rejection::QueueFull { depth: 1, limit: 1 });
        m.on_batch(4, 9);
        m.on_completed(Duration::from_micros(5), Duration::from_micros(50));
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.shed_queue_full, 1);
        assert_eq!(s.shed, 1);
        assert!((s.shed_rate - 0.5).abs() < 1e-9);
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_rows, 9);
        assert_eq!(s.batch_size_hist[2], 1, "4 requests land in bucket 2");
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn snapshot_json_exports_counters_and_histograms() {
        let m = ServiceMetrics::default();
        m.on_submitted();
        m.on_admitted();
        m.on_batch(2, 2);
        m.on_completed(Duration::from_micros(3), Duration::from_micros(30));
        m.on_failover();
        m.on_brownout();
        m.set_breaker(1, 2);
        let j = m.snapshot_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"completed\":1"));
        assert!(j.contains("\"failovers\":1"));
        assert!(j.contains("\"brownout_batches\":1"));
        assert!(j.contains("\"state\":\"open\""));
        assert!(j.contains("\"opens\":2"));
        assert!(j.contains("\"latency_hist\":[["));
        let s = m.snapshot();
        assert_eq!(s.breaker_state, "open");
        assert_eq!(s.breaker_opens, 2);
    }

    #[test]
    fn mean_batch_size_reflects_buckets() {
        let m = ServiceMetrics::default();
        m.on_batch(1, 1);
        m.on_batch(8, 8);
        let s = m.snapshot();
        assert!((s.mean_batch_size() - 4.5).abs() < 1e-9);
    }
}
