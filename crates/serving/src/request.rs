//! Request, response, and typed-rejection types for the inference service.
//!
//! A [`Request`] names a tenant and a set of target vertices (one vertex
//! or a subgraph's worth). Submission returns a [`ResponseHandle`] — a
//! one-shot future the caller can either `.await` or block on with
//! [`ResponseHandle::wait`]. Every admission failure is a typed
//! [`Rejection`] carrying enough state to act on (shed, retry elsewhere,
//! back off); nothing queues forever and nothing is reported as a bare
//! string where a caller could branch on structure instead.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use matrix::DenseMatrix;
use resilience::audit;
use resilience::guard::StopReason;

/// Tenant identifier: an index into the service's configured tenant
/// table (weights and quotas are per-tenant, see `ServiceConfig`).
pub type TenantId = u32;

/// What a request asks the model to score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// One vertex: the response carries a single output row.
    Vertex(usize),
    /// A subgraph query: one output row per listed target vertex, in the
    /// given order (duplicates allowed).
    Subgraph(Vec<usize>),
}

impl RequestKind {
    /// Target vertices of this request, in response-row order.
    pub fn targets(&self) -> &[usize] {
        match self {
            RequestKind::Vertex(v) => std::slice::from_ref(v),
            RequestKind::Subgraph(t) => t,
        }
    }

    /// Number of output rows this request produces (its accounting cost).
    pub fn rows(&self) -> usize {
        self.targets().len()
    }
}

/// One inference request: which tenant is asking, and for what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The submitting tenant (admission is metered per tenant).
    pub tenant: TenantId,
    /// The requested computation.
    pub kind: RequestKind,
}

impl Request {
    /// A single-vertex request.
    pub fn vertex(tenant: TenantId, v: usize) -> Self {
        Request {
            tenant,
            kind: RequestKind::Vertex(v),
        }
    }

    /// A subgraph request over `targets` (one output row each).
    pub fn subgraph(tenant: TenantId, targets: Vec<usize>) -> Self {
        Request {
            tenant,
            kind: RequestKind::Subgraph(targets),
        }
    }
}

/// Why the service refused (or abandoned) a request. Every variant is a
/// deliberate, bounded outcome — the service sheds rather than queueing
/// without limit.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// The global queue is at its depth limit; the request was never
    /// admitted.
    QueueFull {
        /// Requests queued at the time of rejection.
        depth: usize,
        /// The configured depth limit.
        limit: usize,
    },
    /// The request's latency budget expired before a lane could run it
    /// (shed at dispatch rather than served late).
    DeadlineExceeded {
        /// The per-request budget that was exceeded.
        budget: Duration,
    },
    /// The tenant is at its in-flight row quota; admitting more would let
    /// one tenant starve the rest.
    TenantOverLimit {
        /// The tenant that hit its quota.
        tenant: TenantId,
        /// Rows the tenant currently has in flight.
        in_flight: u64,
        /// The tenant's configured quota.
        limit: u64,
    },
    /// The tenant id is not in the service's configured tenant table.
    UnknownTenant {
        /// The offending tenant id.
        tenant: TenantId,
        /// Number of configured tenants.
        tenants: usize,
    },
    /// The service is shutting down (or was killed); the request will
    /// never run.
    Shutdown,
    /// The run guard stopped the batch this request rode in (cancellation
    /// or budget, see [`StopReason`]).
    Stopped(StopReason),
    /// A fault (injected or real panic) hit the named site while this
    /// request was queued or executing; the request was abandoned, not
    /// retried.
    Faulted {
        /// The originating fault-site string, e.g. `serving.batch`, or
        /// the rendered panic payload when the fault escaped a backend.
        site: String,
        /// The shard the fault is attributed to, when the sharded
        /// backend's health registry could name one.
        shard: Option<usize>,
    },
    /// The backend rejected the batch (dimension mismatch, out-of-range
    /// vertex, kernel error), rendered from the backend's own error type.
    Inference(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { depth, limit } => {
                write!(f, "queue full ({depth} of {limit} requests queued)")
            }
            Rejection::DeadlineExceeded { budget } => {
                write!(f, "latency budget {budget:?} exceeded before dispatch")
            }
            Rejection::TenantOverLimit {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant {tenant} over quota ({in_flight} of {limit} rows in flight)"
            ),
            Rejection::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (service has {tenants} tenants)")
            }
            Rejection::Shutdown => write!(f, "service is shut down"),
            Rejection::Stopped(r) => write!(f, "batch stopped: {r}"),
            Rejection::Faulted { site, shard } => match shard {
                Some(s) => write!(f, "fault at {site} (shard {s})"),
                None => write!(f, "fault at {site}"),
            },
            Rejection::Inference(e) => write!(f, "inference failed: {e}"),
        }
    }
}

impl std::error::Error for Rejection {}

/// Which backend actually computed a response — the failover chain is
/// sharded → planned single-node, and callers comparing outputs bitwise
/// need to know when a response took the fallback path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServedBy {
    /// The sharded multi-node backend.
    Sharded,
    /// The planned single-node backend (the service was configured with
    /// it directly).
    #[default]
    Planned,
    /// The planned single-node backend, reached by failing over from a
    /// faulted or breaker-opened sharded backend.
    PlannedFailover,
}

impl std::fmt::Display for ServedBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServedBy::Sharded => write!(f, "sharded"),
            ServedBy::Planned => write!(f, "planned"),
            ServedBy::PlannedFailover => write!(f, "planned-failover"),
        }
    }
}

/// Why a response was served at degraded precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutCause {
    /// Sustained overload: the queue was above the brownout high-water
    /// mark when the batch dispatched.
    OverloadedQueue,
    /// The sharded backend's circuit breaker was open, so the fallback
    /// ran browned-out to absorb the extra load.
    OpenBreaker,
}

/// Typed annotation for a browned-out response: the precision it was
/// computed at and why — degradation is surfaced, never silent drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brownout {
    /// Storage precision the batch actually ran at (e.g. bf16).
    pub precision: matrix::Precision,
    /// What triggered the degradation.
    pub cause: BrownoutCause,
}

/// A fulfilled request: the model output rows plus where the time went.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// One output row per requested target, in request order.
    pub rows: DenseMatrix,
    /// Time spent queued before a lane picked the request up.
    pub queued: Duration,
    /// Submission-to-completion latency.
    pub total: Duration,
    /// Number of requests coalesced into the batch that served this one.
    pub batch_size: usize,
    /// The backend that computed this response.
    pub served_by: ServedBy,
    /// `Some` when the brownout policy degraded precision for this batch;
    /// `None` for full-precision (bitwise-exact) responses.
    pub degraded: Option<Brownout>,
}

/// One-shot completion slot shared between the service and the handle.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct SlotState {
    done: Option<Result<Response, Rejection>>,
    waker: Option<Waker>,
}

impl Slot {
    /// Deliver the outcome and wake both blocking and async waiters.
    /// Called at most once per slot; a second call keeps the first value
    /// (completion is one-shot).
    pub(crate) fn fulfill(&self, outcome: Result<Response, Rejection>) {
        let mut st = audit::recover("serving.slot", &self.state);
        if st.done.is_none() {
            st.done = Some(outcome);
        }
        if let Some(w) = st.waker.take() {
            w.wake();
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// The caller's half of a submitted request: a one-shot future that is
/// also blocking-waitable (no async runtime required).
///
/// ```
/// # use serving::{Rejection, ResponseHandle};
/// # fn demo(handle: ResponseHandle) -> Result<(), Rejection> {
/// let response = handle.wait()?; // or `handle.await?` in async code
/// assert!(response.rows.rows() >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<Slot>,
}

impl ResponseHandle {
    pub(crate) fn new() -> (Self, Arc<Slot>) {
        let slot = Arc::new(Slot::default());
        (ResponseHandle { slot: slot.clone() }, slot)
    }

    /// Block until the request completes or is rejected.
    pub fn wait(self) -> Result<Response, Rejection> {
        let mut st = audit::recover("serving.slot", &self.slot.state);
        loop {
            if let Some(outcome) = st.done.take() {
                return outcome;
            }
            st = audit::recover_wait("serving.slot", &self.slot.cv, st);
        }
    }

    /// Non-blocking probe: the outcome if it has already been delivered.
    pub fn try_take(&self) -> Option<Result<Response, Rejection>> {
        audit::recover("serving.slot", &self.slot.state).done.take()
    }
}

impl Future for ResponseHandle {
    type Output = Result<Response, Rejection>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = audit::recover("serving.slot", &self.slot.state);
        match st.done.take() {
            Some(outcome) => Poll::Ready(outcome),
            None => {
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::task::{RawWaker, RawWakerVTable};

    fn noop_waker() -> Waker {
        fn clone(_: *const ()) -> RawWaker {
            RawWaker::new(std::ptr::null(), &VTABLE)
        }
        fn noop(_: *const ()) {}
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
        // SAFETY: every vtable entry ignores its data pointer, so a null
        // pointer with no-op clone/wake/drop upholds the RawWaker contract.
        unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
    }

    fn response() -> Response {
        Response {
            rows: DenseMatrix::zeros(1, 2),
            queued: Duration::ZERO,
            total: Duration::ZERO,
            batch_size: 1,
            served_by: ServedBy::Planned,
            degraded: None,
        }
    }

    #[test]
    fn wait_returns_fulfilled_outcome() {
        let (handle, slot) = ResponseHandle::new();
        slot.fulfill(Ok(response()));
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn wait_blocks_until_another_thread_fulfills() {
        let (handle, slot) = ResponseHandle::new();
        let t = std::thread::spawn(move || handle.wait());
        std::thread::sleep(Duration::from_millis(10));
        slot.fulfill(Err(Rejection::Shutdown));
        assert_eq!(t.join().unwrap(), Err(Rejection::Shutdown));
    }

    #[test]
    fn future_pends_then_wakes() {
        let (mut handle, slot) = ResponseHandle::new();
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut handle).poll(&mut cx).is_pending());
        slot.fulfill(Ok(response()));
        assert!(matches!(
            Pin::new(&mut handle).poll(&mut cx),
            Poll::Ready(Ok(_))
        ));
    }

    #[test]
    fn fulfillment_is_one_shot() {
        let (handle, slot) = ResponseHandle::new();
        slot.fulfill(Err(Rejection::Shutdown));
        slot.fulfill(Ok(response()));
        assert_eq!(handle.wait(), Err(Rejection::Shutdown));
    }

    #[test]
    fn rejections_render_their_state() {
        let r = Rejection::QueueFull { depth: 8, limit: 8 };
        assert!(r.to_string().contains("8 of 8"));
        assert!(Rejection::Faulted {
            site: "serving.batch".into(),
            shard: None,
        }
        .to_string()
        .contains("serving.batch"));
        let attributed = Rejection::Faulted {
            site: "shard.task".into(),
            shard: Some(3),
        };
        assert!(attributed.to_string().contains("shard 3"));
    }
}
