//! The admission queue and batch scheduler — the service's hot path.
//!
//! One `Mutex<Sched>` + condvar pair carries all scheduler state: a
//! bounded per-tenant FIFO each, the global depth counter, the deficit
//! round-robin cursor, and the [`Resources`] meter. Admission
//! ([`AdmissionQueue::submit`]) enforces three rules before a request is
//! ever queued — intake open, global depth below the limit, tenant under
//! its row quota — and every refusal is a typed
//! [`Rejection`](crate::request::Rejection) delivered immediately.
//! Dispatch ([`AdmissionQueue::pop_batch`]) blocks a lane until work
//! arrives, then holds the **batching window** open (a timed wait, so
//! late arrivals coalesce into the same kernel call) and drains requests
//! by deficit round-robin across tenants, shedding any whose latency
//! budget expired while queued — a request is served on time or rejected,
//! never served late without bound.
//!
//! In-flight work is bounded end to end: at most `limit` requests queued,
//! at most `max_batch` requests (or `max_rows` output rows) per executing
//! batch per lane, and per-tenant rows metered from admission until the
//! response (or rejection) is delivered.
//!
//! Steady state is allocation-free: every buffer (`VecDeque` ring, batch
//! vectors) is caller-owned and reused at its high-water mark; the only
//! per-request allocation is the response slot `Arc` created at submit.
//
// BOUNDS: all lane indexing is either `cursor % lanes.len()` (reduced
// modulo the lane count, which is ≥ 1 by construction in the service
// builder) or a tenant id validated against `lanes.len()` at admission
// before first use.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use std::sync::Arc;

use resilience::audit;

use crate::metrics::ServiceMetrics;
use crate::request::{Rejection, Request, RequestKind, ResponseHandle, Slot, TenantId};
use crate::tenant::Resources;

/// One admitted request waiting for (or riding in) a batch.
#[derive(Debug)]
pub(crate) struct Pending {
    /// Submitting tenant (for the release of its row charge).
    pub tenant: TenantId,
    /// The requested computation.
    pub kind: RequestKind,
    /// Completion slot shared with the caller's handle.
    pub slot: Arc<Slot>,
    /// Submission time (queue-wait metric).
    pub enqueued: Instant,
    /// Shed-after time: `enqueued + latency budget`.
    pub deadline: Instant,
    /// Row charge held against the tenant until delivery.
    pub rows: u64,
}

/// One tenant's FIFO plus its deficit round-robin state.
#[derive(Debug)]
pub(crate) struct TenantLane {
    queue: VecDeque<Pending>,
    weight: u32,
    deficit: u32,
}

impl TenantLane {
    /// An empty lane with the given DRR weight (0 is clamped to 1).
    pub(crate) fn new(weight: u32) -> Self {
        TenantLane {
            queue: VecDeque::with_capacity(0),
            weight: weight.max(1),
            deficit: 0,
        }
    }
}

/// Everything the scheduler mutates, under one lock.
struct Sched {
    lanes: Vec<TenantLane>,
    resources: Box<dyn Resources>,
    depth: usize,
    cursor: usize,
    open: bool,
}

impl std::fmt::Debug for Sched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sched")
            .field("lanes", &self.lanes.len())
            .field("depth", &self.depth)
            .field("cursor", &self.cursor)
            .field("open", &self.open)
            .finish()
    }
}

/// The shared admission/batching queue (see module docs).
#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    sched: Mutex<Sched>,
    cv: Condvar,
    limit: usize,
    budget: Duration,
    max_batch: usize,
    max_rows: usize,
    window: Duration,
    metrics: Arc<ServiceMetrics>,
}

impl AdmissionQueue {
    /// Assembles the queue from caller-built parts (the service builder
    /// owns all construction-time allocation).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        lanes: Vec<TenantLane>,
        resources: Box<dyn Resources>,
        limit: usize,
        budget: Duration,
        max_batch: usize,
        max_rows: usize,
        window: Duration,
        metrics: Arc<ServiceMetrics>,
    ) -> Self {
        AdmissionQueue {
            sched: Mutex::new(Sched {
                lanes,
                resources,
                depth: 0,
                cursor: 0,
                open: true,
            }),
            cv: Condvar::new(),
            limit: limit.max(1),
            budget,
            max_batch: max_batch.max(1),
            max_rows: max_rows.max(1),
            window,
            metrics,
        }
    }

    /// Admit one request, or reject it with a typed reason. On success
    /// the caller holds the response handle and the request is queued
    /// with its tenant's row charge taken.
    pub(crate) fn submit(&self, req: Request) -> Result<ResponseHandle, Rejection> {
        self.metrics.on_submitted();
        // lint:allow(L008): one static bool load per request while
        // disarmed; this is the chaos suite's "kill the queue mid-flight"
        // entry point and must sit before the lock so an injected panic
        // never poisons the scheduler from the submit side.
        resilience::fault_point!("serving.queue");
        let now = Instant::now();
        let rows = req.kind.rows() as u64;
        // The admission decision happens inside this scope (one lock
        // hold); metrics and rejections are delivered after the sched
        // lock is released so the lock-order graph stays sched-only.
        let admitted = {
            let mut s = audit::recover("serving.sched", &self.sched);
            let t = req.tenant as usize;
            if !s.open {
                Err(Rejection::Shutdown)
            } else if t >= s.lanes.len() {
                Err(Rejection::UnknownTenant {
                    tenant: req.tenant,
                    tenants: s.lanes.len(),
                })
            } else if s.depth >= self.limit {
                Err(Rejection::QueueFull {
                    depth: s.depth,
                    limit: self.limit,
                })
            } else if !s.resources.try_charge(req.tenant, rows) {
                Err(Rejection::TenantOverLimit {
                    tenant: req.tenant,
                    in_flight: s.resources.in_flight(req.tenant),
                    limit: s.resources.limit(req.tenant),
                })
            } else {
                let (handle, slot) = ResponseHandle::new();
                s.lanes[t].queue.push_back(Pending {
                    tenant: req.tenant,
                    kind: req.kind,
                    slot,
                    enqueued: now,
                    deadline: now + self.budget,
                    rows,
                });
                s.depth += 1;
                Ok(handle)
            }
        };
        match admitted {
            Ok(handle) => {
                self.metrics.on_admitted();
                self.cv.notify_one();
                Ok(handle)
            }
            Err(r) => Err(self.rejected(r)),
        }
    }

    /// Record a rejection in the metrics and hand it back.
    fn rejected(&self, r: Rejection) -> Rejection {
        self.metrics.on_rejected(&r);
        r
    }

    /// Block until work arrives (or the queue closes empty), hold the
    /// batching window open for late arrivals, then drain up to
    /// `max_batch` requests / `max_rows` output rows into `batch` by
    /// deficit round-robin over tenants. Requests whose deadline passed
    /// while queued land in `shed` instead (their tenant charge already
    /// released). Returns `false` when the queue is closed and empty —
    /// the lane should exit.
    pub(crate) fn pop_batch(&self, batch: &mut Vec<Pending>, shed: &mut Vec<Pending>) -> bool {
        // lint:allow(L008): one static bool load per batch while
        // disarmed; the dispatch side of the chaos kill point (an
        // injected panic here is contained by the lane's catch_unwind).
        resilience::fault_point!("serving.queue");
        let mut s = audit::recover("serving.sched", &self.sched);
        while s.depth == 0 {
            if !s.open {
                return false;
            }
            s = audit::recover_wait("serving.sched", &self.cv, s);
        }
        // Batching window: coalesce late arrivals into this batch until
        // the window closes or enough requests queued to fill it.
        if !self.window.is_zero() {
            let window_end = Instant::now() + self.window;
            while s.depth < self.max_batch && s.open {
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                let (g, timed_out) = audit::recover_wait_timeout(
                    "serving.sched",
                    &self.cv,
                    s,
                    window_end.saturating_duration_since(now),
                );
                s = g;
                if timed_out {
                    break;
                }
            }
        }
        let now = Instant::now();
        let nlanes = s.lanes.len();
        let mut rows = 0usize;
        let mut empty_scans = 0usize;
        while s.depth > 0 && batch.len() < self.max_batch && rows < self.max_rows {
            if empty_scans > nlanes {
                break;
            }
            let li = s.cursor % nlanes;
            if s.lanes[li].queue.is_empty() {
                s.lanes[li].deficit = 0;
                s.cursor = (s.cursor + 1) % nlanes;
                empty_scans += 1;
                continue;
            }
            empty_scans = 0;
            if s.lanes[li].deficit == 0 {
                s.lanes[li].deficit = s.lanes[li].weight;
            }
            let Some(p) = s.lanes[li].queue.pop_front() else {
                continue;
            };
            s.depth -= 1;
            s.lanes[li].deficit -= 1;
            if s.lanes[li].deficit == 0 {
                s.cursor = (s.cursor + 1) % nlanes;
            }
            if now >= p.deadline {
                s.resources.release(p.tenant, p.rows);
                shed.push(p);
            } else {
                rows += p.kind.rows();
                batch.push(p);
            }
        }
        true
    }

    /// Return a delivered request's row charge to its tenant.
    pub(crate) fn release(&self, tenant: TenantId, rows: u64) {
        let mut s = audit::recover("serving.sched", &self.sched);
        s.resources.release(tenant, rows);
    }

    /// Close intake. With `drain`, also empty every lane into `drained`
    /// (tenant charges released) — the kill path; without, queued work
    /// keeps draining through `pop_batch` — graceful shutdown. Wakes every
    /// waiting lane either way.
    pub(crate) fn close(&self, drain: bool, drained: &mut Vec<Pending>) {
        {
            let mut s = audit::recover("serving.sched", &self.sched);
            s.open = false;
            if drain {
                let Sched {
                    lanes,
                    resources,
                    depth,
                    ..
                } = &mut *s;
                for lane in lanes.iter_mut() {
                    while let Some(p) = lane.queue.pop_front() {
                        resources.release(p.tenant, p.rows);
                        *depth -= 1;
                        drained.push(p);
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Requests currently queued (not yet popped into a batch).
    pub(crate) fn depth(&self) -> usize {
        audit::recover("serving.sched", &self.sched).depth
    }

    /// The per-request latency budget admission stamps on deadlines.
    pub(crate) fn budget(&self) -> Duration {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::FixedQuota;

    fn queue(limit: usize, budget: Duration, max_batch: usize, tenants: usize) -> AdmissionQueue {
        let lanes = (0..tenants).map(|_| TenantLane::new(1)).collect();
        AdmissionQueue::new(
            lanes,
            Box::new(FixedQuota::uniform(tenants, u64::MAX)),
            limit,
            budget,
            max_batch,
            usize::MAX,
            Duration::ZERO,
            Arc::new(ServiceMetrics::default()),
        )
    }

    #[test]
    fn depth_limit_sheds_with_queue_full() {
        let q = queue(2, Duration::from_secs(60), 8, 1);
        assert!(q.submit(Request::vertex(0, 0)).is_ok());
        assert!(q.submit(Request::vertex(0, 1)).is_ok());
        assert!(matches!(
            q.submit(Request::vertex(0, 2)),
            Err(Rejection::QueueFull { depth: 2, limit: 2 })
        ));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn tenant_quota_sheds_with_typed_rejection() {
        let lanes = (0..2).map(|_| TenantLane::new(1)).collect();
        let q = AdmissionQueue::new(
            lanes,
            Box::new(FixedQuota::uniform(2, 3)),
            64,
            Duration::from_secs(60),
            8,
            usize::MAX,
            Duration::ZERO,
            Arc::new(ServiceMetrics::default()),
        );
        assert!(q.submit(Request::subgraph(0, vec![1, 2, 3])).is_ok());
        assert!(matches!(
            q.submit(Request::vertex(0, 4)),
            Err(Rejection::TenantOverLimit {
                tenant: 0,
                in_flight: 3,
                limit: 3
            })
        ));
        // The other tenant is unaffected, and releasing restores quota.
        assert!(q.submit(Request::vertex(1, 4)).is_ok());
        q.release(0, 3);
        assert!(q.submit(Request::vertex(0, 4)).is_ok());
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let q = queue(8, Duration::from_secs(60), 8, 2);
        assert!(matches!(
            q.submit(Request::vertex(5, 0)),
            Err(Rejection::UnknownTenant {
                tenant: 5,
                tenants: 2
            })
        ));
    }

    #[test]
    fn pop_coalesces_up_to_max_batch() {
        let q = queue(64, Duration::from_secs(60), 3, 1);
        for v in 0..5 {
            q.submit(Request::vertex(0, v)).unwrap();
        }
        let (mut batch, mut shed) = (Vec::new(), Vec::new());
        assert!(q.pop_batch(&mut batch, &mut shed));
        assert_eq!(batch.len(), 3, "capped at max_batch");
        assert!(shed.is_empty());
        batch.clear();
        assert!(q.pop_batch(&mut batch, &mut shed));
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn expired_requests_are_shed_not_served() {
        let q = queue(64, Duration::ZERO, 8, 1);
        q.submit(Request::vertex(0, 0)).unwrap();
        q.submit(Request::vertex(0, 1)).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let (mut batch, mut shed) = (Vec::new(), Vec::new());
        assert!(q.pop_batch(&mut batch, &mut shed));
        assert!(batch.is_empty());
        assert_eq!(shed.len(), 2);
    }

    #[test]
    fn drr_interleaves_tenants_by_weight() {
        let lanes = vec![TenantLane::new(2), TenantLane::new(1)];
        let q = AdmissionQueue::new(
            lanes,
            Box::new(FixedQuota::uniform(2, u64::MAX)),
            64,
            Duration::from_secs(60),
            6,
            usize::MAX,
            Duration::ZERO,
            Arc::new(ServiceMetrics::default()),
        );
        for v in 0..4 {
            q.submit(Request::vertex(0, v)).unwrap();
            q.submit(Request::vertex(1, 10 + v)).unwrap();
        }
        let (mut batch, mut shed) = (Vec::new(), Vec::new());
        assert!(q.pop_batch(&mut batch, &mut shed));
        let order: Vec<TenantId> = batch.iter().map(|p| p.tenant).collect();
        // Weight 2:1 — tenant 0 dispatches twice per cursor visit.
        assert_eq!(order, vec![0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn close_without_drain_lets_queued_work_finish() {
        let q = queue(64, Duration::from_secs(60), 8, 1);
        q.submit(Request::vertex(0, 0)).unwrap();
        let mut drained = Vec::new();
        q.close(false, &mut drained);
        assert!(drained.is_empty());
        assert!(matches!(
            q.submit(Request::vertex(0, 1)),
            Err(Rejection::Shutdown)
        ));
        let (mut batch, mut shed) = (Vec::new(), Vec::new());
        assert!(q.pop_batch(&mut batch, &mut shed), "queued work survives");
        assert_eq!(batch.len(), 1);
        batch.clear();
        assert!(!q.pop_batch(&mut batch, &mut shed), "then the lane exits");
    }

    #[test]
    fn kill_drains_everything() {
        let q = queue(64, Duration::from_secs(60), 8, 1);
        q.submit(Request::vertex(0, 0)).unwrap();
        q.submit(Request::vertex(0, 1)).unwrap();
        let mut drained = Vec::new();
        q.close(true, &mut drained);
        assert_eq!(drained.len(), 2);
        assert_eq!(q.depth(), 0);
        let (mut batch, mut shed) = (Vec::new(), Vec::new());
        assert!(!q.pop_batch(&mut batch, &mut shed));
    }

    #[test]
    fn pop_blocks_until_submit_wakes_it() {
        let q = Arc::new(queue(8, Duration::from_secs(60), 8, 1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            let (mut batch, mut shed) = (Vec::new(), Vec::new());
            assert!(q2.pop_batch(&mut batch, &mut shed));
            batch.len()
        });
        std::thread::sleep(Duration::from_millis(5));
        q.submit(Request::vertex(0, 3)).unwrap();
        assert_eq!(t.join().unwrap(), 1);
    }
}
