//! Per-backend circuit breaker: closed → open → half-open.
//!
//! The service wraps its sharded backend in a [`CircuitBreaker`] so a
//! shard that keeps failing stops being dispatched to (requests fail
//! over to the planned single-node backend instead of queueing behind a
//! dying runner). The machine is deliberately clock-explicit — every
//! transition that depends on time takes `now: Instant` — so tests and
//! property checks can drive it with a virtual clock and prove the two
//! liveness invariants:
//!
//! * **never stuck open** — once `cooldown` has elapsed, the next
//!   [`CircuitBreaker::try_admit`] always admits (transitioning to
//!   half-open);
//! * **bounded probes** — half-open admits exactly `probe_quota`
//!   requests before it sees any of their outcomes; quota successes
//!   close the breaker, any failure re-opens it.

use std::time::{Duration, Instant};

/// The three classic breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request is admitted; consecutive failures count
    /// toward opening.
    Closed,
    /// Tripped: requests are refused until the cooldown elapses.
    Open,
    /// Probing: a bounded number of canary requests are admitted; their
    /// outcomes decide between closing and re-opening.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Breaker tunables.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    /// Clamped to at least 1.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing again.
    pub cooldown: Duration,
    /// Requests admitted in half-open before any outcome is known; this
    /// many successes close the breaker. Clamped to at least 1.
    pub probe_quota: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
            probe_quota: 2,
        }
    }
}

/// The breaker state machine (see module docs). Not internally
/// synchronized — the service keeps it behind its engine lock.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probes_in_flight: u32,
    probe_successes: u32,
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker with `cfg` (threshold and quota clamped ≥ 1).
    pub fn new(mut cfg: BreakerConfig) -> CircuitBreaker {
        cfg.failure_threshold = cfg.failure_threshold.max(1);
        cfg.probe_quota = cfg.probe_quota.max(1);
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            probes_in_flight: 0,
            probe_successes: 0,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open since construction.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Asks to dispatch one request to the guarded backend at `now`.
    /// `true` admits (the caller must later report `on_success` or
    /// `on_failure`); `false` means fail over without touching the
    /// backend.
    pub fn try_admit(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let elapsed = self
                    .opened_at
                    .map_or(Duration::MAX, |at| now.saturating_duration_since(at));
                if elapsed >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probes_in_flight = 1;
                    self.probe_successes = 0;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_in_flight + self.probe_successes < self.cfg.probe_quota {
                    self.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful backend call previously admitted by
    /// [`CircuitBreaker::try_admit`].
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.probe_quota {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.opened_at = None;
                    self.probes_in_flight = 0;
                    self.probe_successes = 0;
                }
            }
            // A straggler completing after the breaker already re-opened
            // carries stale evidence; ignore it.
            BreakerState::Open => {}
        }
    }

    /// Reports a failed backend call previously admitted by
    /// [`CircuitBreaker::try_admit`].
    pub fn on_failure(&mut self, now: Instant) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.opened_at = Some(now);
        self.opens += 1;
        self.consecutive_failures = 0;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            probe_quota: 2,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..2 {
            assert!(b.try_admit(t0));
            b.on_failure(t0);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_admit(t0));
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.try_admit(t0), "open refuses inside the cooldown");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success();
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_exactly_the_probe_quota_then_closes() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let later = t0 + Duration::from_millis(100);
        assert!(b.try_admit(later), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.try_admit(later), "second probe within quota");
        assert!(!b.try_admit(later), "quota exhausted");
        b.on_success();
        assert!(!b.try_admit(later), "successes still count against quota");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_admit(later));
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let later = t0 + Duration::from_millis(150);
        assert!(b.try_admit(later));
        b.on_failure(later);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(!b.try_admit(later + Duration::from_millis(50)));
        assert!(
            b.try_admit(later + Duration::from_millis(100)),
            "never stuck open"
        );
    }
}
