//! Async GCN inference service: request batching, admission control, and
//! per-tenant accounting over the planned and sharded backends.
//!
//! The serving layer turns the repo's offline inference engines into an
//! online service. Callers submit per-vertex or per-subgraph requests
//! ([`Request`]) and get back a one-shot [`ResponseHandle`] (blocking or
//! `.await`-able). Inside, an admission queue (bounded depth, per-tenant
//! row quotas, deficit-round-robin fairness) feeds lane threads that
//! coalesce requests within a configurable batching window and execute
//! each batch as a *single* planned SpMM+GEMM call over the batch's
//! gathered k-hop neighbourhood — or a single [`shard::ShardedGcn`] pass.
//! Batching amortises plan reuse and kernel launch overhead exactly the
//! way the paper's PIUMA pipeline amortises DMA setup across gathers.
//!
//! Three properties are load-bearing and tested:
//!
//! 1. **Bitwise invariance** — any interleaving/coalescing of requests
//!    returns bit-identical rows to serial per-request inference (the
//!    width-1 plan contract from the precision PR).
//! 2. **Bounded everything** — queue depth, per-tenant in-flight rows,
//!    and per-request latency budgets are all enforced with typed
//!    [`Rejection`]s; nothing queues or blocks forever.
//! 3. **Fault containment** — injected faults (`serving.queue`,
//!    `serving.batch`) surface as [`Rejection::Faulted`] on the affected
//!    requests only; the service keeps serving and never hangs.

mod queue;

/// Per-backend circuit breaker (closed → open → half-open).
pub mod breaker;
/// Latency histograms and shed/throughput counters.
pub mod metrics;
/// Request, response, and typed-rejection types.
pub mod request;
/// The service itself: lanes, backends, lifecycle.
pub mod service;
/// Seeded chaos soak harness: kill/heal schedules over the fault points.
pub mod soak;
/// Per-tenant resource accounting and fair-share configuration.
pub mod tenant;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use request::{
    Brownout, BrownoutCause, Rejection, Request, RequestKind, Response, ResponseHandle, ServedBy,
    TenantId,
};
pub use service::{BrownoutPolicy, GcnService, ServiceConfig, ServingError};
pub use shard::PartitionKind;
pub use soak::{FaultWindow, SoakConfig, SoakReport, WindowReport};
pub use tenant::{FixedQuota, Resources, TenantSpec};
