//! Analytical performance models from Section IV-A of the paper.
//!
//! SpMM is a low-arithmetic-intensity kernel, so the paper models it as
//! purely bandwidth-bound (Equations 1–5):
//!
//! ```text
//! B_CSR     = (|V| + 1) * B_R + |E| * B_C + |E| * B_N        (1)
//! B_Feature = K * |E| * B_F                                   (2)
//! B_Write   = K * |V| * B_F                                   (3)
//! FLOP      = 2 * |E| * K                                     (4)
//! Time      = (B_CSR + B_Feature) / BW_read + B_Write / BW_write  (5)
//! ```
//!
//! The model assumes **no reuse** of input feature vectors — fair on PIUMA,
//! which has no L2/L3 cache — and one write per output row.
//!
//! [`SpmmTraffic`] implements those equations; [`ElementSizes`] captures the
//! `B_X` byte-size parameters; [`workload`] adds the GCN-layer FLOP/traffic
//! accounting shared by every platform model in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fusion;
pub mod workload;

use serde::{Deserialize, Serialize};

/// Byte sizes of the CSR and feature elements (the `B_X` constants of
/// Eq. 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementSizes {
    /// Bytes per row-pointer entry (`B_R`).
    pub row_ptr: usize,
    /// Bytes per column index (`B_C`).
    pub col_idx: usize,
    /// Bytes per non-zero value (`B_N`).
    pub value: usize,
    /// Bytes per feature element (`B_F`).
    pub feature: usize,
}

impl Default for ElementSizes {
    /// 8-byte row pointers, 4-byte column indices, 4-byte values and
    /// features — the layout used by the executable kernels in this
    /// workspace.
    fn default() -> Self {
        ElementSizes {
            row_ptr: 8,
            col_idx: 4,
            value: 4,
            feature: 4,
        }
    }
}

/// Byte-traffic and FLOP accounting of one SpMM invocation
/// (`H_out = A * H_in`, `A` is `|V| x |V|` with `|E|` non-zeros, `K` is the
/// embedding dimension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpmmTraffic {
    /// Bytes read from the CSR arrays (Eq. 1).
    pub csr_bytes: f64,
    /// Bytes read from the dense feature matrix (Eq. 2).
    pub feature_bytes: f64,
    /// Bytes written to the output matrix (Eq. 3).
    pub write_bytes: f64,
    /// Floating-point operations (Eq. 4).
    pub flops: f64,
}

impl SpmmTraffic {
    /// Evaluates Equations 1–4 for a graph of `vertices` / `edges` and
    /// embedding dimension `k`.
    ///
    /// # Examples
    ///
    /// ```
    /// use analytic::{ElementSizes, SpmmTraffic};
    ///
    /// let t = SpmmTraffic::compute(1000, 10_000, 256, ElementSizes::default());
    /// assert_eq!(t.flops, 2.0 * 10_000.0 * 256.0);
    /// ```
    pub fn compute(vertices: usize, edges: usize, k: usize, sizes: ElementSizes) -> Self {
        let v = vertices as f64;
        let e = edges as f64;
        let kf = k as f64;
        SpmmTraffic {
            csr_bytes: (v + 1.0) * sizes.row_ptr as f64
                + e * sizes.col_idx as f64
                + e * sizes.value as f64,
            feature_bytes: kf * e * sizes.feature as f64,
            write_bytes: kf * v * sizes.feature as f64,
            flops: 2.0 * e * kf,
        }
    }

    /// Total bytes read (`B_CSR + B_Feature`).
    pub fn read_bytes(&self) -> f64 {
        self.csr_bytes + self.feature_bytes
    }

    /// Total bytes moved (reads + writes).
    pub fn total_bytes(&self) -> f64 {
        self.read_bytes() + self.write_bytes
    }

    /// Execution time in seconds per Eq. 5, for read/write bandwidths in
    /// bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is non-positive.
    pub fn time_seconds(&self, bw_read: f64, bw_write: f64) -> f64 {
        assert!(
            bw_read > 0.0 && bw_write > 0.0,
            "bandwidth must be positive"
        );
        self.read_bytes() / bw_read + self.write_bytes / bw_write
    }

    /// Expected throughput in FLOP/s at the given bandwidths (Eq. 4 / Eq. 5).
    pub fn flops_per_second(&self, bw_read: f64, bw_write: f64) -> f64 {
        let t = self.time_seconds(bw_read, bw_write);
        if t == 0.0 {
            0.0
        } else {
            self.flops / t
        }
    }

    /// Arithmetic intensity in FLOP per byte moved. For SpMM this sits well
    /// below 1 — the signature of a memory-bound kernel.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b == 0.0 {
            0.0
        } else {
            self.flops / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SZ: ElementSizes = ElementSizes {
        row_ptr: 8,
        col_idx: 4,
        value: 4,
        feature: 4,
    };

    #[test]
    fn equations_match_hand_computation() {
        // |V| = 10, |E| = 40, K = 16.
        let t = SpmmTraffic::compute(10, 40, 16, SZ);
        assert_eq!(t.csr_bytes, 11.0 * 8.0 + 40.0 * 4.0 + 40.0 * 4.0);
        assert_eq!(t.feature_bytes, 16.0 * 40.0 * 4.0);
        assert_eq!(t.write_bytes, 16.0 * 10.0 * 4.0);
        assert_eq!(t.flops, 2.0 * 40.0 * 16.0);
    }

    #[test]
    fn time_splits_reads_and_writes() {
        let t = SpmmTraffic::compute(10, 40, 16, SZ);
        // With 1 GB/s read and write, time = total bytes / 1e9.
        let time = t.time_seconds(1e9, 1e9);
        assert!((time - t.total_bytes() / 1e9).abs() < 1e-18);
        // Doubling read bandwidth only shrinks the read term.
        let faster = t.time_seconds(2e9, 1e9);
        let expected = t.read_bytes() / 2e9 + t.write_bytes / 1e9;
        assert!((faster - expected).abs() < 1e-18);
    }

    #[test]
    fn throughput_is_linear_in_bandwidth() {
        // The paper's Figure 6 (top): GFLOPS scales linearly with DRAM
        // bandwidth. In the pure model this is exact.
        let t = SpmmTraffic::compute(1 << 16, 1 << 20, 64, SZ);
        let f1 = t.flops_per_second(100e9, 100e9);
        let f2 = t.flops_per_second(200e9, 200e9);
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_intensity_is_below_one_for_spmm() {
        for k in [8usize, 64, 256] {
            let t = SpmmTraffic::compute(1 << 20, 16 << 20, k, SZ);
            assert!(
                t.arithmetic_intensity() < 1.0,
                "K={k} intensity {}",
                t.arithmetic_intensity()
            );
        }
    }

    #[test]
    fn intensity_grows_with_k_but_saturates() {
        // Feature traffic and FLOPs both scale with K, so intensity
        // approaches 2*|E| / (4*|E| + 4*|V|) elements-wise; it must increase
        // in K and stay bounded by 0.5.
        let small = SpmmTraffic::compute(1000, 10_000, 8, SZ).arithmetic_intensity();
        let large = SpmmTraffic::compute(1000, 10_000, 256, SZ).arithmetic_intensity();
        assert!(large > small);
        assert!(large < 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        SpmmTraffic::compute(10, 10, 8, SZ).time_seconds(0.0, 1.0);
    }
}
