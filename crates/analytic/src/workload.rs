//! GCN-layer and GCN-model workload accounting.
//!
//! Every platform model (Xeon, A100, PIUMA) prices the same three phases the
//! paper's breakdown figures use — SpMM, Dense MM, and Glue Code — so the
//! *what must be computed* accounting lives here, once, and only the
//! *how fast* rates differ per platform.

use crate::{ElementSizes, SpmmTraffic};
use serde::{Deserialize, Serialize};

/// Workload of a single GCN layer on a given graph.
///
/// A layer computes `H' = sigma(A_hat * H * W + b)` with `W` of shape
/// `(k_in, k_out)`. Like the executable fused kernel (and PyTorch-
/// Geometric), the cheaper association order is assumed: aggregation runs at
/// `min(k_in, k_out)` width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Vertices of the graph (`|V|`).
    pub vertices: usize,
    /// Stored edges / adjacency non-zeros (`|E|`, including self loops if
    /// the caller counts them).
    pub edges: usize,
    /// Input feature width of the layer.
    pub k_in: usize,
    /// Output feature width of the layer.
    pub k_out: usize,
}

impl LayerWorkload {
    /// Embedding width at which the aggregation (SpMM) runs.
    pub fn k_agg(&self) -> usize {
        self.k_in.min(self.k_out)
    }

    /// SpMM byte traffic and FLOPs for this layer (Eq. 1–4 at `k_agg`).
    pub fn spmm(&self, sizes: ElementSizes) -> SpmmTraffic {
        SpmmTraffic::compute(self.vertices, self.edges, self.k_agg(), sizes)
    }

    /// Dense-update FLOPs: `2 * |V| * k_in * k_out`.
    pub fn dense_flops(&self) -> f64 {
        2.0 * self.vertices as f64 * self.k_in as f64 * self.k_out as f64
    }

    /// Dense-update minimum byte traffic (read `H`, read `W`, write `H'`),
    /// used for roofline-style bounds on cache-less machines.
    pub fn dense_bytes(&self, feature_bytes: usize) -> f64 {
        let f = feature_bytes as f64;
        let v = self.vertices as f64;
        v * self.k_in as f64 * f + (self.k_in * self.k_out) as f64 * f + v * self.k_out as f64 * f
    }

    /// Glue-code byte traffic: one read + one write of the activation over
    /// the layer output (bias add and ReLU fused into a single pass).
    pub fn glue_bytes(&self, feature_bytes: usize) -> f64 {
        2.0 * self.vertices as f64 * self.k_out as f64 * feature_bytes as f64
    }
}

/// Workload of a full GCN model on one graph: one [`LayerWorkload`] per
/// layer.
///
/// # Examples
///
/// ```
/// use analytic::workload::GcnWorkload;
///
/// // 3-layer paper model on a graph with 1e5 vertices / 4e6 edges,
/// // input 128, hidden 64, output 40.
/// let w = GcnWorkload::new(100_000, 4_000_000, &[128, 64, 64, 40]);
/// assert_eq!(w.layers().len(), 3);
/// assert_eq!(w.layers()[1].k_agg(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnWorkload {
    layers: Vec<LayerWorkload>,
}

impl GcnWorkload {
    /// Builds the per-layer workload list from the model's dimension chain.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are supplied.
    pub fn new(vertices: usize, edges: usize, dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "a GCN needs at least one layer");
        let layers = dims
            .windows(2)
            .map(|w| LayerWorkload {
                vertices,
                edges,
                k_in: w[0],
                k_out: w[1],
            })
            .collect();
        GcnWorkload { layers }
    }

    /// Builds the paper's 3-layer model workload
    /// (`input -> hidden -> hidden -> output`).
    pub fn paper_model(
        vertices: usize,
        edges: usize,
        input: usize,
        hidden: usize,
        output: usize,
    ) -> Self {
        GcnWorkload::new(vertices, edges, &[input, hidden, hidden, output])
    }

    /// The per-layer workloads in execution order.
    pub fn layers(&self) -> &[LayerWorkload] {
        &self.layers
    }

    /// Total SpMM FLOPs across layers.
    pub fn total_spmm_flops(&self, sizes: ElementSizes) -> f64 {
        self.layers.iter().map(|l| l.spmm(sizes).flops).sum()
    }

    /// Total dense-update FLOPs across layers.
    pub fn total_dense_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.dense_flops()).sum()
    }

    /// Memory footprint in bytes of running inference: adjacency CSR plus
    /// the widest pair of activation matrices plus all weights. This is the
    /// quantity the GPU model compares against device memory to decide
    /// whether sampling is required.
    pub fn inference_footprint_bytes(&self, sizes: ElementSizes) -> f64 {
        let v = self.layers[0].vertices as f64;
        let e = self.layers[0].edges as f64;
        let csr = (v + 1.0) * sizes.row_ptr as f64 + e * (sizes.col_idx + sizes.value) as f64;
        let widest_pair = self
            .layers
            .iter()
            .map(|l| (l.k_in + l.k_out) as f64)
            .fold(0.0, f64::max);
        let activations = v * widest_pair * sizes.feature as f64;
        let weights: f64 = self
            .layers
            .iter()
            .map(|l| (l.k_in * l.k_out) as f64 * sizes.feature as f64)
            .sum();
        csr + activations + weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_chain_follows_dims() {
        let w = GcnWorkload::new(10, 20, &[4, 8, 2]);
        assert_eq!(w.layers().len(), 2);
        assert_eq!(w.layers()[0].k_in, 4);
        assert_eq!(w.layers()[0].k_out, 8);
        assert_eq!(w.layers()[1].k_in, 8);
        assert_eq!(w.layers()[1].k_out, 2);
    }

    #[test]
    fn aggregation_runs_at_narrow_width() {
        let l = LayerWorkload {
            vertices: 10,
            edges: 20,
            k_in: 128,
            k_out: 8,
        };
        assert_eq!(l.k_agg(), 8);
    }

    #[test]
    fn dense_flops_match_gemm_formula() {
        let l = LayerWorkload {
            vertices: 100,
            edges: 0,
            k_in: 16,
            k_out: 32,
        };
        assert_eq!(l.dense_flops(), 2.0 * 100.0 * 16.0 * 32.0);
    }

    #[test]
    fn paper_model_has_three_layers() {
        let w = GcnWorkload::paper_model(1000, 5000, 128, 64, 40);
        assert_eq!(w.layers().len(), 3);
        assert_eq!(w.layers()[2].k_out, 40);
    }

    #[test]
    fn spmm_flops_grow_with_hidden_dim() {
        let small = GcnWorkload::paper_model(1000, 5000, 128, 8, 40)
            .total_spmm_flops(ElementSizes::default());
        let large = GcnWorkload::paper_model(1000, 5000, 128, 256, 40)
            .total_spmm_flops(ElementSizes::default());
        assert!(large > small * 4.0);
    }

    #[test]
    fn footprint_scales_with_graph_and_width() {
        let sizes = ElementSizes::default();
        let small =
            GcnWorkload::paper_model(1000, 5000, 128, 8, 40).inference_footprint_bytes(sizes);
        let large =
            GcnWorkload::paper_model(1000, 5000, 128, 256, 40).inference_footprint_bytes(sizes);
        assert!(large > small);
        let bigger_graph =
            GcnWorkload::paper_model(10_000, 50_000, 128, 8, 40).inference_footprint_bytes(sizes);
        assert!(bigger_graph > small);
    }

    #[test]
    fn glue_bytes_cover_read_and_write() {
        let l = LayerWorkload {
            vertices: 50,
            edges: 0,
            k_in: 4,
            k_out: 8,
        };
        assert_eq!(l.glue_bytes(4), 2.0 * 50.0 * 8.0 * 4.0);
    }
}
