//! Layer fusion — the Graphite optimization (ref. [9] of the paper).
//!
//! The paper's Related Work notes that Graphite's layer fusion
//! "demonstrated a 1.3x speedup for SpMM and is an interesting software
//! optimization for PIUMA". Fusing the aggregation with the update keeps
//! each aggregated row `(A_hat H)[u, :]` in the scratchpad and multiplies
//! it by `W` immediately, so the intermediate `|V| x K` matrix is neither
//! written to DRAM nor read back: the SpMM phase saves one write and the
//! update phase saves one read of `|V| * K * B_F` bytes.
//!
//! This module prices that saving over the Eq. 1–5 traffic model, so the
//! "interesting optimization" can be evaluated per workload.

use crate::workload::LayerWorkload;
use crate::{ElementSizes, SpmmTraffic};
use serde::{Deserialize, Serialize};

/// Traffic of one fused aggregation+update layer next to the unfused
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusionAnalysis {
    /// Unfused bytes on the SpMM + intermediate path: CSR reads + feature
    /// reads + intermediate write + intermediate re-read.
    pub unfused_bytes: f64,
    /// Fused bytes: the intermediate round trip disappears.
    pub fused_bytes: f64,
}

impl FusionAnalysis {
    /// Analyzes fusion for one layer.
    pub fn of(layer: &LayerWorkload, sizes: ElementSizes) -> Self {
        let traffic: SpmmTraffic = layer.spmm(sizes);
        let intermediate = layer.vertices as f64 * layer.k_agg() as f64 * sizes.feature as f64;
        // Unfused: SpMM writes the intermediate, the GEMM reads it back.
        let unfused = traffic.read_bytes() + traffic.write_bytes + intermediate;
        // Fused: aggregation feeds the MAC loop directly; only the final
        // (post-W) output is written, which both variants pay equally and
        // is therefore excluded from the comparison.
        let fused = traffic.read_bytes();
        FusionAnalysis {
            unfused_bytes: unfused,
            fused_bytes: fused,
        }
    }

    /// Bandwidth-bound speedup of the fused sparse path
    /// (`unfused / fused`, >1 when fusion helps).
    pub fn speedup(&self) -> f64 {
        if self.fused_bytes <= 0.0 {
            return 1.0;
        }
        self.unfused_bytes / self.fused_bytes
    }

    /// Fraction of the unfused traffic eliminated.
    pub fn traffic_saved(&self) -> f64 {
        if self.unfused_bytes <= 0.0 {
            return 0.0;
        }
        1.0 - self.fused_bytes / self.unfused_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(vertices: usize, edges: usize, k: usize) -> LayerWorkload {
        LayerWorkload {
            vertices,
            edges,
            k_in: k,
            k_out: k,
        }
    }

    #[test]
    fn fusion_speedup_lands_in_graphite_band_for_citation_graphs() {
        // arxiv-like shape (avg degree ~7): Graphite reports ~1.3x.
        let a = FusionAnalysis::of(&layer(169_343, 1_166_243, 256), ElementSizes::default());
        let s = a.speedup();
        assert!(
            (1.15..1.45).contains(&s),
            "arxiv-like fusion speedup {s:.2}"
        );
    }

    #[test]
    fn fusion_helps_less_on_dense_graphs() {
        // products-like (avg degree ~25): features dominate, the
        // intermediate round trip is a smaller share.
        let dense = FusionAnalysis::of(&layer(2_449_029, 61_859_140, 256), ElementSizes::default());
        let sparse = FusionAnalysis::of(&layer(169_343, 1_166_243, 256), ElementSizes::default());
        assert!(dense.speedup() < sparse.speedup());
        assert!(dense.speedup() > 1.0);
    }

    #[test]
    fn savings_and_speedup_are_consistent() {
        let a = FusionAnalysis::of(&layer(1000, 10_000, 64), ElementSizes::default());
        let expected = 1.0 / (1.0 - a.traffic_saved());
        assert!((a.speedup() - expected).abs() < 1e-12);
        assert!(a.fused_bytes < a.unfused_bytes);
    }
}
