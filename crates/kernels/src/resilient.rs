//! Retry + graceful-degradation wrapper around the SpMM engine.
//!
//! A resilient run executes a kernel under [`resilience::retry`] (panics
//! become caught failures, attempts are bounded with backoff) and, when a
//! strategy keeps failing, walks a degradation chain toward simpler
//! kernels: Hybrid / EdgeParallel / FeatureParallel → VertexParallel →
//! Sequential. The sequential kernel touches no pool, no atomics, and no
//! scratch arena, so it is the last resort that a single surviving thread
//! can always execute. Every recovery and fallback is recorded in an
//! [`ExecutionReport`] so callers (and chaos tests) can see exactly how a
//! result was obtained.
//!
//! This is sound to retry because every `*_into` kernel fully overwrites
//! its output: a half-written buffer from a crashed attempt is erased by
//! the next attempt regardless of strategy.

use crate::engine::SpmmStrategy;
use crate::plan::SpmmPlan;
use matrix::microkernel::{self, Backend};
use matrix::{DenseMatrix, MatrixError, Precision};
use resilience::retry::{self, Failure, RetryPolicy};
use sparse::Csr;

/// One strategy fallback taken during a resilient run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Display form of the strategy that failed.
    pub from: String,
    /// Display form of the strategy tried next.
    pub to: String,
    /// Rendering of the failure that forced the fallback.
    pub cause: String,
}

/// How a resilient execution actually completed: attempts, recoveries,
/// strategy fallbacks, and any micro-kernel backend downgrade.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Kernel attempts made, including the successful one.
    pub attempts: u32,
    /// Panics caught and retried.
    pub recovered_panics: u32,
    /// Typed errors retried.
    pub recovered_errors: u32,
    /// Strategy fallbacks taken, in order.
    pub degradations: Vec<Degradation>,
    /// `(preferred, chosen)` if the micro-kernel dispatch probe downgraded
    /// the SIMD backend at process start ([`microkernel::probe_fallback`]).
    pub backend_fallback: Option<(Backend, Backend)>,
    /// `(requested, used)` if a narrow storage precision was downgraded —
    /// by the plan-time ISA probe or by an accuracy guard walking
    /// [`Precision::fallback`] (int8 → bf16 → f32).
    pub precision_fallback: Option<(Precision, Precision)>,
    /// Display form of the strategy that finally produced the result.
    pub completed_with: Option<String>,
    /// Originating fault site of the first failure this run degraded
    /// past (e.g. `kernels.exec`), or the rendered panic/error text when
    /// the failure did not come from a named fault point. `None` for
    /// clean runs and runs that recovered purely by retrying.
    pub fault_site: Option<String>,
    /// Shard the failure is attributed to — kernels itself never sets
    /// this; the sharded execution layers fill it in when they surface a
    /// report for a specific shard's work.
    pub shard: Option<usize>,
}

impl ExecutionReport {
    /// An empty report, pre-seeded with the process-wide backend-probe
    /// downgrade (if one was taken).
    pub fn new() -> Self {
        ExecutionReport {
            backend_fallback: microkernel::probe_fallback(),
            ..ExecutionReport::default()
        }
    }

    /// Did this run need any recovery at all (retries, strategy fallback,
    /// a degraded SIMD backend, or a degraded storage precision)?
    pub fn degraded(&self) -> bool {
        self.attempts > 1
            || !self.degradations.is_empty()
            || self.backend_fallback.is_some()
            || self.precision_fallback.is_some()
    }

    fn absorb(&mut self, rec: &retry::Recovery<()>) {
        self.attempts += rec.attempts;
        self.recovered_panics += rec.recovered_panics;
        self.recovered_errors += rec.recovered_errors;
    }
}

/// Next-simpler strategy in the degradation chain (`None` after
/// [`SpmmStrategy::Sequential`]). `Auto` must be resolved before walking
/// the chain.
pub fn fallback_of(s: SpmmStrategy) -> Option<SpmmStrategy> {
    match s {
        SpmmStrategy::Hybrid { threads }
        | SpmmStrategy::EdgeParallel { threads }
        | SpmmStrategy::FeatureParallel { threads } => {
            Some(SpmmStrategy::VertexParallel { threads })
        }
        SpmmStrategy::VertexParallel { .. } | SpmmStrategy::FeatureTiled { .. } => {
            Some(SpmmStrategy::Sequential)
        }
        SpmmStrategy::Sequential => None,
        SpmmStrategy::Auto => Some(SpmmStrategy::Sequential),
    }
}

/// The fault site (or rendered failure) behind a terminal attempt — the
/// string [`ExecutionReport::fault_site`] carries.
fn failure_site(last: &Failure<MatrixError>) -> String {
    match last {
        Failure::Error(MatrixError::Fault { site }) => (*site).to_string(),
        Failure::Error(e) => e.to_string(),
        Failure::Panic(p) => p.clone(),
    }
}

fn terminal_error(last: Failure<MatrixError>) -> MatrixError {
    match last {
        Failure::Error(e) => e,
        // The payload text is reported through the `Display` of the retry
        // error before we get here; the typed variant keeps the site.
        Failure::Panic(_) => MatrixError::Fault {
            site: "kernels.exec: unrecovered panic",
        },
    }
}

/// Runs `out = a * h` with bounded retry and strategy degradation,
/// returning how the result was obtained.
///
/// `strategy` is resolved (for [`SpmmStrategy::Auto`]) once up front; each
/// rung of the chain gets `policy.attempts` tries before degrading. The
/// final [`SpmmStrategy::Sequential`] rung failing is the only way this
/// returns `Err`.
///
/// # Errors
///
/// The last rung's typed error (or a [`MatrixError::Fault`] naming an
/// unrecovered panic) once the whole chain is exhausted.
pub fn run_resilient_into(
    a: &Csr,
    h: &DenseMatrix,
    strategy: SpmmStrategy,
    policy: &RetryPolicy,
    out: &mut DenseMatrix,
) -> Result<ExecutionReport, MatrixError> {
    crate::spmm::check("run_resilient_into", a, h)?;
    let mut report = ExecutionReport::new();
    let mut current = match strategy {
        SpmmStrategy::Auto => SpmmStrategy::select(a, h.cols()),
        s => s,
    };
    loop {
        let outcome = retry::run(policy, || -> Result<(), MatrixError> {
            // Typed-error injection site for the whole execution path; the
            // retry loop above recovers it like any kernel failure.
            resilience::fault_point_err!(
                "kernels.exec",
                MatrixError::Fault {
                    site: "kernels.exec",
                }
            );
            current.run_into(a, h, out)
        });
        match outcome {
            Ok(rec) => {
                report.absorb(&rec);
                report.completed_with = Some(current.to_string());
                return Ok(report);
            }
            Err(err) => {
                report.attempts += err.attempts;
                if report.fault_site.is_none() {
                    report.fault_site = Some(failure_site(&err.last));
                }
                let Some(next) = fallback_of(current) else {
                    return Err(terminal_error(err.last));
                };
                report.degradations.push(Degradation {
                    from: current.to_string(),
                    to: next.to_string(),
                    cause: err.last.to_string(),
                });
                current = next;
            }
        }
    }
}

/// Planned counterpart of [`run_resilient_into`]: tries the plan's cached
/// execution path first, then degrades through the plan's
/// strategy-equivalent chain (e.g. a planned Hybrid falls back to
/// VertexParallel, then Sequential).
///
/// # Errors
///
/// See [`run_resilient_into`].
pub fn run_planned_resilient_into(
    plan: &SpmmPlan,
    a: &Csr,
    h: &DenseMatrix,
    policy: &RetryPolicy,
    out: &mut DenseMatrix,
) -> Result<ExecutionReport, MatrixError> {
    crate::spmm::check("run_planned_resilient_into", a, h)?;
    let mut report = ExecutionReport::new();
    let outcome = retry::run(policy, || -> Result<(), MatrixError> {
        resilience::fault_point_err!(
            "kernels.plan.exec",
            MatrixError::Fault {
                site: "kernels.plan.exec",
            }
        );
        plan.run_into(a, h, out)
    });
    match outcome {
        Ok(rec) => {
            report.absorb(&rec);
            report.completed_with = Some(format!("planned {}", plan.strategy_equivalent()));
            Ok(report)
        }
        Err(err) => {
            report.attempts += err.attempts;
            report.fault_site = Some(failure_site(&err.last));
            let next = fallback_of(plan.strategy_equivalent()).unwrap_or(SpmmStrategy::Sequential);
            report.degradations.push(Degradation {
                from: format!("planned {}", plan.strategy_equivalent()),
                to: next.to_string(),
                cause: err.last.to_string(),
            });
            match run_resilient_into(a, h, next, policy, out) {
                Ok(mut tail) => {
                    tail.attempts += report.attempts;
                    tail.fault_site = report.fault_site.or(tail.fault_site);
                    tail.degradations = {
                        let mut d = report.degradations;
                        d.extend(tail.degradations);
                        d
                    };
                    Ok(tail)
                }
                Err(e) => Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience::fault::{self, FaultConfig, FaultKind};
    use sparse::Coo;

    fn small_problem() -> (Csr, DenseMatrix, DenseMatrix) {
        let n = 64;
        let mut coo = Coo::new(n, n);
        for v in 0..n {
            coo.push(v, (v * 7 + 1) % n, 1.0 + v as f32 * 0.25);
            coo.push(v, (v * 3 + 2) % n, 0.5);
        }
        let a = Csr::from_coo(&coo);
        let data = (0..n * 8).map(|i| (i % 23) as f32 * 0.125 - 1.0).collect();
        let h = DenseMatrix::from_vec(n, 8, data).unwrap();
        let expected = SpmmStrategy::Sequential.run(&a, &h).unwrap();
        (a, h, expected)
    }

    #[test]
    fn clean_run_is_not_degraded() {
        let (a, h, expected) = small_problem();
        let mut out = DenseMatrix::default();
        let report = run_resilient_into(
            &a,
            &h,
            SpmmStrategy::Hybrid { threads: 4 },
            &RetryPolicy::immediate(3),
            &mut out,
        )
        .unwrap();
        assert_eq!(report.attempts, 1);
        assert!(!report.degraded() || report.backend_fallback.is_some());
        assert!(expected.max_abs_diff(&out) < 1e-4);
        assert_eq!(report.completed_with.as_deref(), Some("hybrid x4"));
    }

    #[test]
    fn injected_errors_are_retried_and_recovered() {
        let (a, h, expected) = small_problem();
        let mut out = DenseMatrix::default();
        // Fail the first two visits deterministically? Rate 1.0 would fail
        // every attempt; instead pin a mid rate and a seed known to pass
        // within the retry budget — determinism makes this reproducible.
        let _armed = fault::arm(FaultConfig::new(11).point("kernels.exec", FaultKind::Error, 0.5));
        let report = run_resilient_into(
            &a,
            &h,
            SpmmStrategy::VertexParallel { threads: 2 },
            &RetryPolicy::immediate(8),
            &mut out,
        )
        .unwrap();
        assert!(expected.max_abs_diff(&out) < 1e-4);
        assert!(report.attempts >= 1);
        let stats = fault::stats();
        assert!(stats.sites.contains_key("kernels.exec"));
    }

    #[test]
    fn exhausted_strategy_degrades_down_the_chain() {
        let (a, h, expected) = small_problem();
        let mut out = DenseMatrix::default();
        // Error every attempt: each rung exhausts its retries and falls
        // back; the chain must bottom out at Sequential... which also
        // fails, so arm only long enough to kill the first rung? No —
        // deterministic alternative: fail only the *parallel* path by
        // injecting errors at the engine site while the retry budget is 1,
        // and watch the chain walk Hybrid → VertexParallel → Sequential.
        // With the site firing on every visit the terminal error must come
        // back typed.
        let _armed = fault::arm(FaultConfig::new(2).point("kernels.exec", FaultKind::Error, 1.0));
        let err = run_resilient_into(
            &a,
            &h,
            SpmmStrategy::Hybrid { threads: 4 },
            &RetryPolicy::immediate(2),
            &mut out,
        )
        .unwrap_err();
        assert_eq!(
            err,
            MatrixError::Fault {
                site: "kernels.exec"
            }
        );
        drop(_armed);
        // Disarmed, the same call succeeds and reports a clean first try.
        let report = run_resilient_into(
            &a,
            &h,
            SpmmStrategy::Hybrid { threads: 4 },
            &RetryPolicy::immediate(2),
            &mut out,
        )
        .unwrap();
        assert_eq!(report.attempts, 1);
        assert!(expected.max_abs_diff(&out) < 1e-4);
    }

    #[test]
    fn degradation_chain_is_recorded() {
        let (a, h, expected) = small_problem();
        let mut out = DenseMatrix::default();
        // Fail only the hybrid rung: the site fires for the first
        // `attempts` visits then the fallback rung runs clean. Pin the
        // rate to 1.0 and disarm after the first rung by scoping the guard
        // is racy — instead inject errors at a rate of 1.0 but give the
        // chain a bigger budget than the armed visits... simplest reliable
        // setup: arm, run with attempts=1 per rung, observe the terminal
        // typed error and the recorded degradations.
        let _armed = fault::arm(FaultConfig::new(4).point("kernels.exec", FaultKind::Error, 1.0));
        let err = run_resilient_into(
            &a,
            &h,
            SpmmStrategy::Hybrid { threads: 2 },
            &RetryPolicy::immediate(1),
            &mut out,
        );
        drop(_armed);
        let err = err.unwrap_err();
        assert!(matches!(err, MatrixError::Fault { .. }));
        // And with partial failure (fallback succeeds), the report lists
        // the taken fallbacks. The decision hash keys on (seed, site,
        // visit), so probe the real site name: we need a stream that fires
        // on visit 0 (hybrid rung fails, one attempt per rung) and passes
        // on visit 1 or 2 (a fallback rung succeeds).
        let seed = (0..256u64)
            .find(|&s| {
                let _g =
                    fault::arm(FaultConfig::new(s).point("kernels.exec", FaultKind::Error, 0.5));
                let first = fault::should_fail("kernels.exec");
                let second = fault::should_fail("kernels.exec");
                let third = fault::should_fail("kernels.exec");
                first && (!second || !third)
            })
            .expect("some seed fires on visit 0 and passes within the chain");
        let _armed =
            fault::arm(FaultConfig::new(seed).point("kernels.exec", FaultKind::Error, 0.5));
        let report = run_resilient_into(
            &a,
            &h,
            SpmmStrategy::Hybrid { threads: 2 },
            &RetryPolicy::immediate(1),
            &mut out,
        )
        .unwrap();
        assert!(!report.degradations.is_empty());
        assert_eq!(report.degradations[0].from, "hybrid x2");
        assert_eq!(report.degradations[0].to, "vertex-parallel x2");
        assert_eq!(
            report.fault_site.as_deref(),
            Some("kernels.exec"),
            "the report names the originating fault site"
        );
        assert_eq!(report.shard, None, "kernels never attributes a shard");
        assert!(expected.max_abs_diff(&out) < 1e-4);
    }

    #[test]
    fn planned_run_degrades_to_strategy_chain() {
        let (a, h, expected) = small_problem();
        let plan = SpmmPlan::new(&a, h.cols());
        let mut out = DenseMatrix::default();
        let report =
            run_planned_resilient_into(&plan, &a, &h, &RetryPolicy::immediate(2), &mut out)
                .unwrap();
        assert!(expected.max_abs_diff(&out) < 1e-4);
        assert!(report.completed_with.is_some());
        // Now fail the planned path outright; the strategy chain takes over.
        let _armed =
            fault::arm(FaultConfig::new(8).point("kernels.plan.exec", FaultKind::Error, 1.0));
        let report =
            run_planned_resilient_into(&plan, &a, &h, &RetryPolicy::immediate(2), &mut out)
                .unwrap();
        assert!(!report.degradations.is_empty(), "plan failure not recorded");
        assert!(report.degradations[0].from.starts_with("planned"));
        assert_eq!(report.fault_site.as_deref(), Some("kernels.plan.exec"));
        assert!(expected.max_abs_diff(&out) < 1e-4);
    }
}
