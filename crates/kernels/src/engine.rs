//! Strategy selection for SpMM execution.
//!
//! # Automatic selection
//!
//! [`SpmmStrategy::Auto`] inspects the operands at run time and picks a
//! fixed strategy via [`SpmmStrategy::select`]:
//!
//! 1. Tiny problems (`nnz * K` below a crossover) or a single-slot pool →
//!    [`SpmmStrategy::Sequential`] — fan-out overhead would dominate.
//! 2. Skewed degree distributions (coefficient of variation above
//!    [`AUTO_SKEW_CV`]) → [`SpmmStrategy::Hybrid`] — hub rows are
//!    edge-split, the tail stays atomics-free.
//! 3. Wide embeddings (`K` at least [`AUTO_WIDE_K`] and several columns per
//!    pool slot) → [`SpmmStrategy::FeatureParallel`] — disjoint column
//!    tiles amortize the shared CSR reads.
//! 4. Otherwise → [`SpmmStrategy::VertexParallel`], the paper's CPU
//!    winner (Section V-A).
//!
//! [`SpmmStrategy::EdgeParallel`] is never auto-selected: its per-element
//! atomic adds only pay off on hardware with cheap remote atomics (PIUMA),
//! not on the CPUs this crate targets. It remains available as an explicit
//! choice for measuring exactly that gap.
//!
//! Whichever strategy is selected, the inner feature accumulation — and,
//! in a planned layer, the dense `H * W` transform — runs on the SIMD
//! micro-kernel dispatch ([`matrix::microkernel::KernelDispatch`]);
//! [`crate::plan::SpmmPlan`] captures that dispatch at plan time so
//! strategy resolution and backend selection happen together, once.

use matrix::{DenseMatrix, MatrixError};
use sparse::{Csr, DegreeStats};

/// Below this many scalar multiply-adds (`nnz * K`), [`SpmmStrategy::Auto`]
/// stays sequential: a broadcast costs on the order of microseconds, which
/// small problems cannot recoup.
pub const AUTO_SEQUENTIAL_WORK: usize = 1 << 14;

/// Degree coefficient-of-variation above which [`SpmmStrategy::Auto`]
/// treats the graph as skewed and routes to the hybrid kernel.
pub const AUTO_SKEW_CV: f64 = 1.5;

/// Minimum embedding width for [`SpmmStrategy::Auto`] to consider the
/// feature-parallel kernel.
pub const AUTO_WIDE_K: usize = 256;

/// Which SpMM algorithm to run, and with how many threads.
///
/// # Examples
///
/// ```
/// use kernels::SpmmStrategy;
/// use sparse::{Coo, Csr};
/// use matrix::DenseMatrix;
///
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 1, 1.0);
/// let a = Csr::from_coo(&coo);
/// let h = DenseMatrix::identity(2);
/// let out = SpmmStrategy::Sequential.run(&a, &h).unwrap();
/// assert_eq!(out.row(0), &[0.0, 1.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpmmStrategy {
    /// Single-threaded reference (Algorithm 1).
    Sequential,
    /// Vertex-parallel with dynamic load balancing across `threads` workers.
    VertexParallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// Edge-parallel (Algorithm 2) across `threads` workers.
    EdgeParallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// Sequential cache-blocked kernel processing `tile` feature columns
    /// per pass (0 means the default tile width).
    FeatureTiled {
        /// Feature-tile width in columns; `0` selects the default.
        tile: usize,
    },
    /// Feature-parallel: each worker owns a disjoint K-tile of the output.
    FeatureParallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// Degree-aware hybrid: hub rows edge-split across workers, tail rows
    /// processed as atomics-free vertex chunks.
    Hybrid {
        /// Number of worker threads.
        threads: usize,
    },
    /// Pick a fixed strategy per call from the operands (see module docs).
    Auto,
}

impl SpmmStrategy {
    /// Runs the selected algorithm: `out = a * h`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying kernel's shape/thread-count errors.
    pub fn run(self, a: &Csr, h: &DenseMatrix) -> Result<DenseMatrix, MatrixError> {
        let mut out = DenseMatrix::default();
        self.run_into(a, h, &mut out)?;
        Ok(out)
    }

    /// Runs the selected algorithm into a caller-owned output matrix,
    /// reshaping it with [`DenseMatrix::resize_zeroed`]. At capacity no
    /// output-sized allocation occurs, which is what lets a model reuse
    /// ping-pong activation buffers across layers and calls.
    ///
    /// # Errors
    ///
    /// Propagates the underlying kernel's shape/thread-count errors.
    // lint:allow(L004): pure dispatch — every kernel this match arms into
    // performs its own dimension check before touching data.
    pub fn run_into(
        self,
        a: &Csr,
        h: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), MatrixError> {
        match self {
            SpmmStrategy::Sequential => crate::spmm::spmm_sequential_into(a, h, out),
            SpmmStrategy::VertexParallel { threads } => {
                crate::spmm::spmm_vertex_parallel_into(a, h, threads, out)
            }
            SpmmStrategy::EdgeParallel { threads } => {
                crate::spmm::spmm_edge_parallel_into(a, h, threads, out)
            }
            SpmmStrategy::FeatureTiled { tile } => {
                crate::tiled::spmm_feature_tiled_into(a, h, tile, out)
            }
            SpmmStrategy::FeatureParallel { threads } => {
                crate::tiled::spmm_feature_parallel_into(a, h, threads, out)
            }
            SpmmStrategy::Hybrid { threads } => crate::hybrid::spmm_hybrid_into(a, h, threads, out),
            SpmmStrategy::Auto => Self::select(a, h.cols()).run_into(a, h, out),
        }
    }

    /// Resolves [`SpmmStrategy::Auto`] for the given operands; fixed
    /// strategies return themselves. The heuristic is documented in the
    /// module docs and in `EXPERIMENTS.md`.
    ///
    /// This is the *planless* fallback: it re-derives [`DegreeStats`] (an
    /// `O(n)` scan) on every call. Repeated SpMM against one adjacency
    /// should build an [`crate::plan::SpmmPlan`] instead, which caches the
    /// statistics and the resolved path.
    pub fn select(a: &Csr, k: usize) -> SpmmStrategy {
        let width = pool::global().width();
        let (n, nnz) = (a.nrows(), a.nnz());
        if n == 0 || nnz == 0 || k == 0 || width <= 1 {
            return SpmmStrategy::Sequential;
        }
        if nnz.saturating_mul(k) < AUTO_SEQUENTIAL_WORK {
            return SpmmStrategy::Sequential;
        }
        // O(n) degree scan — negligible next to the O(nnz * K) kernel, but
        // still worth caching across calls (see `SpmmPlan`).
        Self::select_with_stats(&DegreeStats::of(a), nnz, k, width)
    }

    /// [`SpmmStrategy::select`] with the degree statistics supplied by the
    /// caller — the `O(1)` decision shared by the planless path (which
    /// computes `stats` fresh) and [`crate::plan::SpmmPlan`] (which caches
    /// them once per graph).
    pub fn select_with_stats(
        stats: &DegreeStats,
        nnz: usize,
        k: usize,
        width: usize,
    ) -> SpmmStrategy {
        if stats.vertices == 0 || nnz == 0 || k == 0 || width <= 1 {
            return SpmmStrategy::Sequential;
        }
        if nnz.saturating_mul(k) < AUTO_SEQUENTIAL_WORK {
            return SpmmStrategy::Sequential;
        }
        if stats.cv > AUTO_SKEW_CV {
            return SpmmStrategy::Hybrid { threads: width };
        }
        if k >= AUTO_WIDE_K && k >= 4 * width {
            return SpmmStrategy::FeatureParallel { threads: width };
        }
        SpmmStrategy::VertexParallel { threads: width }
    }

    /// Thread count this strategy will use (`Auto` reports the pool width
    /// it will hand to whichever kernel it selects).
    pub fn threads(self) -> usize {
        match self {
            SpmmStrategy::Sequential | SpmmStrategy::FeatureTiled { .. } => 1,
            SpmmStrategy::VertexParallel { threads }
            | SpmmStrategy::EdgeParallel { threads }
            | SpmmStrategy::FeatureParallel { threads }
            | SpmmStrategy::Hybrid { threads } => threads,
            SpmmStrategy::Auto => pool::global().width(),
        }
    }
}

/// Builds an [`SpmmPlan`] for repeated SpMM against `a` with feature
/// width `k`: degree statistics, the NNZ-balanced row partition, and the
/// execution path are all computed once, here, instead of per call.
pub fn plan(a: &Csr, k: usize) -> crate::plan::SpmmPlan {
    crate::plan::SpmmPlan::new(a, k)
}

/// [`plan`] at a narrow storage precision: probes the requested precision
/// against the captured micro-kernel dispatch at plan time, downgrading
/// along [`matrix::Precision::fallback`] if the ISA probe fails (the plan
/// records the downgrade). The planned layer then runs its SpMM feature
/// loops and packed GEMM panels on narrow storage with `f32` accumulation.
pub fn plan_with_precision(
    a: &Csr,
    k: usize,
    precision: matrix::Precision,
) -> crate::plan::SpmmPlan {
    crate::plan::SpmmPlan::with_precision(a, k, precision)
}

/// Runs `out = a * h` along a precomputed plan — the planned counterpart
/// of [`SpmmStrategy::run_into`].
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if the operands disagree
/// with the plan's shapes.
// lint:allow(L004): pure dispatch — SpmmPlan::run_into opens with
// check_plan before selecting a kernel.
pub fn run_planned_into(
    plan: &crate::plan::SpmmPlan,
    a: &Csr,
    h: &DenseMatrix,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    plan.run_into(a, h, out)
}

impl Default for SpmmStrategy {
    fn default() -> Self {
        SpmmStrategy::VertexParallel {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl std::fmt::Display for SpmmStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpmmStrategy::Sequential => write!(f, "sequential"),
            SpmmStrategy::VertexParallel { threads } => write!(f, "vertex-parallel x{threads}"),
            SpmmStrategy::EdgeParallel { threads } => write!(f, "edge-parallel x{threads}"),
            SpmmStrategy::FeatureTiled { tile } => write!(f, "feature-tiled t{tile}"),
            SpmmStrategy::FeatureParallel { threads } => write!(f, "feature-parallel x{threads}"),
            SpmmStrategy::Hybrid { threads } => write!(f, "hybrid x{threads}"),
            SpmmStrategy::Auto => write!(f, "auto"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::Coo;

    #[test]
    fn all_strategies_agree() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 0, 3.0);
        let a = Csr::from_coo(&coo);
        let h = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let expected = SpmmStrategy::Sequential.run(&a, &h).unwrap();
        for strategy in [
            SpmmStrategy::VertexParallel { threads: 3 },
            SpmmStrategy::EdgeParallel { threads: 3 },
            SpmmStrategy::FeatureTiled { tile: 1 },
            SpmmStrategy::FeatureParallel { threads: 2 },
            SpmmStrategy::Hybrid { threads: 3 },
            SpmmStrategy::Auto,
        ] {
            assert_eq!(strategy.run(&a, &h).unwrap(), expected, "{strategy}");
        }
    }

    #[test]
    fn default_uses_available_parallelism() {
        assert!(SpmmStrategy::default().threads() >= 1);
    }

    #[test]
    fn display_includes_thread_count() {
        assert_eq!(
            SpmmStrategy::EdgeParallel { threads: 8 }.to_string(),
            "edge-parallel x8"
        );
        assert_eq!(
            SpmmStrategy::FeatureParallel { threads: 4 }.to_string(),
            "feature-parallel x4"
        );
        assert_eq!(SpmmStrategy::Hybrid { threads: 2 }.to_string(), "hybrid x2");
        assert_eq!(SpmmStrategy::Auto.to_string(), "auto");
    }

    #[test]
    fn select_goes_sequential_for_tiny_work() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        let a = Csr::from_coo(&coo);
        assert_eq!(SpmmStrategy::select(&a, 8), SpmmStrategy::Sequential);
        assert_eq!(SpmmStrategy::select(&a, 0), SpmmStrategy::Sequential);
    }

    #[test]
    fn select_never_picks_edge_parallel() {
        // Across a spread of shapes, Auto avoids the atomics-heavy kernel
        // (paper: it only wins with hardware-cheap remote atomics).
        let mut rng = StdRng::seed_from_u64(7);
        for n in [64usize, 512, 2048] {
            let mut coo = Coo::new(n, n);
            for _ in 0..n * 8 {
                coo.push(rng.gen_range(0..n), rng.gen_range(0..n), 1.0);
            }
            let a = Csr::from_coo(&coo);
            for k in [1usize, 16, 300, 1024] {
                let picked = SpmmStrategy::select(&a, k);
                assert!(
                    !matches!(
                        picked,
                        SpmmStrategy::EdgeParallel { .. } | SpmmStrategy::Auto
                    ),
                    "n={n} k={k} picked {picked}"
                );
            }
        }
    }

    #[test]
    fn select_routes_skewed_graphs_to_hybrid_when_pool_is_parallel() {
        // Star graph: cv is ~sqrt(n), far above any threshold.
        let n = 2048;
        let mut coo = Coo::new(n, n);
        for v in 1..n {
            coo.push(0, v, 1.0);
        }
        let a = Csr::from_coo(&coo);
        let picked = SpmmStrategy::select(&a, 64);
        if pool::global().width() > 1 {
            assert!(
                matches!(picked, SpmmStrategy::Hybrid { .. }),
                "expected hybrid for star graph, got {picked}"
            );
        } else {
            assert_eq!(picked, SpmmStrategy::Sequential);
        }
    }

    #[test]
    fn run_into_reuses_buffers_across_strategies() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 96;
        let mut coo = Coo::new(n, n);
        for _ in 0..n * 6 {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            );
        }
        let a = Csr::from_coo(&coo);
        let data = (0..n * 11).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let h = DenseMatrix::from_vec(n, 11, data).unwrap();
        let expected = SpmmStrategy::Sequential.run(&a, &h).unwrap();
        let mut buf = DenseMatrix::filled(n * 2, 13, f32::NAN);
        for strategy in [
            SpmmStrategy::VertexParallel { threads: 4 },
            SpmmStrategy::EdgeParallel { threads: 4 },
            SpmmStrategy::FeatureTiled { tile: 4 },
            SpmmStrategy::FeatureParallel { threads: 4 },
            SpmmStrategy::Hybrid { threads: 4 },
            SpmmStrategy::Auto,
        ] {
            strategy.run_into(&a, &h, &mut buf).unwrap();
            assert!(
                expected.max_abs_diff(&buf) < 1e-4,
                "{strategy} left stale or wrong values"
            );
        }
    }
}
