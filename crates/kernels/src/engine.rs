//! Strategy selection for SpMM execution.

use matrix::{DenseMatrix, MatrixError};
use sparse::Csr;

/// Which SpMM algorithm to run, and with how many threads.
///
/// # Examples
///
/// ```
/// use kernels::SpmmStrategy;
/// use sparse::{Coo, Csr};
/// use matrix::DenseMatrix;
///
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 1, 1.0);
/// let a = Csr::from_coo(&coo);
/// let h = DenseMatrix::identity(2);
/// let out = SpmmStrategy::Sequential.run(&a, &h).unwrap();
/// assert_eq!(out.row(0), &[0.0, 1.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpmmStrategy {
    /// Single-threaded reference (Algorithm 1).
    Sequential,
    /// Vertex-parallel with dynamic load balancing across `threads` workers.
    VertexParallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// Edge-parallel (Algorithm 2) across `threads` workers.
    EdgeParallel {
        /// Number of worker threads.
        threads: usize,
    },
}

impl SpmmStrategy {
    /// Runs the selected algorithm: `out = a * h`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying kernel's shape/thread-count errors.
    pub fn run(self, a: &Csr, h: &DenseMatrix) -> Result<DenseMatrix, MatrixError> {
        match self {
            SpmmStrategy::Sequential => crate::spmm::spmm_sequential(a, h),
            SpmmStrategy::VertexParallel { threads } => {
                crate::spmm::spmm_vertex_parallel(a, h, threads)
            }
            SpmmStrategy::EdgeParallel { threads } => {
                crate::spmm::spmm_edge_parallel(a, h, threads)
            }
        }
    }

    /// Thread count this strategy will use.
    pub fn threads(self) -> usize {
        match self {
            SpmmStrategy::Sequential => 1,
            SpmmStrategy::VertexParallel { threads } | SpmmStrategy::EdgeParallel { threads } => {
                threads
            }
        }
    }
}

impl Default for SpmmStrategy {
    fn default() -> Self {
        SpmmStrategy::VertexParallel {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl std::fmt::Display for SpmmStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpmmStrategy::Sequential => write!(f, "sequential"),
            SpmmStrategy::VertexParallel { threads } => write!(f, "vertex-parallel x{threads}"),
            SpmmStrategy::EdgeParallel { threads } => write!(f, "edge-parallel x{threads}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Coo;

    #[test]
    fn all_strategies_agree() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 0, 3.0);
        let a = Csr::from_coo(&coo);
        let h = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let expected = SpmmStrategy::Sequential.run(&a, &h).unwrap();
        for strategy in [
            SpmmStrategy::VertexParallel { threads: 3 },
            SpmmStrategy::EdgeParallel { threads: 3 },
        ] {
            assert_eq!(strategy.run(&a, &h).unwrap(), expected, "{strategy}");
        }
    }

    #[test]
    fn default_uses_available_parallelism() {
        assert!(SpmmStrategy::default().threads() >= 1);
    }

    #[test]
    fn display_includes_thread_count() {
        let s = SpmmStrategy::EdgeParallel { threads: 8 };
        assert_eq!(s.to_string(), "edge-parallel x8");
    }
}
