//! Executable SpMM kernels and the fused GCN layer.
//!
//! Section II-C of the paper describes two parallelization strategies for
//! SpMM — *vertex-parallel* (rows of the output distributed across threads)
//! and *edge-parallel* (non-zeros distributed across threads, Algorithm 2) —
//! and Section V-A notes that on CPUs the vertex-parallel variant with
//! dynamic load balancing wins because atomics are expensive, while PIUMA's
//! cheap remote atomics favour edge-parallel. This crate implements both so
//! the trade-off can be measured on real hardware:
//!
//! * [`spmm::spmm_sequential`] — single-threaded reference,
//! * [`spmm::spmm_vertex_parallel`] — work-stealing row chunks, no atomics,
//! * [`spmm::spmm_edge_parallel`] — equal edge shares, binary search for the
//!   starting row, atomic accumulation into shared output (Algorithm 2),
//! * [`tiled::spmm_feature_tiled`] / [`tiled::spmm_feature_parallel`] —
//!   cache blocking and worker-owned tiles over the feature dimension,
//! * [`hybrid::spmm_hybrid`] — degree-aware hub/tail split for power-law
//!   graphs,
//! * [`fused::gcn_layer_fused`] — aggregation + update + activation in one
//!   call, the building block `gcn` uses,
//! * [`plan::SpmmPlan`] — a precomputed execution plan (NNZ-balanced row
//!   partition, cached degree statistics, resolved strategy, column-tile
//!   schedule) amortizing per-call analysis across layers and epochs.
//!
//! All parallel kernels execute on the process-wide persistent thread pool
//! re-exported as [`pool`] (spawned once on first use, then reused — see
//! the pool crate's docs for the spawn-once contract). Every kernel also
//! has a `*_into` variant writing into a caller-owned [`matrix::DenseMatrix`]
//! so steady-state inference performs no output-sized allocations.
//!
//! The per-non-zero feature accumulation of every row-oriented kernel runs
//! through the SIMD micro-kernel layer
//! ([`matrix::microkernel::KernelDispatch`]) as a widened AXPY over the
//! feature panel — the same runtime-dispatched backend (AVX2+FMA where
//! detected, autovectorized portable otherwise) that powers the packed
//! dense GEMM, so both pillars of a GCN layer share one SIMD path.
//!
//! # Examples
//!
//! ```
//! use sparse::{Coo, Csr};
//! use matrix::DenseMatrix;
//! use kernels::spmm::{spmm_sequential, spmm_vertex_parallel};
//!
//! let mut coo = Coo::new(2, 2);
//! coo.push(0, 1, 2.0);
//! let a = Csr::from_coo(&coo);
//! let h = DenseMatrix::from_rows(&[&[1.0, 1.0], &[3.0, 4.0]]).unwrap();
//! let seq = spmm_sequential(&a, &h).unwrap();
//! let par = spmm_vertex_parallel(&a, &h, 4).unwrap();
//! assert_eq!(seq, par);
//! assert_eq!(seq.row(0), &[6.0, 8.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy-dispatch entry points ([`SpmmStrategy`]).
pub mod engine;
/// Fused aggregate+transform GCN layer kernels.
pub mod fused;
/// Row-split hybrid SpMM (dense rows dense-accumulated, sparse rows gathered).
pub mod hybrid;
/// NNZ-balanced execution plans ([`SpmmPlan`]) built once, run many times.
pub mod plan;
/// Retry + strategy-degradation wrappers ([`ExecutionReport`]).
pub mod resilient;
/// Baseline sequential and parallel CSR SpMM kernels.
pub mod spmm;
/// Cache-blocked (tiled) SpMM over column strips.
pub mod tiled;

pub use engine::SpmmStrategy;
pub use plan::SpmmPlan;
pub use pool;
pub use resilience;
pub use resilient::{run_resilient_into, ExecutionReport};
