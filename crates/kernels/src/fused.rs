//! A fused GCN layer: aggregation + dense update + activation.
//!
//! A GCN layer is `H' = sigma(A_hat * H * W + b)`. Because `K_in` usually
//! differs from `K_out`, the cheaper association is computed first:
//! aggregate-then-update when `K_in <= K_out`, update-then-aggregate
//! otherwise — the standard trick also used by PyTorch-Geometric. Both
//! orders are mathematically identical (`(A H) W = A (H W)`), and a test
//! pins that down.

use crate::engine::SpmmStrategy;
use crate::plan::SpmmPlan;
use matrix::microkernel::matmul_packed_prec_with;
use matrix::{gemm, Activation, DenseMatrix, MatrixError, Precision, QuantMatrix};
use sparse::Csr;

/// Which association order the fused layer used (exposed for tests and for
/// the timing models, which cost the two orders differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedOrder {
    /// Computed `(A * H) * W` — aggregation first.
    AggregateFirst,
    /// Computed `A * (H * W)` — update first.
    UpdateFirst,
}

/// Runs one fused GCN layer and reports the association order chosen.
///
/// # Errors
///
/// Propagates shape mismatches from the SpMM / GEMM kernels.
///
/// # Examples
///
/// ```
/// use kernels::fused::gcn_layer_fused;
/// use kernels::SpmmStrategy;
/// use matrix::{Activation, DenseMatrix};
/// use sparse::{Coo, Csr};
///
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(1, 1, 1.0);
/// let a = Csr::from_coo(&coo);
/// let h = DenseMatrix::from_rows(&[&[1.0, -1.0], &[2.0, 3.0]]).unwrap();
/// let w = DenseMatrix::identity(2);
/// let (out, _) = gcn_layer_fused(
///     &a, &h, &w, None, Activation::Relu, SpmmStrategy::Sequential,
/// ).unwrap();
/// assert_eq!(out.row(0), &[1.0, 0.0]); // ReLU clamped the -1
/// ```
pub fn gcn_layer_fused(
    a: &Csr,
    h: &DenseMatrix,
    w: &DenseMatrix,
    bias: Option<&[f32]>,
    activation: Activation,
    strategy: SpmmStrategy,
) -> Result<(DenseMatrix, FusedOrder), MatrixError> {
    let mut mid = DenseMatrix::default();
    let mut out = DenseMatrix::default();
    let order = gcn_layer_fused_into(a, h, w, bias, activation, strategy, &mut mid, &mut out)?;
    Ok((out, order))
}

/// [`gcn_layer_fused`] writing into caller-owned buffers: `mid` holds the
/// intermediate product (aggregation or update, depending on the chosen
/// order) and `out` receives the layer output. Both are reshaped with
/// [`DenseMatrix::resize_zeroed`], so a model looping over layers with two
/// ping-pong activation buffers plus one `mid` buffer performs no
/// output-sized allocation in steady state.
///
/// # Errors
///
/// Propagates shape mismatches from the SpMM / GEMM kernels.
#[allow(clippy::too_many_arguments)]
// lint:allow(L004): composite layer driver, not a kernel — every
// dispatched sub-kernel (SpMM strategy, GEMM, bias add) runs its own
// dimension check on entry before touching data.
pub fn gcn_layer_fused_into(
    a: &Csr,
    h: &DenseMatrix,
    w: &DenseMatrix,
    bias: Option<&[f32]>,
    activation: Activation,
    strategy: SpmmStrategy,
    mid: &mut DenseMatrix,
    out: &mut DenseMatrix,
) -> Result<FusedOrder, MatrixError> {
    let k_in = w.rows();
    let k_out = w.cols();
    let threads = strategy.threads();

    let order = if k_in <= k_out {
        // Aggregate in the narrow dimension first.
        strategy.run_into(a, h, mid)?;
        gemm::matmul_parallel_into(mid, w, threads, out)?;
        FusedOrder::AggregateFirst
    } else {
        gemm::matmul_parallel_into(h, w, threads, mid)?;
        strategy.run_into(a, mid, out)?;
        FusedOrder::UpdateFirst
    };

    if let Some(b) = bias {
        out.add_row_bias(b)?;
    }
    out.apply_activation(activation);
    Ok(order)
}

/// [`gcn_layer_fused_into`] running the aggregation along a precomputed
/// [`SpmmPlan`] instead of a per-call strategy: the degree scan, partition,
/// and strategy selection were all paid once at plan time. The dense update
/// uses the pool's full width and runs the packed register-tiled GEMM on
/// the plan's cached [`matrix::microkernel::KernelDispatch`]
/// ([`SpmmPlan::dense_kernel`]), so plan resolution fixes the SIMD path for
/// both pillars of the layer.
///
/// # Errors
///
/// Propagates shape mismatches from the SpMM / GEMM kernels (including a
/// plan built for a different adjacency).
#[allow(clippy::too_many_arguments)]
// lint:allow(L004): composite layer driver, not a kernel — the plan's
// check_plan plus each sub-kernel's own check validate all shapes.
pub fn gcn_layer_planned_into(
    a: &Csr,
    h: &DenseMatrix,
    w: &DenseMatrix,
    bias: Option<&[f32]>,
    activation: Activation,
    plan: &SpmmPlan,
    mid: &mut DenseMatrix,
    out: &mut DenseMatrix,
) -> Result<FusedOrder, MatrixError> {
    let k_in = w.rows();
    let k_out = w.cols();
    let threads = pool::global().width();
    let kd = plan.dense_kernel();

    let order = if k_in <= k_out {
        plan.run_into(a, h, mid)?;
        matrix::microkernel::matmul_packed_with(kd, mid, w, threads, out)?;
        FusedOrder::AggregateFirst
    } else {
        matrix::microkernel::matmul_packed_with(kd, h, w, threads, mid)?;
        plan.run_into(a, mid, out)?;
        FusedOrder::UpdateFirst
    };

    if let Some(b) = bias {
        out.add_row_bias(b)?;
    }
    out.apply_activation(activation);
    Ok(order)
}

/// [`gcn_layer_planned_into`] at the plan's storage precision: the layer's
/// SpMM feature operand is encoded into `qbuf` at
/// [`SpmmPlan::precision`] (bf16 / f16 / int8) and read through the
/// quantized row loops, and the dense transform runs the narrow-storage
/// packed GEMM — all accumulation stays `f32`, only storage narrows.
/// A plan at [`Precision::F32`] delegates to the full-precision layer and
/// leaves `qbuf` untouched.
///
/// # Errors
///
/// Propagates shape mismatches from the SpMM / GEMM kernels (including a
/// plan built for a different adjacency).
#[allow(clippy::too_many_arguments)]
// lint:allow(L004): composite layer driver, not a kernel — the plan's
// check_plan plus each sub-kernel's own check validate all shapes.
pub fn gcn_layer_planned_prec_into(
    a: &Csr,
    h: &DenseMatrix,
    w: &DenseMatrix,
    bias: Option<&[f32]>,
    activation: Activation,
    plan: &SpmmPlan,
    qbuf: &mut QuantMatrix,
    mid: &mut DenseMatrix,
    out: &mut DenseMatrix,
) -> Result<FusedOrder, MatrixError> {
    let precision = plan.precision();
    if precision == Precision::F32 {
        return gcn_layer_planned_into(a, h, w, bias, activation, plan, mid, out);
    }
    let k_in = w.rows();
    let k_out = w.cols();
    let threads = pool::global().width();
    let kd = plan.dense_kernel();

    let order = if k_in <= k_out {
        // Aggregate in the narrow dimension first: quantize the incoming
        // activations once, aggregate from narrow storage, then run the
        // narrow-panel packed GEMM on the f32 aggregate.
        qbuf.encode(h, precision)?;
        plan.run_quant_into(a, qbuf, mid)?;
        matmul_packed_prec_with(kd, precision, mid, w, threads, out)?;
        FusedOrder::AggregateFirst
    } else {
        matmul_packed_prec_with(kd, precision, h, w, threads, mid)?;
        qbuf.encode(mid, precision)?;
        plan.run_quant_into(a, qbuf, out)?;
        FusedOrder::UpdateFirst
    };

    if let Some(b) = bias {
        out.add_row_bias(b)?;
    }
    out.apply_activation(activation);
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::Coo;

    fn random_setup(
        n: usize,
        k_in: usize,
        k_out: usize,
        seed: u64,
    ) -> (Csr, DenseMatrix, DenseMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..n * 4 {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-0.5..0.5),
            );
        }
        let a = Csr::from_coo(&coo);
        let h_data = (0..n * k_in).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let h = DenseMatrix::from_vec(n, k_in, h_data).unwrap();
        let w_data = (0..k_in * k_out)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let w = DenseMatrix::from_vec(k_in, k_out, w_data).unwrap();
        (a, h, w)
    }

    #[test]
    fn both_association_orders_agree() {
        let (a, h, w_wide) = random_setup(50, 8, 32, 1);
        // Wide W -> aggregate first; narrow W -> update first. Compare both
        // against the unfused reference.
        let (fused, order) = gcn_layer_fused(
            &a,
            &h,
            &w_wide,
            None,
            Activation::Identity,
            SpmmStrategy::Sequential,
        )
        .unwrap();
        assert_eq!(order, FusedOrder::AggregateFirst);
        let reference = crate::spmm::spmm_sequential(&a, &h)
            .unwrap()
            .matmul(&w_wide)
            .unwrap();
        assert!(fused.max_abs_diff(&reference) < 1e-3);

        let (a2, h2, w_narrow) = random_setup(50, 32, 8, 2);
        let (fused2, order2) = gcn_layer_fused(
            &a2,
            &h2,
            &w_narrow,
            None,
            Activation::Identity,
            SpmmStrategy::Sequential,
        )
        .unwrap();
        assert_eq!(order2, FusedOrder::UpdateFirst);
        let reference2 = crate::spmm::spmm_sequential(&a2, &h2)
            .unwrap()
            .matmul(&w_narrow)
            .unwrap();
        assert!(fused2.max_abs_diff(&reference2) < 1e-3);
    }

    #[test]
    fn bias_and_activation_are_applied_last() {
        let (a, h, w) = random_setup(20, 4, 4, 3);
        let bias = vec![10.0; 4];
        let (out, _) = gcn_layer_fused(
            &a,
            &h,
            &w,
            Some(&bias),
            Activation::Relu,
            SpmmStrategy::Sequential,
        )
        .unwrap();
        // With a +10 bias and small weights everything should be positive,
        // so ReLU is the identity here and all entries exceed 5.
        assert!(out.as_slice().iter().all(|&x| x > 5.0));
    }

    #[test]
    fn parallel_strategies_match_sequential_fused() {
        let (a, h, w) = random_setup(80, 16, 16, 4);
        let (reference, _) =
            gcn_layer_fused(&a, &h, &w, None, Activation::Relu, SpmmStrategy::Sequential).unwrap();
        for strategy in [
            SpmmStrategy::VertexParallel { threads: 4 },
            SpmmStrategy::EdgeParallel { threads: 4 },
            SpmmStrategy::FeatureParallel { threads: 4 },
            SpmmStrategy::Hybrid { threads: 4 },
            SpmmStrategy::Auto,
        ] {
            let (got, _) = gcn_layer_fused(&a, &h, &w, None, Activation::Relu, strategy).unwrap();
            assert!(reference.max_abs_diff(&got) < 1e-3, "{strategy}");
        }
    }

    #[test]
    fn fused_into_reuses_buffers_without_stale_values() {
        let (a, h, w) = random_setup(40, 12, 6, 5);
        let (reference, _) =
            gcn_layer_fused(&a, &h, &w, None, Activation::Relu, SpmmStrategy::Sequential).unwrap();
        // Oversized, NaN-poisoned buffers: a reshape that fails to clear
        // stale values would surface immediately.
        let mut mid = DenseMatrix::filled(60, 20, f32::NAN);
        let mut out = DenseMatrix::filled(60, 20, f32::NAN);
        for _ in 0..2 {
            let order = gcn_layer_fused_into(
                &a,
                &h,
                &w,
                None,
                Activation::Relu,
                SpmmStrategy::VertexParallel { threads: 4 },
                &mut mid,
                &mut out,
            )
            .unwrap();
            assert_eq!(order, FusedOrder::UpdateFirst);
            assert!(reference.max_abs_diff(&out) < 1e-3);
        }
    }

    /// `||x - y||_F / ||y||_F` over two same-shaped matrices.
    fn rel_frob(x: &DenseMatrix, y: &DenseMatrix) -> f32 {
        let mut d = 0.0f64;
        let mut n = 0.0f64;
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            d += ((a - b) as f64).powi(2);
            n += (*b as f64).powi(2);
        }
        (d.sqrt() / n.sqrt()) as f32
    }

    #[test]
    fn planned_prec_layer_tracks_f32_in_both_orders() {
        // (k_in <= k_out) drives AggregateFirst, the reverse UpdateFirst;
        // both must pick the same order as the f32 layer and stay within a
        // per-precision relative-Frobenius band of it. The bands are the
        // end-to-end 3-layer bounds from the accuracy harness — a single
        // layer sits well inside them, so a blown scale or a skipped
        // dequantization fails loudly.
        for (setup_seed, k_in, k_out, want_order) in [
            (7u64, 8usize, 32usize, FusedOrder::AggregateFirst),
            (8, 32, 8, FusedOrder::UpdateFirst),
        ] {
            let (a, h, w) = random_setup(60, k_in, k_out, setup_seed);
            let bias = vec![0.25; k_out];
            for (precision, band) in [
                (Precision::Bf16, 2e-2f32),
                (Precision::F16, 5e-3),
                (Precision::Int8, 1.5e-1),
            ] {
                let plan = SpmmPlan::with_precision(&a, k_in, precision);
                let mut mid = DenseMatrix::default();
                let mut reference = DenseMatrix::default();
                let ref_order = gcn_layer_planned_into(
                    &a,
                    &h,
                    &w,
                    Some(&bias),
                    Activation::Relu,
                    &plan,
                    &mut mid,
                    &mut reference,
                )
                .unwrap();
                assert_eq!(ref_order, want_order);
                let mut qbuf = QuantMatrix::new();
                let mut out = DenseMatrix::filled(3, 3, f32::NAN);
                let order = gcn_layer_planned_prec_into(
                    &a,
                    &h,
                    &w,
                    Some(&bias),
                    Activation::Relu,
                    &plan,
                    &mut qbuf,
                    &mut mid,
                    &mut out,
                )
                .unwrap();
                assert_eq!(order, want_order);
                assert_eq!(out.shape(), reference.shape());
                let err = rel_frob(&out, &reference);
                assert!(
                    err < band,
                    "{precision} {want_order:?}: rel frob {err:.3e} over {band:.1e}"
                );
            }
        }
    }

    #[test]
    fn planned_prec_layer_at_f32_is_bitwise_identical() {
        let (a, h, w) = random_setup(40, 12, 6, 9);
        let plan = SpmmPlan::with_precision(&a, 12, Precision::F32);
        let mut mid = DenseMatrix::default();
        let mut reference = DenseMatrix::default();
        gcn_layer_planned_into(
            &a,
            &h,
            &w,
            None,
            Activation::Relu,
            &plan,
            &mut mid,
            &mut reference,
        )
        .unwrap();
        let mut qbuf = QuantMatrix::new();
        let mut out = DenseMatrix::default();
        gcn_layer_planned_prec_into(
            &a,
            &h,
            &w,
            None,
            Activation::Relu,
            &plan,
            &mut qbuf,
            &mut mid,
            &mut out,
        )
        .unwrap();
        assert_eq!(reference.max_abs_diff(&out), 0.0);
        // The f32 path must not have touched the staging buffer.
        assert_eq!(qbuf.shape(), (0, 0));
    }
}
