//! Precomputed, reusable SpMM execution plans.
//!
//! Every `SpmmStrategy::Auto` call re-derives degree statistics (an `O(n)`
//! scan) and partitions rows by *count*, not by *non-zeros* — so a chunk
//! holding a hub row serializes on one worker while its siblings idle.
//! [`SpmmPlan`] pays the analysis once per adjacency and reuses it across
//! every layer and epoch:
//!
//! * an **NNZ-balanced row partition** — slot boundaries found by binary
//!   search over `row_ptr` so each pool slot owns ~equal non-zeros
//!   (merge-path style, the workload mapping Accel-GCN identifies as the
//!   biggest SpMM lever),
//! * **cached [`DegreeStats`]** and the resolved execution path, so `Auto`
//!   selection is paid once per graph instead of per call,
//! * an optional **column-tile schedule** for the feature-parallel path.
//!
//! A plan is keyed by a structural fingerprint of the adjacency (shape,
//! nnz, sampled `row_ptr`/`col_idx` entries), letting callers cache one
//! plan per graph without holding a borrow — `gcn::InferenceWorkspace`
//! does exactly that.

use matrix::microkernel::{resolve_precision, KernelDispatch};
use matrix::{DenseMatrix, MatrixError, Precision, QuantMatrix};
use parking_lot::Mutex;
use sparse::{Csr, DegreeStats};

use crate::engine::{SpmmStrategy, AUTO_SEQUENTIAL_WORK, AUTO_SKEW_CV, AUTO_WIDE_K};
use crate::spmm::{spmm_rows_quant_with, spmm_rows_with};

// BOUNDS: indexing in this module walks partition boundary vectors whose
// construction guarantees `0 <= p[i] < p[i+1] <= nrows` (see
// `nnz_balanced_partition`), CSR arrays validated by `Csr::from_coo`, and
// sampled positions clamped with `.min(len)` in `fingerprint`.

/// NNZ-balanced slots per pool thread. More slots than threads leaves the
/// pool's dynamic claiming slack to absorb residual imbalance (a slot that
/// is slightly heavy just means its worker claims one fewer slot).
pub const PLAN_SLOTS_PER_THREAD: usize = 4;

/// Maximum tolerated `max_slot_nnz / ideal_slot_nnz` before the plan gives
/// up on row granularity and falls back to the hub-splitting hybrid
/// kernel: beyond 2x, single rows dominate slots and only edge-splitting
/// can rebalance them.
pub const PLAN_MAX_IMBALANCE: f64 = 2.0;

/// Load-balance quality of an NNZ-balanced partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Number of row slots in the partition.
    pub slots: usize,
    /// Fewest non-zeros owned by any slot.
    pub min_slot_nnz: usize,
    /// Most non-zeros owned by any slot.
    pub max_slot_nnz: usize,
    /// `nnz / requested_slots` — what a perfect split into the *requested*
    /// number of slots would give each one. Measured against the request,
    /// not the realized count: a hub that collapses the partition to two
    /// slots should read as imbalance, not as a smaller ideal.
    pub ideal_slot_nnz: f64,
    /// `max_slot_nnz / ideal_slot_nnz`; 1.0 is perfect balance.
    pub imbalance: f64,
}

impl PlanStats {
    fn of(row_ptr: &[usize], partition: &[usize], requested_slots: usize) -> PlanStats {
        let slots = partition.len().saturating_sub(1);
        if slots == 0 {
            return PlanStats {
                slots: 0,
                min_slot_nnz: 0,
                max_slot_nnz: 0,
                ideal_slot_nnz: 0.0,
                imbalance: 1.0,
            };
        }
        let nnz = *row_ptr.last().expect("non-empty row_ptr");
        let (mut min, mut max) = (usize::MAX, 0usize);
        for w in partition.windows(2) {
            let slot_nnz = row_ptr[w[1]] - row_ptr[w[0]];
            min = min.min(slot_nnz);
            max = max.max(slot_nnz);
        }
        let ideal = nnz as f64 / requested_slots.max(1) as f64;
        PlanStats {
            slots,
            min_slot_nnz: min,
            max_slot_nnz: max,
            ideal_slot_nnz: ideal,
            imbalance: if ideal > 0.0 { max as f64 / ideal } else { 1.0 },
        }
    }
}

/// Splits rows into at most `slots` contiguous ranges of ~equal non-zeros.
///
/// Boundary `i` is found by binary search over `row_ptr` for the first row
/// whose prefix reaches `i * nnz / slots` — the row-granular merge-path
/// split. Returned boundaries are strictly increasing, start at 0 and end
/// at `nrows`, so the ranges cover every row exactly once. Each slot owns
/// at most `ceil(nnz / slots) + max_row_nnz - 1` non-zeros (a single row
/// is never split, so one oversized row caps what balancing can achieve).
pub fn nnz_balanced_partition(row_ptr: &[usize], slots: usize) -> Vec<usize> {
    let n = row_ptr.len().saturating_sub(1);
    let nnz = row_ptr.last().copied().unwrap_or(0);
    if n == 0 {
        // lint:allow(L005): plan construction, paid once per adjacency.
        return vec![0];
    }
    let slots = slots.max(1);
    // lint:allow(L005): plan construction, paid once per adjacency.
    let mut partition = Vec::with_capacity(slots + 1);
    partition.push(0);
    for i in 1..slots {
        let target = i * nnz / slots;
        // First row boundary with at least `target` non-zeros before it.
        let boundary = row_ptr.partition_point(|&p| p < target).min(n);
        if boundary > *partition.last().expect("non-empty partition") {
            partition.push(boundary);
        }
    }
    if *partition.last().expect("non-empty partition") < n {
        partition.push(n);
    }
    partition
}

/// The execution path a plan resolved to (the planned analogue of
/// [`SpmmStrategy`], with `Auto` already decided and vertex-parallel
/// upgraded to the NNZ-balanced partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedExec {
    /// Single-threaded: the problem is too small to fan out.
    Sequential,
    /// NNZ-balanced row ranges on the persistent pool, no atomics.
    NnzBalanced {
        /// Number of worker threads.
        threads: usize,
    },
    /// Worker-owned column tiles (the wide-K regime).
    FeatureParallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// Hub rows edge-split, tail chunked — for graphs whose largest rows
    /// exceed what any row-granular partition can balance.
    Hybrid {
        /// Number of worker threads.
        threads: usize,
    },
}

impl std::fmt::Display for PlannedExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannedExec::Sequential => write!(f, "sequential"),
            PlannedExec::NnzBalanced { threads } => write!(f, "nnz-balanced x{threads}"),
            PlannedExec::FeatureParallel { threads } => write!(f, "feature-parallel x{threads}"),
            PlannedExec::Hybrid { threads } => write!(f, "hybrid x{threads}"),
        }
    }
}

/// A precomputed execution plan for repeated SpMM against one adjacency.
///
/// Build once with [`SpmmPlan::new`] (or [`crate::engine::plan`]), then
/// call [`SpmmPlan::run_into`] per multiplication. The plan's `k` hint
/// fixes the primary execution path; calls with a different feature width
/// re-resolve from the *cached* statistics (an `O(1)` decision — never a
/// rescan of the matrix).
///
/// # Examples
///
/// ```
/// use kernels::plan::SpmmPlan;
/// use sparse::{Coo, Csr};
/// use matrix::DenseMatrix;
///
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 1, 1.0);
/// let a = Csr::from_coo(&coo);
/// let plan = SpmmPlan::new(&a, 2);
/// assert!(plan.matches(&a));
/// let h = DenseMatrix::identity(2);
/// let out = plan.run(&a, &h).unwrap();
/// assert_eq!(out.row(0), &[0.0, 1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SpmmPlan {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    k: usize,
    fingerprint: u64,
    stats: DegreeStats,
    partition: Vec<usize>,
    plan_stats: PlanStats,
    exec: PlannedExec,
    /// Column tile schedule `[t0, t1)` for the feature-parallel path;
    /// empty unless `exec` is `FeatureParallel`.
    tiles: Vec<(usize, usize)>,
    /// Micro-kernel backend captured at plan time: the sparse row loops and
    /// the layer's dense transform both run this dispatch, so one plan
    /// fixes the whole layer's SIMD path.
    kernel: KernelDispatch,
    /// Storage precision the planned layer runs at, resolved through the
    /// micro-kernel probe at plan time (a requested precision whose ISA
    /// probe fails is downgraded along [`Precision::fallback`]).
    precision: Precision,
    /// `(requested, resolved)` if the precision probe downgraded.
    precision_fallback: Option<(Precision, Precision)>,
}

impl SpmmPlan {
    /// Analyzes `a` once and fixes the execution path for feature width
    /// `k` (`k` is a hint: other widths re-resolve cheaply at run time).
    pub fn new(a: &Csr, k: usize) -> SpmmPlan {
        let width = pool::global().width();
        Self::with_width(a, k, width)
    }

    /// [`SpmmPlan::new`] at a narrow storage precision: the plan probes the
    /// requested precision against the captured kernel dispatch and records
    /// any downgrade ([`SpmmPlan::precision_fallback`]). The planned layer
    /// then stores its feature operand at the resolved precision.
    pub fn with_precision(a: &Csr, k: usize, precision: Precision) -> SpmmPlan {
        Self::new(a, k).at_precision(precision)
    }

    /// Re-targets an existing plan to a storage precision, probing it
    /// against the plan's captured kernel dispatch exactly like
    /// [`SpmmPlan::with_precision`] — sharded runners use this to inherit a
    /// precision onto per-shard plans without re-deriving statistics.
    pub fn at_precision(mut self, precision: Precision) -> SpmmPlan {
        let (resolved, fell_back) = resolve_precision(self.kernel, precision);
        self.precision = resolved;
        self.precision_fallback = fell_back;
        self
    }

    /// [`SpmmPlan::new`] with an explicit thread budget (exposed so tests
    /// and benches can plan for widths other than the global pool's).
    pub fn with_width(a: &Csr, k: usize, width: usize) -> SpmmPlan {
        let stats = DegreeStats::of(a);
        let slots = (width.max(1)) * PLAN_SLOTS_PER_THREAD;
        let partition = nnz_balanced_partition(a.row_ptr(), slots);
        let plan_stats = PlanStats::of(a.row_ptr(), &partition, slots);
        let mut plan = SpmmPlan {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            k,
            fingerprint: fingerprint(a),
            stats,
            partition,
            plan_stats,
            exec: PlannedExec::Sequential,
            // lint:allow(L005): plan construction, paid once per adjacency.
            tiles: Vec::new(),
            kernel: KernelDispatch::get(),
            precision: Precision::F32,
            precision_fallback: None,
        };
        plan.exec = plan.resolve(k, width);
        if let PlannedExec::FeatureParallel { threads } = plan.exec {
            plan.tiles = column_tiles(k, threads);
        }
        plan
    }

    /// Resolves the execution path for feature width `k` from the cached
    /// statistics. `O(1)`: no matrix scan.
    pub fn resolve(&self, k: usize, width: usize) -> PlannedExec {
        if self.nrows == 0 || self.nnz == 0 || k == 0 || width <= 1 {
            return PlannedExec::Sequential;
        }
        if self.nnz.saturating_mul(k) < AUTO_SEQUENTIAL_WORK {
            return PlannedExec::Sequential;
        }
        // Skewed graphs whose hubs defeat any row partition need
        // edge-splitting; skewed graphs the partition *can* balance run
        // atomics-free on the NNZ slots — the step past Auto's
        // chunked-by-count vertex kernel.
        if self.stats.cv > AUTO_SKEW_CV && self.plan_stats.imbalance > PLAN_MAX_IMBALANCE {
            return PlannedExec::Hybrid { threads: width };
        }
        if k >= AUTO_WIDE_K && k >= 4 * width {
            return PlannedExec::FeatureParallel { threads: width };
        }
        PlannedExec::NnzBalanced { threads: width }
    }

    /// Whether this plan was built for `a` (structural fingerprint check;
    /// `O(1)`).
    pub fn matches(&self, a: &Csr) -> bool {
        self.nrows == a.nrows()
            && self.ncols == a.ncols()
            && self.nnz == a.nnz()
            && self.fingerprint == fingerprint(a)
    }

    /// The feature-width hint the plan was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The structural fingerprint the plan is keyed by.
    pub fn fingerprint_value(&self) -> u64 {
        self.fingerprint
    }

    /// The cached degree statistics (computed once at plan time).
    pub fn stats(&self) -> &DegreeStats {
        &self.stats
    }

    /// Load-balance quality of the NNZ partition.
    pub fn plan_stats(&self) -> &PlanStats {
        &self.plan_stats
    }

    /// The resolved execution path for the plan's `k` hint.
    pub fn exec(&self) -> PlannedExec {
        self.exec
    }

    /// The NNZ-balanced row boundaries (`slots + 1` entries).
    pub fn partition(&self) -> &[usize] {
        &self.partition
    }

    /// The column-tile schedule (empty unless the feature path was
    /// resolved).
    pub fn tiles(&self) -> &[(usize, usize)] {
        &self.tiles
    }

    /// The micro-kernel backend resolved at plan time. The planned GCN
    /// layer ([`crate::fused::gcn_layer_planned_into`]) runs its dense
    /// `H * W` transform on this same dispatch, so sparse and dense pillars
    /// of a planned layer always agree on the SIMD path.
    pub fn dense_kernel(&self) -> KernelDispatch {
        self.kernel
    }

    /// The storage precision the planned layer runs at. `F32` unless the
    /// plan was built with [`SpmmPlan::with_precision`] (and the requested
    /// precision survived its ISA probe).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// `(requested, resolved)` if the precision probe downgraded the
    /// requested storage precision at plan time.
    pub fn precision_fallback(&self) -> Option<(Precision, Precision)> {
        self.precision_fallback
    }

    /// Runs `out = a * h` along the planned path.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `a` or `h` disagree
    /// with the plan's shapes.
    pub fn run(&self, a: &Csr, h: &DenseMatrix) -> Result<DenseMatrix, MatrixError> {
        let mut out = DenseMatrix::default();
        self.run_into(a, h, &mut out)?;
        Ok(out)
    }

    /// [`SpmmPlan::run`] into a caller-owned output matrix (reshaped with
    /// [`DenseMatrix::resize_zeroed`]; allocation-free at capacity).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `a`'s shape disagrees
    /// with the plan or `h`'s rows disagree with `a`'s columns.
    pub fn run_into(
        &self,
        a: &Csr,
        h: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), MatrixError> {
        self.check_plan(a)?;
        let k = h.cols();
        let exec = if k == self.k {
            self.exec
        } else {
            self.resolve(k, pool::global().width())
        };
        match exec {
            PlannedExec::Sequential => crate::spmm::spmm_sequential_into(a, h, out),
            PlannedExec::NnzBalanced { threads } => {
                spmm_nnz_balanced_with(self.kernel, a, h, &self.partition, threads, out)
            }
            PlannedExec::FeatureParallel { threads } => {
                if k == self.k && !self.tiles.is_empty() {
                    crate::tiled::spmm_feature_planned_into(a, h, &self.tiles, threads, out)
                } else {
                    crate::tiled::spmm_feature_parallel_into(a, h, threads, out)
                }
            }
            PlannedExec::Hybrid { threads } => crate::hybrid::spmm_hybrid_into(a, h, threads, out),
        }
    }

    /// Runs `out = a * decode(hq)` along the planned path, reading the
    /// feature operand from narrow storage (bf16 / f16 / int8) and
    /// accumulating in `f32`.
    ///
    /// Row-parallel paths reuse the plan's NNZ-balanced partition. The
    /// feature-parallel resolution also runs on the row partition here:
    /// column tiling exists to shrink the per-pass feature working set,
    /// which narrow storage already does by 2-4x at the source.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `a`'s shape disagrees
    /// with the plan or `hq`'s rows disagree with `a`'s columns.
    pub fn run_quant_into(
        &self,
        a: &Csr,
        hq: &QuantMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), MatrixError> {
        self.check_plan(a)?;
        crate::spmm::check_quant("spmm_planned_quant", a, hq)?;
        let k = hq.cols();
        let exec = if k == self.k {
            self.exec
        } else {
            self.resolve(k, pool::global().width())
        };
        match exec {
            PlannedExec::Sequential => crate::spmm::spmm_sequential_quant_into(a, hq, out),
            PlannedExec::NnzBalanced { threads } | PlannedExec::FeatureParallel { threads } => {
                spmm_nnz_balanced_quant_with(self.kernel, a, hq, &self.partition, threads, out)
            }
            PlannedExec::Hybrid { threads } => {
                crate::hybrid::spmm_hybrid_quant_into(a, hq, threads, out)
            }
        }
    }

    /// Dimension-check helper for the planned path: `a` must structurally
    /// match the plan's recorded shape and nnz. `h` is validated against
    /// `a` downstream by each dispatched kernel's own `check`.
    fn check_plan(&self, a: &Csr) -> Result<(), MatrixError> {
        if a.nrows() != self.nrows || a.ncols() != self.ncols || a.nnz() != self.nnz {
            return Err(MatrixError::DimensionMismatch {
                op: "spmm_planned",
                lhs: (self.nrows, self.ncols),
                rhs: a.shape(),
            });
        }
        Ok(())
    }

    /// The fixed [`SpmmStrategy`] closest to the planned path — what the
    /// planless engine would have to be told to approximate this plan.
    pub fn strategy_equivalent(&self) -> SpmmStrategy {
        match self.exec {
            PlannedExec::Sequential => SpmmStrategy::Sequential,
            PlannedExec::NnzBalanced { threads } => SpmmStrategy::VertexParallel { threads },
            PlannedExec::FeatureParallel { threads } => SpmmStrategy::FeatureParallel { threads },
            PlannedExec::Hybrid { threads } => SpmmStrategy::Hybrid { threads },
        }
    }
}

/// Structural fingerprint of a CSR matrix: shape, nnz, and up to 16
/// sampled entries of `row_ptr` and `col_idx`, FNV-mixed. `O(1)` — cheap
/// enough to run on every planned call, strong enough that two graphs
/// colliding by accident is vanishingly unlikely.
pub fn fingerprint(a: &Csr) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(a.nrows() as u64);
    mix(a.ncols() as u64);
    mix(a.nnz() as u64);
    let row_ptr = a.row_ptr();
    let samples = 16usize;
    for i in 0..samples.min(row_ptr.len()) {
        let idx = i * (row_ptr.len() - 1) / samples.min(row_ptr.len()).max(1);
        mix(row_ptr[idx] as u64);
    }
    let cols = a.col_idx();
    if !cols.is_empty() {
        for i in 0..samples.min(cols.len()) {
            let idx = i * (cols.len() - 1) / samples.min(cols.len()).max(1);
            mix(u64::from(cols[idx]));
        }
    }
    h
}

/// Evenly splits `k` columns into one tile per thread (the schedule the
/// feature-parallel kernel derives per call, precomputed here).
fn column_tiles(k: usize, threads: usize) -> Vec<(usize, usize)> {
    if k == 0 {
        // lint:allow(L005): plan construction, paid once per adjacency.
        return Vec::new();
    }
    let executors = threads.min(k).max(1);
    let tile = k.div_ceil(executors);
    (0..k.div_ceil(tile))
        .map(|t| (t * tile, ((t + 1) * tile).min(k)))
        // lint:allow(L005): plan construction, paid once per adjacency.
        .collect()
}

/// SpMM over precomputed NNZ-balanced row ranges: each pool share owns one
/// contiguous range of output rows exclusively (no atomics, no locks held
/// across rows), and because ranges hold ~equal non-zeros, no share
/// serializes on a heavy chunk the way count-based chunking does.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_nnz_balanced_into(
    a: &Csr,
    h: &DenseMatrix,
    partition: &[usize],
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    crate::spmm::check("spmm_nnz_balanced", a, h)?;
    spmm_nnz_balanced_with(KernelDispatch::get(), a, h, partition, threads, out)
}

/// [`spmm_nnz_balanced_into`] on an explicit [`KernelDispatch`] — the entry
/// point [`SpmmPlan::run_into`] uses so the plan's cached backend drives
/// the row loops instead of re-resolving per call.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_nnz_balanced_with(
    kd: KernelDispatch,
    a: &Csr,
    h: &DenseMatrix,
    partition: &[usize],
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    crate::spmm::check("spmm_nnz_balanced", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (n, k) = (a.nrows(), h.cols());
    debug_assert_eq!(partition.last().copied().unwrap_or(0), n);
    out.resize_zeroed(n, k);
    if n == 0 || k == 0 {
        return Ok(());
    }
    if threads == 1 || partition.len() < 3 {
        spmm_rows_with(kd, a, h, out.as_mut_slice(), 0, n, k);
        return Ok(());
    }

    // Pre-split the output at the partition boundaries. Share index ==
    // slot index and each share locks only its own slice, so the mutexes
    // never contend — they only hand `&mut` slices through a `Fn` closure.
    // lint:allow(L005): per-call slot table of ~4x-threads pointers —
    // orders of magnitude below the counting-allocator activation budget.
    let mut slices: Vec<Mutex<&mut [f32]>> = Vec::with_capacity(partition.len() - 1);
    let mut rest = out.as_mut_slice();
    for w in partition.windows(2) {
        let (slice, remaining) = rest.split_at_mut((w[1] - w[0]) * k);
        rest = remaining;
        slices.push(Mutex::new(slice));
    }
    let slots = slices.len();
    pool::global().broadcast(threads.min(slots), slots, |s| {
        let mut slice = slices[s].lock();
        spmm_rows_with(kd, a, h, &mut slice, partition[s], partition[s + 1], k);
    });
    Ok(())
}

/// [`spmm_nnz_balanced_with`] over a narrow-precision feature matrix: the
/// same atomics-free partitioned row loop, with each non-zero decoding its
/// feature row from bf16/f16/int8 storage inside the widened AXPY.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_nnz_balanced_quant_with(
    kd: KernelDispatch,
    a: &Csr,
    hq: &QuantMatrix,
    partition: &[usize],
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    crate::spmm::check_quant("spmm_nnz_balanced_quant", a, hq)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (n, k) = (a.nrows(), hq.cols());
    debug_assert_eq!(partition.last().copied().unwrap_or(0), n);
    // Every row in [0, n) lands in exactly one partition share and the row
    // kernel overwrites its share, so the cheaper non-zeroing reshape is safe.
    out.resize_for_overwrite(n, k);
    if n == 0 || k == 0 {
        return Ok(());
    }
    if threads == 1 || partition.len() < 3 {
        spmm_rows_quant_with(kd, a, hq, out.as_mut_slice(), 0, n, k);
        return Ok(());
    }

    // Same slice hand-off as the f32 path: share index == slot index, each
    // share locks only its own slice, so the mutexes never contend.
    // lint:allow(L005): per-call slot table of ~4x-threads pointers —
    // orders of magnitude below the counting-allocator activation budget.
    let mut slices: Vec<Mutex<&mut [f32]>> = Vec::with_capacity(partition.len() - 1);
    let mut rest = out.as_mut_slice();
    for w in partition.windows(2) {
        let (slice, remaining) = rest.split_at_mut((w[1] - w[0]) * k);
        rest = remaining;
        slices.push(Mutex::new(slice));
    }
    let slots = slices.len();
    pool::global().broadcast(threads.min(slots), slots, |s| {
        let mut slice = slices[s].lock();
        spmm_rows_quant_with(kd, a, hq, &mut slice, partition[s], partition[s + 1], k);
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::spmm_sequential;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::Coo;

    fn random_csr(rng: &mut StdRng, n: usize, nnz: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for _ in 0..nnz {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            );
        }
        Csr::from_coo(&coo)
    }

    fn random_dense(rng: &mut StdRng, r: usize, c: usize) -> DenseMatrix {
        let data = (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(r, c, data).unwrap()
    }

    #[test]
    fn partition_covers_all_rows_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_csr(&mut rng, 200, 1500);
        for slots in [1, 2, 7, 16, 64, 500] {
            let p = nnz_balanced_partition(a.row_ptr(), slots);
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), a.nrows());
            assert!(p.windows(2).all(|w| w[0] < w[1]), "slots={slots}");
            assert!(p.len() <= slots + 1);
        }
    }

    #[test]
    fn partition_balances_within_row_granularity() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_csr(&mut rng, 400, 4000);
        let slots = 8;
        let p = nnz_balanced_partition(a.row_ptr(), slots);
        let max_row = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap();
        let target = a.nnz().div_ceil(slots);
        for w in p.windows(2) {
            let slot_nnz = a.row_ptr()[w[1]] - a.row_ptr()[w[0]];
            assert!(
                slot_nnz < target + max_row,
                "slot [{}, {}) holds {slot_nnz} nnz, target {target}, max row {max_row}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn partition_handles_empty_and_degenerate_matrices() {
        assert_eq!(nnz_balanced_partition(&[0], 4), vec![0]);
        let empty = Csr::empty(5, 5);
        let p = nnz_balanced_partition(empty.row_ptr(), 3);
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 5);
    }

    #[test]
    fn nnz_balanced_kernel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_csr(&mut rng, 300, 2500);
        let h = random_dense(&mut rng, 300, 13);
        let reference = spmm_sequential(&a, &h).unwrap();
        for slots in [2, 5, 16] {
            let p = nnz_balanced_partition(a.row_ptr(), slots);
            for threads in [1, 2, 4, 9] {
                let mut out = DenseMatrix::filled(10, 10, f32::NAN);
                spmm_nnz_balanced_into(&a, &h, &p, threads, &mut out).unwrap();
                assert!(
                    reference.max_abs_diff(&out) < 1e-4,
                    "slots={slots} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn plan_runs_match_sequential_across_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        for (n, nnz) in [(50, 100), (200, 3000), (64, 64)] {
            let a = random_csr(&mut rng, n, nnz);
            for k in [1usize, 8, 64] {
                let h = random_dense(&mut rng, n, k);
                let reference = spmm_sequential(&a, &h).unwrap();
                let plan = SpmmPlan::new(&a, k);
                let got = plan.run(&a, &h).unwrap();
                assert!(
                    reference.max_abs_diff(&got) < 1e-3,
                    "n={n} k={k} exec={}",
                    plan.exec()
                );
            }
        }
    }

    #[test]
    fn plan_resolves_other_widths_without_rescan() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_csr(&mut rng, 256, 4000);
        let plan = SpmmPlan::new(&a, 16);
        // A different K than the hint still runs correctly.
        let h = random_dense(&mut rng, 256, 40);
        let reference = spmm_sequential(&a, &h).unwrap();
        assert!(reference.max_abs_diff(&plan.run(&a, &h).unwrap()) < 1e-3);
        // k = 0 resolves sequential and yields an empty output.
        let h0 = DenseMatrix::zeros(256, 0);
        assert_eq!(plan.run(&a, &h0).unwrap().shape(), (256, 0));
    }

    #[test]
    fn plan_rejects_mismatched_operands() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_csr(&mut rng, 50, 300);
        let other = random_csr(&mut rng, 60, 300);
        let plan = SpmmPlan::new(&a, 8);
        let h = random_dense(&mut rng, 60, 8);
        assert!(plan.run(&other, &h).is_err());
    }

    #[test]
    fn fingerprint_distinguishes_graphs_and_matches_self() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_csr(&mut rng, 128, 1000);
        let b = random_csr(&mut rng, 128, 1000);
        let plan = SpmmPlan::new(&a, 8);
        assert!(plan.matches(&a));
        assert!(!plan.matches(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn skewed_graph_with_monster_hub_resolves_hybrid() {
        // Star graph: one row holds every edge; no row partition can
        // balance it, so the plan must fall back to edge-splitting.
        let n = 4096;
        let mut coo = Coo::new(n, n);
        for v in 1..n {
            coo.push(0, v, 1.0);
        }
        let a = Csr::from_coo(&coo);
        let plan = SpmmPlan::with_width(&a, 64, 8);
        assert!(
            matches!(plan.exec(), PlannedExec::Hybrid { .. }),
            "expected hybrid for star graph, got {}",
            plan.exec()
        );
        let mut rng = StdRng::seed_from_u64(8);
        let h = random_dense(&mut rng, n, 9);
        let reference = spmm_sequential(&a, &h).unwrap();
        assert!(reference.max_abs_diff(&plan.run(&a, &h).unwrap()) < 1e-3);
    }

    #[test]
    fn moderately_skewed_graph_stays_on_nnz_partition() {
        // Degrees vary 1..64 (cv well below a star's) but total work is
        // large: the NNZ partition absorbs the skew without atomics.
        let n = 2048;
        let mut rng = StdRng::seed_from_u64(9);
        let mut coo = Coo::new(n, n);
        for u in 0..n {
            let d = 1 + (u % 64);
            for _ in 0..d {
                coo.push(u, rng.gen_range(0..n), 1.0);
            }
        }
        let a = Csr::from_coo(&coo);
        let plan = SpmmPlan::with_width(&a, 32, 8);
        assert!(
            matches!(plan.exec(), PlannedExec::NnzBalanced { .. }),
            "got {}",
            plan.exec()
        );
    }

    #[test]
    fn wide_k_resolves_feature_parallel_with_tiles() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_csr(&mut rng, 512, 4000);
        let plan = SpmmPlan::with_width(&a, 1024, 8);
        assert!(
            matches!(plan.exec(), PlannedExec::FeatureParallel { .. }),
            "got {}",
            plan.exec()
        );
        // Tiles cover 0..k exactly once, in order.
        let tiles = plan.tiles();
        assert!(!tiles.is_empty());
        assert_eq!(tiles[0].0, 0);
        assert_eq!(tiles.last().unwrap().1, 1024);
        assert!(tiles.windows(2).all(|w| w[0].1 == w[1].0));
        let h = random_dense(&mut rng, 512, 1024);
        let reference = spmm_sequential(&a, &h).unwrap();
        assert!(reference.max_abs_diff(&plan.run(&a, &h).unwrap()) < 1e-3);
    }

    #[test]
    fn tiny_problems_resolve_sequential() {
        let mut coo = Coo::new(8, 8);
        coo.push(1, 2, 1.0);
        let a = Csr::from_coo(&coo);
        let plan = SpmmPlan::with_width(&a, 4, 8);
        assert_eq!(plan.exec(), PlannedExec::Sequential);
        assert_eq!(
            SpmmPlan::with_width(&a, 4, 1).exec(),
            PlannedExec::Sequential
        );
    }

    #[test]
    fn zero_threads_is_rejected_by_the_kernel() {
        let a = Csr::empty(2, 2);
        let h = DenseMatrix::zeros(2, 2);
        let p = nnz_balanced_partition(a.row_ptr(), 2);
        let mut out = DenseMatrix::default();
        assert!(matches!(
            spmm_nnz_balanced_into(&a, &h, &p, 0, &mut out),
            Err(MatrixError::ZeroThreads)
        ));
    }

    #[test]
    fn quant_plan_matches_decoded_sequential_reference() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = random_csr(&mut rng, 300, 2400);
        let h = random_dense(&mut rng, 300, 19);
        let mut q = QuantMatrix::new();
        let mut decoded = DenseMatrix::default();
        for p in [Precision::Bf16, Precision::F16, Precision::Int8] {
            q.encode(&h, p).unwrap();
            q.decode(&mut decoded);
            // Same narrowing applied by hand: the quant kernels may only
            // differ by f32 accumulation order / scale-fold rounding.
            let reference = spmm_sequential(&a, &decoded).unwrap();
            let plan = SpmmPlan::with_precision(&a, h.cols(), p);
            assert_eq!(plan.precision(), p);
            assert!(plan.precision_fallback().is_none());
            let mut out = DenseMatrix::filled(3, 3, f32::NAN);
            plan.run_quant_into(&a, &q, &mut out).unwrap();
            assert!(
                reference.max_abs_diff(&out) < 1e-3,
                "{p} planned quant diverged by {}",
                reference.max_abs_diff(&out)
            );
            // Multi-threaded NNZ-balanced path, exercised explicitly so
            // the broadcast split runs even if the plan resolved
            // sequential here.
            let partition = nnz_balanced_partition(a.row_ptr(), 16);
            let mut out2 = DenseMatrix::default();
            spmm_nnz_balanced_quant_with(plan.dense_kernel(), &a, &q, &partition, 4, &mut out2)
                .unwrap();
            assert!(
                reference.max_abs_diff(&out2) < 1e-3,
                "{p} nnz-balanced quant diverged by {}",
                reference.max_abs_diff(&out2)
            );
        }
    }

    #[test]
    fn partition_with_more_slots_than_rows_collapses_cleanly() {
        // 4 rows, 2 nnz each; asking for 16 slots must not emit empty
        // middle ranges — boundaries stay strictly increasing and cover
        // every row exactly once (the sharding layer pads the tail).
        let row_ptr = [0usize, 2, 4, 6, 8];
        let bounds = nnz_balanced_partition(&row_ptr, 16);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), 4);
        assert!(bounds.len() <= 5, "at most one boundary per row");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn partition_bounds_a_hub_row_exceeding_the_slot_budget() {
        // One hub row holds 100 of 106 nnz, far past the ~27-nnz per-slot
        // budget at 4 slots. Rows are never split, so the hub's range
        // absorbs the overflow (documented bound: ceil(nnz/slots) +
        // max_row_nnz - 1), the boundaries that would land inside it
        // collapse (strictly increasing, no empty ranges), and the
        // remaining rows still get covered exactly once.
        let row_ptr = [0usize, 2, 102, 104, 106];
        let bounds = nnz_balanced_partition(&row_ptr, 4);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), 4);
        let budget = 106usize.div_ceil(4);
        let max_row = 100;
        for w in bounds.windows(2) {
            let slot_nnz = row_ptr[w[1]] - row_ptr[w[0]];
            assert!(
                slot_nnz <= budget + max_row - 1,
                "slot {w:?} holds {slot_nnz} nnz, over the documented bound"
            );
        }
        // The hub ends up sharing a range with at most the small rows
        // before it — everything after the hub is balanced normally.
        let hub_end = bounds
            .iter()
            .position(|&b| b >= 2)
            .expect("a boundary at or after the hub row exists");
        assert!(
            bounds[hub_end] == 2,
            "boundary lands right after the hub: {bounds:?}"
        );
    }

    #[test]
    fn single_slot_partition_is_the_identity() {
        let mut rng = StdRng::seed_from_u64(77);
        let a = random_csr(&mut rng, 30, 120);
        assert_eq!(nnz_balanced_partition(a.row_ptr(), 1), vec![0, 30]);
        // Degenerate inputs: no rows at all collapse to a single boundary.
        assert_eq!(nnz_balanced_partition(&[0], 4), vec![0]);
    }

    #[test]
    fn at_precision_inherits_structure_and_records_fallback() {
        let mut rng = StdRng::seed_from_u64(78);
        let a = random_csr(&mut rng, 40, 160);
        let base = SpmmPlan::new(&a, 8);
        let fp = base.fingerprint_value();
        let plan = base.at_precision(Precision::Bf16);
        assert_eq!(plan.fingerprint_value(), fp);
        assert!(plan.matches(&a));
        // Same resolution as building at the precision directly.
        let direct = SpmmPlan::with_precision(&a, 8, Precision::Bf16);
        assert_eq!(plan.precision(), direct.precision());
        assert_eq!(plan.precision_fallback(), direct.precision_fallback());
    }

    #[test]
    fn quant_plan_rejects_mismatched_operands() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = random_csr(&mut rng, 40, 160);
        let h_bad = random_dense(&mut rng, 41, 5);
        let mut q = QuantMatrix::new();
        q.encode(&h_bad, Precision::Bf16).unwrap();
        let plan = SpmmPlan::with_precision(&a, 5, Precision::Bf16);
        let mut out = DenseMatrix::default();
        assert!(matches!(
            plan.run_quant_into(&a, &q, &mut out),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }
}
