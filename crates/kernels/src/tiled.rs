//! Feature-tiled SpMM: cache blocking over the embedding dimension.
//!
//! At large K the paper's CPU baseline degrades because each random feature
//! row is a cache-line burst that evicts other rows (Section III-C). A
//! standard mitigation — used by Graphite [9] and GE-SpMM [11] — is to tile
//! the *feature* dimension: process the sparse structure once per K-tile,
//! so the working set per pass shrinks from `|V| * K` to `|V| * T` floats.
//! The trade-off is re-reading the CSR arrays once per tile; tiling wins
//! when features dominate traffic (K large) and loses when the CSR re-reads
//! dominate (K small) — a crossover the benches expose.

use matrix::{DenseMatrix, MatrixError, QuantMatrix};
use sparse::Csr;
use std::sync::atomic::Ordering;

use crate::spmm::{check, check_quant};

// BOUNDS: indexing here touches CSR arrays validated by `Csr::from_coo`,
// tile ranges clamped to `..k` at construction, and a scratch grid sized
// `n * k` by `with_zeroed_u32` immediately before use; `check()` ties the
// operand shapes together at every entry point.

/// Default feature-tile width in elements (256 floats = 1 KB per row: small
/// enough that tens of thousands of hot rows fit in an L2 slice).
pub const DEFAULT_TILE: usize = 256;

/// Sequential feature-tiled SpMM: `out = A * H`, processed in K-tiles of
/// width `tile`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch; a zero
/// `tile` is promoted to [`DEFAULT_TILE`].
pub fn spmm_feature_tiled(
    a: &Csr,
    h: &DenseMatrix,
    tile: usize,
) -> Result<DenseMatrix, MatrixError> {
    let mut out = DenseMatrix::default();
    spmm_feature_tiled_into(a, h, tile, &mut out)?;
    Ok(out)
}

/// [`spmm_feature_tiled`] writing into a caller-owned output matrix
/// (reshaped with [`DenseMatrix::resize_zeroed`]; allocation-free at
/// capacity).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch; a zero
/// `tile` is promoted to [`DEFAULT_TILE`].
pub fn spmm_feature_tiled_into(
    a: &Csr,
    h: &DenseMatrix,
    tile: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check("spmm_feature_tiled", a, h)?;
    let k = h.cols();
    let tile = if tile == 0 { DEFAULT_TILE } else { tile };
    out.resize_zeroed(a.nrows(), k);
    let kd = matrix::microkernel::KernelDispatch::get();
    let mut t0 = 0;
    while t0 < k {
        let t1 = (t0 + tile).min(k);
        for u in 0..a.nrows() {
            let row_out = &mut out.row_mut(u)[t0..t1];
            for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
                kd.axpy(row_out, w, &h.row(v as usize)[t0..t1]);
            }
        }
        t0 = t1;
    }
    Ok(())
}

/// [`spmm_feature_tiled_into`] over a narrow-precision feature matrix:
/// the same K-tile blocking, but each feature-row read decodes a
/// bf16 / f16 / int8 tile slice ([`QuantMatrix::row_range`]) inside the
/// widened AXPY. Tiling and narrow storage compound: a tile's working set
/// shrinks by the tile factor *and* the storage ratio.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch; a zero
/// `tile` is promoted to [`DEFAULT_TILE`].
pub fn spmm_feature_tiled_quant_into(
    a: &Csr,
    hq: &QuantMatrix,
    tile: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check_quant("spmm_feature_tiled_quant", a, hq)?;
    let k = hq.cols();
    let tile = if tile == 0 { DEFAULT_TILE } else { tile };
    out.resize_zeroed(a.nrows(), k);
    let kd = matrix::microkernel::KernelDispatch::get();
    let mut t0 = 0;
    while t0 < k {
        let t1 = (t0 + tile).min(k);
        for u in 0..a.nrows() {
            let row_out = &mut out.row_mut(u)[t0..t1];
            for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
                kd.axpy_quant(row_out, w, hq.row_range(v as usize, t0, t1));
            }
        }
        t0 = t1;
    }
    Ok(())
}

/// Parallel feature-tiled SpMM: each worker owns a disjoint K-tile of the
/// output, so all threads share the sparse structure reads but never write
/// the same cache lines. Complements the row-parallel kernels when `K >>
/// thread count` — and is the layout GE-SpMM's coalesced row caching
/// exploits on GPUs.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_feature_parallel(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
) -> Result<DenseMatrix, MatrixError> {
    let mut out = DenseMatrix::default();
    spmm_feature_parallel_into(a, h, threads, &mut out)?;
    Ok(out)
}

/// [`spmm_feature_parallel`] writing into a caller-owned output matrix.
///
/// Runs on the persistent global pool. Column tiles cannot be handed out
/// as `&mut` slices of a row-major matrix, so tiles accumulate into the
/// pool's reusable [`pool::ScratchArena`] grid — each `(row, column)` cell
/// belongs to exactly one tile, so plain relaxed load/store suffices (no
/// compare-exchange) — and the grid is copied into `out` afterwards. In
/// steady state no allocation is proportional to the output size.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_feature_parallel_into(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check("spmm_feature_parallel", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let k = h.cols();
    let executors = threads.min(k.max(1));
    let tile = k.div_ceil(executors.max(1)).max(1);
    let tiles: Vec<(usize, usize)> = (0..k.div_ceil(tile))
        .map(|t| (t * tile, ((t + 1) * tile).min(k)))
        // lint:allow(L005): per-call tile table of <= threads pairs; the
        // planned entry point precomputes it and skips this path entirely.
        .collect();
    spmm_feature_planned_into(a, h, &tiles, threads, out)
}

/// Parallel feature-tiled SpMM over a *precomputed* column-tile schedule —
/// the execution half of [`spmm_feature_parallel`], split out so an
/// `SpmmPlan` can derive the schedule once per graph and replay it every
/// call. Tiles must be disjoint, in-order, and cover `0..h.cols()`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_feature_planned_into(
    a: &Csr,
    h: &DenseMatrix,
    tiles: &[(usize, usize)],
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check("spmm_feature_planned", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let n = a.nrows();
    let k = h.cols();
    if threads == 1 || k == 0 || n == 0 || tiles.len() < 2 {
        return spmm_feature_tiled_into(a, h, 0, out);
    }
    out.resize_zeroed(n, k);
    let executors = threads.min(tiles.len());

    let pool = pool::global();
    let out_slice = out.as_mut_slice();
    pool.scratch().with_zeroed_u32(n * k, |grid| {
        pool.broadcast(executors, tiles.len(), |t| {
            let (t0, t1) = tiles[t];
            for u in 0..n {
                let base = u * k;
                for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
                    let feat = &h.row(v as usize)[t0..t1];
                    for (j, f) in (t0..t1).zip(feat) {
                        let cell = &grid[base + j];
                        // Exclusive per-tile ownership of the cell: a plain
                        // read-modify-write is race-free.
                        // lint:allow(L006): single-writer cell — no other
                        // thread reads it until the pool barrier.
                        let cur = f32::from_bits(cell.load(Ordering::Relaxed));
                        // lint:allow(L006): same single-writer argument;
                        // publication happens at the pool barrier.
                        cell.store((cur + w * f).to_bits(), Ordering::Relaxed);
                    }
                }
            }
        });
        for (dst, cell) in out_slice.iter_mut().zip(grid) {
            // lint:allow(L006): the pool barrier at broadcast() return is
            // the acquire edge; every cell is final before this read.
            *dst = f32::from_bits(cell.load(Ordering::Relaxed));
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::spmm_sequential;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::Coo;

    fn random_inputs(n: usize, nnz: usize, k: usize, seed: u64) -> (Csr, DenseMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..nnz {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            );
        }
        let data = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (
            Csr::from_coo(&coo),
            DenseMatrix::from_vec(n, k, data).unwrap(),
        )
    }

    #[test]
    fn tiled_matches_reference_for_many_tile_sizes() {
        let (a, h) = random_inputs(60, 500, 37, 1);
        let reference = spmm_sequential(&a, &h).unwrap();
        for tile in [1, 2, 7, 16, 37, 64, 0] {
            let got = spmm_feature_tiled(&a, &h, tile).unwrap();
            assert!(reference.max_abs_diff(&got) < 1e-4, "tile={tile} diverged");
        }
    }

    #[test]
    fn feature_parallel_matches_reference() {
        let (a, h) = random_inputs(80, 900, 48, 2);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [1, 2, 3, 5, 48, 100] {
            let got = spmm_feature_parallel(&a, &h, threads).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-4,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn narrow_k_is_handled() {
        let (a, h) = random_inputs(20, 60, 1, 3);
        let reference = spmm_sequential(&a, &h).unwrap();
        assert!(reference.max_abs_diff(&spmm_feature_parallel(&a, &h, 8).unwrap()) < 1e-5);
    }

    #[test]
    fn shape_and_thread_errors_are_reported() {
        let a = Csr::empty(3, 3);
        let h = DenseMatrix::zeros(4, 2);
        assert!(spmm_feature_tiled(&a, &h, 4).is_err());
        assert!(spmm_feature_parallel(&a, &h, 2).is_err());
        let h = DenseMatrix::zeros(3, 2);
        assert!(matches!(
            spmm_feature_parallel(&a, &h, 0),
            Err(MatrixError::ZeroThreads)
        ));
    }

    #[test]
    fn empty_inputs_give_zero_output() {
        let a = Csr::empty(4, 4);
        let h = DenseMatrix::zeros(4, 0);
        let out = spmm_feature_parallel(&a, &h, 3).unwrap();
        assert_eq!(out.shape(), (4, 0));
    }

    #[test]
    fn feature_tiled_quant_matches_decoded_reference() {
        let (a, h) = random_inputs(60, 700, 21, 5);
        let mut q = matrix::QuantMatrix::new();
        let mut decoded = DenseMatrix::default();
        for p in [
            matrix::Precision::Bf16,
            matrix::Precision::F16,
            matrix::Precision::Int8,
        ] {
            q.encode(&h, p).unwrap();
            q.decode(&mut decoded);
            let reference = spmm_sequential(&a, &decoded).unwrap();
            // Tile widths around / off the 8-lane boundary, plus a tile
            // wider than k (single pass).
            for tile in [1, 7, 8, 64] {
                let mut out = DenseMatrix::default();
                spmm_feature_tiled_quant_into(&a, &q, tile, &mut out).unwrap();
                assert!(
                    reference.max_abs_diff(&out) < 1e-3,
                    "{p} tile={tile} diverged by {}",
                    reference.max_abs_diff(&out)
                );
            }
        }
    }
}
