//! Feature-tiled SpMM: cache blocking over the embedding dimension.
//!
//! At large K the paper's CPU baseline degrades because each random feature
//! row is a cache-line burst that evicts other rows (Section III-C). A
//! standard mitigation — used by Graphite [9] and GE-SpMM [11] — is to tile
//! the *feature* dimension: process the sparse structure once per K-tile,
//! so the working set per pass shrinks from `|V| * K` to `|V| * T` floats.
//! The trade-off is re-reading the CSR arrays once per tile; tiling wins
//! when features dominate traffic (K large) and loses when the CSR re-reads
//! dominate (K small) — a crossover the benches expose.

use matrix::{DenseMatrix, MatrixError};
use sparse::Csr;

/// Default feature-tile width in elements (256 floats = 1 KB per row: small
/// enough that tens of thousands of hot rows fit in an L2 slice).
pub const DEFAULT_TILE: usize = 256;

fn check(op: &'static str, a: &Csr, h: &DenseMatrix) -> Result<(), MatrixError> {
    if a.ncols() != h.rows() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: h.shape(),
        });
    }
    Ok(())
}

/// Sequential feature-tiled SpMM: `out = A * H`, processed in K-tiles of
/// width `tile`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch; a zero
/// `tile` is promoted to [`DEFAULT_TILE`].
pub fn spmm_feature_tiled(
    a: &Csr,
    h: &DenseMatrix,
    tile: usize,
) -> Result<DenseMatrix, MatrixError> {
    check("spmm_feature_tiled", a, h)?;
    let k = h.cols();
    let tile = if tile == 0 { DEFAULT_TILE } else { tile };
    let mut out = DenseMatrix::zeros(a.nrows(), k);
    let mut t0 = 0;
    while t0 < k {
        let t1 = (t0 + tile).min(k);
        for u in 0..a.nrows() {
            let row_out = &mut out.row_mut(u)[t0..t1];
            for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
                let feat = &h.row(v as usize)[t0..t1];
                for (o, f) in row_out.iter_mut().zip(feat) {
                    *o += w * f;
                }
            }
        }
        t0 = t1;
    }
    Ok(out)
}

/// Parallel feature-tiled SpMM: each worker owns a disjoint K-tile of the
/// output, so all threads share the sparse structure reads but never write
/// the same cache lines. Complements the row-parallel kernels when `K >>
/// thread count` — and is the layout GE-SpMM's coalesced row caching
/// exploits on GPUs.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_feature_parallel(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
) -> Result<DenseMatrix, MatrixError> {
    check("spmm_feature_parallel", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let n = a.nrows();
    let k = h.cols();
    if threads == 1 || k == 0 || n == 0 {
        return spmm_feature_tiled(a, h, 0);
    }
    let threads = threads.min(k);
    let tile = k.div_ceil(threads);

    // Column tiles cannot be handed out as &mut slices of a row-major
    // matrix, so each worker accumulates into its own (n x tile) buffer and
    // the buffers are interleaved afterwards.
    let mut buffers: Vec<DenseMatrix> = Vec::with_capacity(threads);
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move |_| {
                    let t0 = t * tile;
                    let t1 = ((t + 1) * tile).min(k);
                    let width = t1 - t0;
                    let mut local = DenseMatrix::zeros(n, width);
                    for u in 0..n {
                        let row_out = local.row_mut(u);
                        for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
                            let feat = &h.row(v as usize)[t0..t1];
                            for (o, f) in row_out.iter_mut().zip(feat) {
                                *o += w * f;
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            buffers.push(handle.join().expect("tile worker panicked"));
        }
    })
    .expect("spmm worker panicked");

    let mut out = DenseMatrix::zeros(n, k);
    for (t, local) in buffers.iter().enumerate() {
        let t0 = t * tile;
        for u in 0..n {
            let src = local.row(u);
            out.row_mut(u)[t0..t0 + src.len()].copy_from_slice(src);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::spmm_sequential;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::Coo;

    fn random_inputs(n: usize, nnz: usize, k: usize, seed: u64) -> (Csr, DenseMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..nnz {
            coo.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(-1.0..1.0));
        }
        let data = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (Csr::from_coo(&coo), DenseMatrix::from_vec(n, k, data).unwrap())
    }

    #[test]
    fn tiled_matches_reference_for_many_tile_sizes() {
        let (a, h) = random_inputs(60, 500, 37, 1);
        let reference = spmm_sequential(&a, &h).unwrap();
        for tile in [1, 2, 7, 16, 37, 64, 0] {
            let got = spmm_feature_tiled(&a, &h, tile).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-4,
                "tile={tile} diverged"
            );
        }
    }

    #[test]
    fn feature_parallel_matches_reference() {
        let (a, h) = random_inputs(80, 900, 48, 2);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [1, 2, 3, 5, 48, 100] {
            let got = spmm_feature_parallel(&a, &h, threads).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-4,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn narrow_k_is_handled() {
        let (a, h) = random_inputs(20, 60, 1, 3);
        let reference = spmm_sequential(&a, &h).unwrap();
        assert!(
            reference
                .max_abs_diff(&spmm_feature_parallel(&a, &h, 8).unwrap())
                < 1e-5
        );
    }

    #[test]
    fn shape_and_thread_errors_are_reported() {
        let a = Csr::empty(3, 3);
        let h = DenseMatrix::zeros(4, 2);
        assert!(spmm_feature_tiled(&a, &h, 4).is_err());
        assert!(spmm_feature_parallel(&a, &h, 2).is_err());
        let h = DenseMatrix::zeros(3, 2);
        assert!(matches!(
            spmm_feature_parallel(&a, &h, 0),
            Err(MatrixError::ZeroThreads)
        ));
    }

    #[test]
    fn empty_inputs_give_zero_output() {
        let a = Csr::empty(4, 4);
        let h = DenseMatrix::zeros(4, 0);
        let out = spmm_feature_parallel(&a, &h, 3).unwrap();
        assert_eq!(out.shape(), (4, 0));
    }
}
