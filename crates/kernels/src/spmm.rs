//! SpMM kernel implementations (Algorithm 1 and Algorithm 2 of the paper).
//!
//! All parallel kernels execute on the process-wide persistent thread pool
//! ([`pool::global`]): threads are spawned once and reused across calls,
//! so per-invocation cost is one job publication instead of N thread
//! spawns. Each kernel has a `*_into` variant writing into a caller-owned
//! [`DenseMatrix`], which the GCN inference path uses to ping-pong between
//! two activation buffers without per-layer allocation.

use matrix::microkernel::KernelDispatch;
use matrix::{DenseMatrix, MatrixError, QuantMatrix};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

use sparse::Csr;

// BOUNDS: all `[]` indexing in this module is over CSR arrays validated at
// construction (`Csr::from_coo` checks row_ptr monotonicity and col_idx <
// ncols) plus output slices sized by `resize_zeroed(n, k)` before the
// kernels run; `check()` ties the two shapes together at every entry point.

/// Dynamic chunk-claiming counter shared with the pool crate; re-exported
/// here because benchmarks and the paper discussion reference it as part
/// of the kernel layer.
pub use pool::DynamicCounter;

/// Row-chunk size handed to a worker at a time by the vertex-parallel
/// kernel's dynamic scheduler. Small enough to balance power-law rows,
/// large enough to amortize the claim.
pub(crate) const VERTEX_CHUNK: usize = 64;

pub(crate) fn check(op: &'static str, a: &Csr, h: &DenseMatrix) -> Result<(), MatrixError> {
    if a.ncols() != h.rows() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: h.shape(),
        });
    }
    Ok(())
}

/// Computes rows `[row_start, row_end)` of `A * H` into `out_rows`
/// (row-major, `(row_end - row_start) * k` elements). The shared inner
/// loop of the sequential, vertex-parallel, and hybrid kernels; resolves
/// the micro-kernel dispatch once and delegates to [`spmm_rows_with`].
pub(crate) fn spmm_rows(
    a: &Csr,
    h: &DenseMatrix,
    out_rows: &mut [f32],
    row_start: usize,
    row_end: usize,
    k: usize,
) {
    spmm_rows_with(KernelDispatch::get(), a, h, out_rows, row_start, row_end, k)
}

/// [`spmm_rows`] on an explicit [`KernelDispatch`]: each non-zero becomes
/// one widened AXPY over the `k`-wide feature panel, so the SpMM inner loop
/// runs the same SIMD backend as the dense GEMM.
pub(crate) fn spmm_rows_with(
    kd: KernelDispatch,
    a: &Csr,
    h: &DenseMatrix,
    out_rows: &mut [f32],
    row_start: usize,
    row_end: usize,
    k: usize,
) {
    debug_assert_eq!(out_rows.len(), (row_end - row_start) * k);
    for u in row_start..row_end {
        let row_out = &mut out_rows[(u - row_start) * k..(u - row_start + 1) * k];
        for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
            kd.axpy(row_out, w, h.row(v as usize));
        }
    }
}

pub(crate) fn check_quant(op: &'static str, a: &Csr, hq: &QuantMatrix) -> Result<(), MatrixError> {
    if a.ncols() != hq.rows() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: hq.shape(),
        });
    }
    Ok(())
}

/// [`spmm_rows_with`] over a narrow-precision feature matrix: each output
/// row is one [`KernelDispatch::fill_row_quant`] call — register-tiled
/// accumulation over the row's non-zeros, decoding bf16/f16/int8 storage
/// on the fly while the arithmetic stays `f32`. The traffic saving (2-4x
/// fewer feature bytes per non-zero) is exactly the paper's memory-bound
/// SpMM lever. Overwrites `out_rows` (prior contents ignored), which every
/// caller satisfies by carving disjoint whole rows from a
/// [`DenseMatrix::resize_zeroed`] output.
pub(crate) fn spmm_rows_quant_with(
    kd: KernelDispatch,
    a: &Csr,
    hq: &QuantMatrix,
    out_rows: &mut [f32],
    row_start: usize,
    row_end: usize,
    k: usize,
) {
    debug_assert_eq!(out_rows.len(), (row_end - row_start) * k);
    for u in row_start..row_end {
        let row_out = &mut out_rows[(u - row_start) * k..(u - row_start + 1) * k];
        kd.fill_row_quant(row_out, a.row_cols(u), a.row_values(u), hq);
    }
}

/// Sequential SpMM over a narrow-precision feature matrix:
/// `out = A * decode(Hq)`, writing into a caller-owned output.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.ncols() != hq.rows()`.
pub fn spmm_sequential_quant_into(
    a: &Csr,
    hq: &QuantMatrix,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check_quant("spmm_sequential_quant", a, hq)?;
    let (n, k) = (a.nrows(), hq.cols());
    // The row kernel overwrites every element, so skip `resize_zeroed`'s
    // full-buffer memset: at steady-state shapes this reshape is a no-op.
    out.resize_for_overwrite(n, k);
    spmm_rows_quant_with(KernelDispatch::get(), a, hq, out.as_mut_slice(), 0, n, k);
    Ok(())
}

/// Sequential SpMM reference: `out = A * H` (Algorithm 1).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.ncols() != h.rows()`.
pub fn spmm_sequential(a: &Csr, h: &DenseMatrix) -> Result<DenseMatrix, MatrixError> {
    let mut out = DenseMatrix::default();
    spmm_sequential_into(a, h, &mut out)?;
    Ok(out)
}

/// [`spmm_sequential`] writing into a caller-owned output matrix (reshaped
/// with [`DenseMatrix::resize_zeroed`]; allocation-free at capacity).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.ncols() != h.rows()`.
pub fn spmm_sequential_into(
    a: &Csr,
    h: &DenseMatrix,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check("spmm_sequential", a, h)?;
    let (n, k) = (a.nrows(), h.cols());
    out.resize_zeroed(n, k);
    spmm_rows(a, h, out.as_mut_slice(), 0, n, k);
    Ok(())
}

/// Vertex-parallel SpMM with dynamic load balancing.
///
/// Output rows are split into [`VERTEX_CHUNK`]-row chunks; pool workers
/// claim chunks from the job's shared counter (the moral equivalent of
/// OpenMP `schedule(dynamic)`, which Section V-A reports as the fastest
/// CPU configuration). Each chunk is owned exclusively by one worker, so
/// no atomics touch the output.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_vertex_parallel(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
) -> Result<DenseMatrix, MatrixError> {
    let mut out = DenseMatrix::default();
    spmm_vertex_parallel_into(a, h, threads, &mut out)?;
    Ok(out)
}

/// [`spmm_vertex_parallel`] writing into a caller-owned output matrix
/// (reshaped with [`DenseMatrix::resize_zeroed`]; allocation of the output
/// is avoided entirely once the buffer has reached capacity).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_vertex_parallel_into(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check("spmm_vertex_parallel", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (n, k) = (a.nrows(), h.cols());
    out.resize_zeroed(n, k);
    // k == 0 would make the chunk size below zero-sized (a panic in
    // `chunks_mut`), and there is nothing to compute anyway.
    if n == 0 || k == 0 {
        return Ok(());
    }
    if threads == 1 {
        spmm_rows(a, h, out.as_mut_slice(), 0, n, k);
        return Ok(());
    }

    // Pre-split the output into chunk slices. Share index == chunk index,
    // and each share locks only its own chunk, so the mutexes never
    // contend — they exist to hand `&mut` slices through a `Fn` closure.
    let chunks: Vec<Mutex<&mut [f32]>> = out
        .as_mut_slice()
        .chunks_mut(VERTEX_CHUNK * k)
        .map(Mutex::new)
        // lint:allow(L005): per-call chunk table of n/64 pointers — orders
        // of magnitude below the counting-allocator activation budget.
        .collect();
    pool::global().broadcast(threads.min(n), chunks.len(), |ci| {
        let mut slice = chunks[ci].lock();
        let row_start = ci * VERTEX_CHUNK;
        let row_end = (row_start + VERTEX_CHUNK).min(n);
        spmm_rows(a, h, &mut slice, row_start, row_end, k);
    });
    Ok(())
}

/// Spawn-per-call vertex-parallel baseline: same chunking as
/// [`spmm_vertex_parallel`] but creating fresh scoped threads on every
/// invocation. Kept public so the `pool_overhead` benchmark can measure
/// what the persistent pool saves; production call sites all go through
/// the pooled kernel.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_vertex_parallel_spawn(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
) -> Result<DenseMatrix, MatrixError> {
    check("spmm_vertex_parallel", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let n = a.nrows();
    let k = h.cols();
    if threads == 1 || n == 0 || k == 0 {
        return spmm_sequential(a, h);
    }
    let mut out = DenseMatrix::zeros(n, k);

    // lint:allow(L005): spawn-per-call baseline exists to measure exactly
    // this kind of per-invocation cost; it is not on the steady-state path.
    let mut work: Vec<(usize, &mut [f32])> = Vec::with_capacity(n.div_ceil(VERTEX_CHUNK));
    for (i, slice) in out.as_mut_slice().chunks_mut(VERTEX_CHUNK * k).enumerate() {
        work.push((i * VERTEX_CHUNK, slice));
    }
    work.reverse(); // pop() hands chunks out in ascending row order
    let queue = Mutex::new(work);

    // lint:allow(L002): deliberate spawn-per-call baseline kept so the
    // pool_overhead benchmark can quantify what the persistent pool saves.
    crossbeam::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|_| loop {
                let item = queue.lock().pop();
                let Some((first_row, slice)) = item else {
                    break;
                };
                let rows_here = slice.len() / k;
                spmm_rows(a, h, slice, first_row, first_row + rows_here, k);
            });
        }
    })
    .expect("spmm worker panicked");
    Ok(out)
}

/// Edge-parallel SpMM (Algorithm 2 of the paper).
///
/// The `|E|` non-zeros are split into equal shares. Each pool worker
/// binary-searches `row_ptr` for the row containing its first edge, then
/// walks its share accumulating into a local `K`-wide buffer, flushing the
/// buffer with atomic adds whenever it crosses a row boundary. Rows split
/// across workers are updated correctly because *all* flushes are atomic.
///
/// This is the strategy PIUMA's cheap remote atomics make attractive; on
/// CPUs the atomic traffic makes it slower than vertex-parallel, which is
/// exactly the contrast the paper draws.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_edge_parallel(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
) -> Result<DenseMatrix, MatrixError> {
    let mut out = DenseMatrix::default();
    spmm_edge_parallel_into(a, h, threads, &mut out)?;
    Ok(out)
}

/// [`spmm_edge_parallel`] writing into a caller-owned output matrix.
///
/// The `n * k` atomic accumulation grid comes from the global pool's
/// [`pool::ScratchArena`] instead of a fresh `Vec<AtomicU32>` per call, so
/// in steady state the kernel performs no allocation proportional to the
/// output size.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_edge_parallel_into(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check("spmm_edge_parallel", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (n, k) = (a.nrows(), h.cols());
    let nnz = a.nnz();
    out.resize_zeroed(n, k);
    // k == 0: nothing to accumulate, and the per-share flush math below
    // assumes non-empty rows of output.
    if k == 0 || nnz == 0 {
        return Ok(());
    }
    if threads == 1 {
        spmm_rows(a, h, out.as_mut_slice(), 0, n, k);
        return Ok(());
    }

    // Equal-|E| shares, one per executor (Algorithm 2's static partition).
    let shares = threads.min(nnz);
    let pool = pool::global();
    // Resolve the micro-kernel backend once, outside the broadcast.
    let kd = KernelDispatch::get();
    let out_slice = out.as_mut_slice();
    pool.scratch().with_zeroed_u32(n * k, |out_atomic| {
        pool.broadcast(shares, shares, |t| {
            let start = t * nnz / shares;
            let end = (t + 1) * nnz / shares;
            if start >= end {
                return;
            }
            // Binary search: first row u with row_ptr[u+1] > start.
            let row_ptr = a.row_ptr();
            let mut u = row_ptr.partition_point(|&p| p <= start);
            u = u.saturating_sub(1);
            while row_ptr[u + 1] <= start {
                u += 1;
            }

            let cols = a.col_idx();
            let vals = a.values();
            // lint:allow(L005): K-wide per-share accumulator kept
            // thread-local on purpose; K is the feature width (tens of
            // floats), negligible against the activation budget.
            let mut acc = vec![0.0f32; k];
            for e in start..end {
                while e >= row_ptr[u + 1] {
                    flush_row(out_atomic, u, k, &mut acc);
                    u += 1;
                }
                let v = cols[e] as usize;
                let w = vals[e];
                kd.axpy(&mut acc, w, h.row(v));
            }
            flush_row(out_atomic, u, k, &mut acc);
        });
        for (dst, cell) in out_slice.iter_mut().zip(out_atomic) {
            // lint:allow(L006): the pool barrier at broadcast() return is
            // the acquire edge; after it each cell has its final value and
            // this read needs no further ordering.
            *dst = f32::from_bits(cell.load(Ordering::Relaxed));
        }
    });
    Ok(())
}

/// Atomically adds the accumulation buffer into output row `u` and clears it.
fn flush_row(out: &[AtomicU32], u: usize, k: usize, acc: &mut [f32]) {
    let base = u * k;
    for (j, a) in acc.iter_mut().enumerate() {
        if *a != 0.0 {
            atomic_add_f32(&out[base + j], *a);
            *a = 0.0;
        }
    }
}

/// Lock-free `f32` add via compare-exchange on the bit pattern.
pub(crate) fn atomic_add_f32(cell: &AtomicU32, add: f32) {
    // lint:allow(L006): pure value accumulation — no other memory is
    // published through these cells, so the CAS needs no ordering; the
    // pool's job-completion barrier sequences the final readback.
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + add).to_bits();
        // lint:allow(L006): same argument as the load above — the CAS only
        // has to be atomic, not ordered, for value-only accumulation.
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::Coo;

    fn random_csr(rng: &mut StdRng, n: usize, m: usize, nnz: usize) -> Csr {
        let mut coo = Coo::new(n, m);
        for _ in 0..nnz {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..m),
                rng.gen_range(-1.0..1.0),
            );
        }
        Csr::from_coo(&coo)
    }

    fn random_dense(rng: &mut StdRng, r: usize, c: usize) -> DenseMatrix {
        let data = (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(r, c, data).unwrap()
    }

    #[test]
    fn sequential_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_csr(&mut rng, 20, 15, 60);
        let h = random_dense(&mut rng, 15, 7);
        let sparse_result = spmm_sequential(&a, &h).unwrap();
        let dense_result = a.to_dense().matmul(&h).unwrap();
        assert!(sparse_result.max_abs_diff(&dense_result) < 1e-4);
    }

    #[test]
    fn vertex_parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_csr(&mut rng, 300, 300, 3000);
        let h = random_dense(&mut rng, 300, 16);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [1, 2, 4, 7, 32] {
            let got = spmm_vertex_parallel(&a, &h, threads).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-4,
                "threads={threads} diverged"
            );
            let spawned = spmm_vertex_parallel_spawn(&a, &h, threads).unwrap();
            assert!(
                reference.max_abs_diff(&spawned) < 1e-4,
                "spawn threads={threads} diverged"
            );
        }
    }

    #[test]
    fn edge_parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_csr(&mut rng, 200, 200, 2500);
        let h = random_dense(&mut rng, 200, 9);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [1, 2, 3, 8, 16] {
            let got = spmm_edge_parallel(&a, &h, threads).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-3,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn edge_parallel_handles_empty_rows_and_skew() {
        // A star graph: row 0 has all edges, remaining rows are empty, which
        // stresses the binary search and row-advance logic.
        let mut coo = Coo::new(64, 64);
        for v in 1..64 {
            coo.push(0, v, 1.0);
        }
        coo.push(63, 0, 2.0);
        let a = Csr::from_coo(&coo);
        let mut rng = StdRng::seed_from_u64(4);
        let h = random_dense(&mut rng, 64, 5);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [2, 5, 13] {
            let got = spmm_edge_parallel(&a, &h, threads).unwrap();
            assert!(reference.max_abs_diff(&got) < 1e-4);
        }
    }

    #[test]
    fn more_threads_than_edges_is_fine() {
        let mut coo = Coo::new(4, 4);
        coo.push(1, 2, 1.5);
        let a = Csr::from_coo(&coo);
        let h = DenseMatrix::filled(4, 3, 1.0);
        let got = spmm_edge_parallel(&a, &h, 64).unwrap();
        assert_eq!(got.row(1), &[1.5, 1.5, 1.5]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Csr::empty(3, 4);
        let h = DenseMatrix::zeros(5, 2);
        assert!(spmm_sequential(&a, &h).is_err());
        assert!(spmm_vertex_parallel(&a, &h, 2).is_err());
        assert!(spmm_vertex_parallel_spawn(&a, &h, 2).is_err());
        assert!(spmm_edge_parallel(&a, &h, 2).is_err());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let a = Csr::empty(2, 2);
        let h = DenseMatrix::zeros(2, 2);
        assert!(matches!(
            spmm_vertex_parallel(&a, &h, 0),
            Err(MatrixError::ZeroThreads)
        ));
        assert!(matches!(
            spmm_edge_parallel(&a, &h, 0),
            Err(MatrixError::ZeroThreads)
        ));
    }

    #[test]
    fn zero_feature_columns_do_not_panic() {
        // Regression test: `chunks_mut(VERTEX_CHUNK * 0)` used to panic in
        // the vertex-parallel kernel, and the edge-parallel share math
        // assumed k > 0.
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_csr(&mut rng, 100, 100, 400);
        let h = DenseMatrix::zeros(100, 0);
        for threads in [1, 2, 8] {
            let v = spmm_vertex_parallel(&a, &h, threads).unwrap();
            assert_eq!(v.shape(), (100, 0));
            let e = spmm_edge_parallel(&a, &h, threads).unwrap();
            assert_eq!(e.shape(), (100, 0));
            let s = spmm_vertex_parallel_spawn(&a, &h, threads).unwrap();
            assert_eq!(s.shape(), (100, 0));
        }
    }

    #[test]
    fn into_variants_leave_no_stale_values() {
        let mut rng = StdRng::seed_from_u64(10);
        // First call: large matrix. Second call: smaller shape into the
        // same buffer — every element must be recomputed, none inherited.
        let a_big = random_csr(&mut rng, 120, 120, 900);
        let h_big = random_dense(&mut rng, 120, 33);
        let a_small = random_csr(&mut rng, 40, 40, 150);
        let h_small = random_dense(&mut rng, 40, 8);
        let reference = spmm_sequential(&a_small, &h_small).unwrap();

        type IntoKernel =
            fn(&Csr, &DenseMatrix, usize, &mut DenseMatrix) -> Result<(), MatrixError>;
        let kernels: [(&str, IntoKernel); 2] = [
            ("vertex", spmm_vertex_parallel_into),
            ("edge", spmm_edge_parallel_into),
        ];
        for (name, kernel) in kernels {
            let mut buf = DenseMatrix::default();
            kernel(&a_big, &h_big, 4, &mut buf).unwrap();
            kernel(&a_small, &h_small, 4, &mut buf).unwrap();
            assert!(
                reference.max_abs_diff(&buf) < 1e-4,
                "{name}_into left stale values on buffer reuse"
            );
        }
        // Sequential _into as well.
        let mut buf = DenseMatrix::filled(200, 200, f32::NAN);
        spmm_sequential_into(&a_small, &h_small, &mut buf).unwrap();
        assert!(reference.max_abs_diff(&buf) < 1e-4);
    }

    #[test]
    fn empty_matrix_gives_zero_output() {
        let a = Csr::empty(3, 3);
        let h = DenseMatrix::filled(3, 4, 2.0);
        for result in [
            spmm_sequential(&a, &h).unwrap(),
            spmm_vertex_parallel(&a, &h, 4).unwrap(),
            spmm_edge_parallel(&a, &h, 4).unwrap(),
        ] {
            assert!(result.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn atomic_add_accumulates_under_contention() {
        let cell = AtomicU32::new(0f32.to_bits());
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        atomic_add_f32(&cell, 1.0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f32::from_bits(cell.into_inner()), 8000.0);
    }

    #[test]
    fn dynamic_counter_covers_range_exactly_once() {
        let counter = DynamicCounter::new();
        let mut seen = [false; 100];
        while let Some((s, e)) = counter.claim(7, 100) {
            for (i, slot) in seen.iter_mut().enumerate().take(e).skip(s) {
                assert!(!std::mem::replace(slot, true), "item {i} claimed twice");
            }
        }
        assert!(seen.iter().all(|&x| x));
    }
}
