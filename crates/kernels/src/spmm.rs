//! SpMM kernel implementations (Algorithm 1 and Algorithm 2 of the paper).

use matrix::{DenseMatrix, MatrixError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use sparse::Csr;

/// Row-chunk size handed to a worker at a time by the vertex-parallel
/// kernel's dynamic scheduler. Small enough to balance power-law rows,
/// large enough to amortize the queue pop.
const VERTEX_CHUNK: usize = 64;

fn check(op: &'static str, a: &Csr, h: &DenseMatrix) -> Result<(), MatrixError> {
    if a.ncols() != h.rows() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: h.shape(),
        });
    }
    Ok(())
}

/// Sequential SpMM reference: `out = A * H` (Algorithm 1).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `a.ncols() != h.rows()`.
pub fn spmm_sequential(a: &Csr, h: &DenseMatrix) -> Result<DenseMatrix, MatrixError> {
    check("spmm_sequential", a, h)?;
    let k = h.cols();
    let mut out = DenseMatrix::zeros(a.nrows(), k);
    for u in 0..a.nrows() {
        let row_out = out.row_mut(u);
        for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
            let feat = h.row(v as usize);
            for j in 0..k {
                row_out[j] += w * feat[j];
            }
        }
    }
    Ok(out)
}

/// Vertex-parallel SpMM with dynamic load balancing.
///
/// Output rows are split into [`VERTEX_CHUNK`]-row chunks; workers pull
/// chunks from a shared queue (the moral equivalent of OpenMP
/// `schedule(dynamic)`, which Section V-A reports as the fastest CPU
/// configuration). Each chunk is owned exclusively by one worker, so no
/// atomics touch the output.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_vertex_parallel(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
) -> Result<DenseMatrix, MatrixError> {
    check("spmm_vertex_parallel", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let n = a.nrows();
    let k = h.cols();
    let mut out = DenseMatrix::zeros(n, k);
    if threads == 1 || n == 0 {
        return spmm_sequential(a, h);
    }

    // Pre-split the output into chunk slices; workers pop (first_row, slice)
    // pairs. Exclusive ownership of each slice makes this safe without
    // atomics.
    let mut work: Vec<(usize, &mut [f32])> = Vec::with_capacity(n.div_ceil(VERTEX_CHUNK));
    for (i, slice) in out.as_mut_slice().chunks_mut(VERTEX_CHUNK * k).enumerate() {
        work.push((i * VERTEX_CHUNK, slice));
    }
    work.reverse(); // pop() hands chunks out in ascending row order
    let queue = Mutex::new(work);

    crossbeam::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|_| loop {
                let item = queue.lock().pop();
                let Some((first_row, slice)) = item else {
                    break;
                };
                let rows_here = slice.len() / k;
                for r in 0..rows_here {
                    let u = first_row + r;
                    let row_out = &mut slice[r * k..(r + 1) * k];
                    for (&v, &w) in a.row_cols(u).iter().zip(a.row_values(u)) {
                        let feat = h.row(v as usize);
                        for j in 0..k {
                            row_out[j] += w * feat[j];
                        }
                    }
                }
            });
        }
    })
    .expect("spmm worker panicked");
    Ok(out)
}

/// Edge-parallel SpMM (Algorithm 2 of the paper).
///
/// The `|E|` non-zeros are split into `threads` equal shares. Each worker
/// binary-searches `row_ptr` for the row containing its first edge, then
/// walks its share accumulating into a local `K`-wide buffer, flushing the
/// buffer with atomic adds whenever it crosses a row boundary. Rows split
/// across workers are updated correctly because *all* flushes are atomic.
///
/// This is the strategy PIUMA's cheap remote atomics make attractive; on
/// CPUs the atomic traffic makes it slower than vertex-parallel, which is
/// exactly the contrast the paper draws.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_edge_parallel(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
) -> Result<DenseMatrix, MatrixError> {
    check("spmm_edge_parallel", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let n = a.nrows();
    let k = h.cols();
    let nnz = a.nnz();
    if threads == 1 || nnz == 0 {
        return spmm_sequential(a, h);
    }

    // Shared output as atomics (f32 bit-packed into AtomicU32).
    let out_atomic: Vec<AtomicU32> = (0..n * k).map(|_| AtomicU32::new(0f32.to_bits())).collect();
    let threads = threads.min(nnz);

    crossbeam::scope(|s| {
        for t in 0..threads {
            let out_ref = &out_atomic;
            s.spawn(move |_| {
                let start = t * nnz / threads;
                let end = (t + 1) * nnz / threads;
                if start >= end {
                    return;
                }
                // Binary search: first row u with row_ptr[u+1] > start.
                let row_ptr = a.row_ptr();
                let mut u = row_ptr.partition_point(|&p| p <= start);
                u = u.saturating_sub(1);
                while row_ptr[u + 1] <= start {
                    u += 1;
                }

                let cols = a.col_idx();
                let vals = a.values();
                let mut acc = vec![0.0f32; k];
                for e in start..end {
                    while e >= row_ptr[u + 1] {
                        flush_row(out_ref, u, k, &mut acc);
                        u += 1;
                    }
                    let v = cols[e] as usize;
                    let w = vals[e];
                    let feat = h.row(v);
                    for j in 0..k {
                        acc[j] += w * feat[j];
                    }
                }
                flush_row(out_ref, u, k, &mut acc);
            });
        }
    })
    .expect("spmm worker panicked");

    let data: Vec<f32> = out_atomic
        .into_iter()
        .map(|x| f32::from_bits(x.into_inner()))
        .collect();
    Ok(DenseMatrix::from_vec(n, k, data).expect("shape matches by construction"))
}

/// Atomically adds the accumulation buffer into output row `u` and clears it.
fn flush_row(out: &[AtomicU32], u: usize, k: usize, acc: &mut [f32]) {
    let base = u * k;
    for (j, a) in acc.iter_mut().enumerate() {
        if *a != 0.0 {
            atomic_add_f32(&out[base + j], *a);
            *a = 0.0;
        }
    }
}

/// Lock-free `f32` add via compare-exchange on the bit pattern.
fn atomic_add_f32(cell: &AtomicU32, add: f32) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + add).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A dynamic work counter that mirrors the paper's "dynamic load balancing
/// using OpenMP": exposed for benchmarks that want to measure scheduler
/// overhead separately.
#[derive(Debug, Default)]
pub struct DynamicCounter {
    next: AtomicUsize,
}

impl DynamicCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims the next chunk of `chunk` items below `limit`, returning the
    /// claimed half-open range, or `None` when the work is exhausted.
    pub fn claim(&self, chunk: usize, limit: usize) -> Option<(usize, usize)> {
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= limit {
            return None;
        }
        Some((start, (start + chunk).min(limit)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::Coo;

    fn random_csr(rng: &mut StdRng, n: usize, m: usize, nnz: usize) -> Csr {
        let mut coo = Coo::new(n, m);
        for _ in 0..nnz {
            coo.push(
                rng.gen_range(0..n),
                rng.gen_range(0..m),
                rng.gen_range(-1.0..1.0),
            );
        }
        Csr::from_coo(&coo)
    }

    fn random_dense(rng: &mut StdRng, r: usize, c: usize) -> DenseMatrix {
        let data = (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(r, c, data).unwrap()
    }

    #[test]
    fn sequential_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_csr(&mut rng, 20, 15, 60);
        let h = random_dense(&mut rng, 15, 7);
        let sparse_result = spmm_sequential(&a, &h).unwrap();
        let dense_result = a.to_dense().matmul(&h).unwrap();
        assert!(sparse_result.max_abs_diff(&dense_result) < 1e-4);
    }

    #[test]
    fn vertex_parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_csr(&mut rng, 300, 300, 3000);
        let h = random_dense(&mut rng, 300, 16);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [1, 2, 4, 7, 32] {
            let got = spmm_vertex_parallel(&a, &h, threads).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-4,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn edge_parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_csr(&mut rng, 200, 200, 2500);
        let h = random_dense(&mut rng, 200, 9);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [1, 2, 3, 8, 16] {
            let got = spmm_edge_parallel(&a, &h, threads).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-3,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn edge_parallel_handles_empty_rows_and_skew() {
        // A star graph: row 0 has all edges, remaining rows are empty, which
        // stresses the binary search and row-advance logic.
        let mut coo = Coo::new(64, 64);
        for v in 1..64 {
            coo.push(0, v, 1.0);
        }
        coo.push(63, 0, 2.0);
        let a = Csr::from_coo(&coo);
        let mut rng = StdRng::seed_from_u64(4);
        let h = random_dense(&mut rng, 64, 5);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [2, 5, 13] {
            let got = spmm_edge_parallel(&a, &h, threads).unwrap();
            assert!(reference.max_abs_diff(&got) < 1e-4);
        }
    }

    #[test]
    fn more_threads_than_edges_is_fine() {
        let mut coo = Coo::new(4, 4);
        coo.push(1, 2, 1.5);
        let a = Csr::from_coo(&coo);
        let h = DenseMatrix::filled(4, 3, 1.0);
        let got = spmm_edge_parallel(&a, &h, 64).unwrap();
        assert_eq!(got.row(1), &[1.5, 1.5, 1.5]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Csr::empty(3, 4);
        let h = DenseMatrix::zeros(5, 2);
        assert!(spmm_sequential(&a, &h).is_err());
        assert!(spmm_vertex_parallel(&a, &h, 2).is_err());
        assert!(spmm_edge_parallel(&a, &h, 2).is_err());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let a = Csr::empty(2, 2);
        let h = DenseMatrix::zeros(2, 2);
        assert!(matches!(
            spmm_vertex_parallel(&a, &h, 0),
            Err(MatrixError::ZeroThreads)
        ));
        assert!(matches!(
            spmm_edge_parallel(&a, &h, 0),
            Err(MatrixError::ZeroThreads)
        ));
    }

    #[test]
    fn empty_matrix_gives_zero_output() {
        let a = Csr::empty(3, 3);
        let h = DenseMatrix::filled(3, 4, 2.0);
        for result in [
            spmm_sequential(&a, &h).unwrap(),
            spmm_vertex_parallel(&a, &h, 4).unwrap(),
            spmm_edge_parallel(&a, &h, 4).unwrap(),
        ] {
            assert!(result.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn atomic_add_accumulates_under_contention() {
        let cell = AtomicU32::new(0f32.to_bits());
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        atomic_add_f32(&cell, 1.0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(f32::from_bits(cell.into_inner()), 8000.0);
    }

    #[test]
    fn dynamic_counter_covers_range_exactly_once() {
        let counter = DynamicCounter::new();
        let mut seen = [false; 100];
        while let Some((s, e)) = counter.claim(7, 100) {
            for (i, slot) in seen.iter_mut().enumerate().take(e).skip(s) {
                assert!(!std::mem::replace(slot, true), "item {i} claimed twice");
            }
        }
        assert!(seen.iter().all(|&x| x));
    }
}
