//! Degree-aware hybrid SpMM: edge-split hubs, chunked tail.
//!
//! Vertex-parallel SpMM load-balances badly on power-law graphs — one hub
//! row can outweigh thousands of tail rows, and a whole chunk containing it
//! serializes on one worker (the imbalance the paper quantifies via degree
//! cv). Edge-parallel fixes the balance but pays atomic traffic on *every*
//! output element, which is why the paper finds it slower on CPUs.
//!
//! The hybrid takes each regime where it wins:
//!
//! * **Hub rows** (degree far above the mean) are split into edge segments
//!   processed by different workers; each segment accumulates into a local
//!   `K`-wide buffer, then adds it into the output row under that row's
//!   dedicated mutex. Synchronization cost is one uncontended-to-lightly-
//!   contended lock per segment — not per element.
//! * **Tail rows** are grouped into chunks owned exclusively by one worker
//!   each, exactly like the vertex-parallel kernel: no atomics, no locks
//!   beyond the pool's share claiming.
//!
//! Hub segments are queued before tail chunks so the largest work items
//! start first — with dynamic share claiming this bounds the tail latency
//! by the last chunk, not the last hub.

use matrix::{DenseMatrix, MatrixError, QuantMatrix};
use parking_lot::Mutex;
use sparse::Csr;

use crate::spmm::{check, check_quant, spmm_rows, spmm_rows_quant_with, VERTEX_CHUNK};

// BOUNDS: indexing here reads CSR arrays validated by `Csr::from_coo`
// (row_ptr monotone, col_idx < ncols), work/slot tables built by the
// partition walk immediately above their use, and output slices carved by
// `split_at_mut` from a buffer sized via `resize_zeroed(n, k)`.

/// A row is a hub when its degree exceeds `HUB_DEGREE_FACTOR * mean`
/// (and the absolute floor [`HUB_DEGREE_MIN`]): beyond that point one row
/// rivals a whole tail chunk and is worth splitting.
const HUB_DEGREE_FACTOR: f64 = 4.0;

/// Minimum degree for hub treatment, so near-uniform graphs (where the
/// mean test would fire on noise) keep the atomics-free fast path.
const HUB_DEGREE_MIN: usize = 32;

/// Target edges per hub segment; segments are the unit of hub parallelism.
const SEGMENT_EDGES: usize = 1024;

enum Work<'a> {
    /// Edge segment `[e0, e1)` of a hub row, reduced into `slot`.
    HubSegment { e0: usize, e1: usize, slot: usize },
    /// Rows `[first_row, first_row + rows)`, owned exclusively.
    TailChunk {
        first_row: usize,
        rows: usize,
        slice: Mutex<&'a mut [f32]>,
    },
}

/// Degree-aware hybrid SpMM (see module docs).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_hybrid(a: &Csr, h: &DenseMatrix, threads: usize) -> Result<DenseMatrix, MatrixError> {
    let mut out = DenseMatrix::default();
    spmm_hybrid_into(a, h, threads, &mut out)?;
    Ok(out)
}

/// [`spmm_hybrid`] writing into a caller-owned output matrix (reshaped
/// with [`DenseMatrix::resize_zeroed`]; allocation-free at capacity apart
/// from per-call work-list bookkeeping).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_hybrid_into(
    a: &Csr,
    h: &DenseMatrix,
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check("spmm_hybrid", a, h)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (n, k) = (a.nrows(), h.cols());
    let nnz = a.nnz();
    out.resize_zeroed(n, k);
    if n == 0 || k == 0 || nnz == 0 {
        return Ok(());
    }
    if threads == 1 {
        spmm_rows(a, h, out.as_mut_slice(), 0, n, k);
        return Ok(());
    }

    let mean = nnz as f64 / n as f64;
    let hub_threshold = ((HUB_DEGREE_FACTOR * mean) as usize).max(HUB_DEGREE_MIN);

    // Partition the output: hub rows get individual mutex-guarded slices,
    // runs of tail rows become exclusively-owned chunks. `split_at_mut`
    // walks the backing slice front to back, so every slice is disjoint.
    let row_ptr = a.row_ptr();
    // lint:allow(L005): per-call work-list bookkeeping — O(hubs + n/64)
    // entries, far below the counting-allocator activation budget.
    let mut hub_slots: Vec<Mutex<&mut [f32]>> = Vec::new();
    // lint:allow(L005): same per-call work-list bookkeeping as above.
    let mut works: Vec<Work<'_>> = Vec::new();
    // lint:allow(L005): same per-call work-list bookkeeping as above.
    let mut tail_works: Vec<Work<'_>> = Vec::new();
    let mut rest = out.as_mut_slice();
    let mut u = 0;
    while u < n {
        if a.row_nnz(u) > hub_threshold {
            let (row_slice, remaining) = rest.split_at_mut(k);
            rest = remaining;
            let slot = hub_slots.len();
            hub_slots.push(Mutex::new(row_slice));
            let (e_start, e_end) = (row_ptr[u], row_ptr[u + 1]);
            let row_edges = e_end - e_start;
            let segments = row_edges.div_ceil(SEGMENT_EDGES).clamp(1, threads);
            for s in 0..segments {
                works.push(Work::HubSegment {
                    e0: e_start + s * row_edges / segments,
                    e1: e_start + (s + 1) * row_edges / segments,
                    slot,
                });
            }
            u += 1;
        } else {
            let run_start = u;
            while u < n && u - run_start < VERTEX_CHUNK && a.row_nnz(u) <= hub_threshold {
                u += 1;
            }
            let rows = u - run_start;
            let (chunk, remaining) = rest.split_at_mut(rows * k);
            rest = remaining;
            tail_works.push(Work::TailChunk {
                first_row: run_start,
                rows,
                slice: Mutex::new(chunk),
            });
        }
    }
    // Hubs first: biggest items start earliest under dynamic claiming.
    works.append(&mut tail_works);

    let cols = a.col_idx();
    let vals = a.values();
    // Resolve the micro-kernel backend once, outside the broadcast.
    let kd = matrix::microkernel::KernelDispatch::get();
    pool::global().broadcast(
        threads.min(works.len().max(1)),
        works.len(),
        |i| match &works[i] {
            Work::HubSegment { e0, e1, slot } => {
                // lint:allow(L005): K-wide per-segment accumulator kept
                // thread-local; K is the feature width, tens of floats.
                let mut acc = vec![0.0f32; k];
                for e in *e0..*e1 {
                    let v = cols[e] as usize;
                    let w = vals[e];
                    kd.axpy(&mut acc, w, h.row(v));
                }
                let mut row_out = hub_slots[*slot].lock();
                for (o, x) in row_out.iter_mut().zip(&acc) {
                    *o += x;
                }
            }
            Work::TailChunk {
                first_row,
                rows,
                slice,
            } => {
                let mut chunk = slice.lock();
                spmm_rows(a, h, &mut chunk, *first_row, first_row + rows, k);
            }
        },
    );
    Ok(())
}

/// [`spmm_hybrid_into`] over a narrow-precision feature matrix: identical
/// hub/tail partitioning, with every feature-row read decoding bf16 / f16 /
/// int8 storage inside the widened AXPY while accumulators stay `f32`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape mismatch and
/// [`MatrixError::ZeroThreads`] if `threads == 0`.
pub fn spmm_hybrid_quant_into(
    a: &Csr,
    hq: &QuantMatrix,
    threads: usize,
    out: &mut DenseMatrix,
) -> Result<(), MatrixError> {
    check_quant("spmm_hybrid_quant", a, hq)?;
    if threads == 0 {
        return Err(MatrixError::ZeroThreads);
    }
    let (n, k) = (a.nrows(), hq.cols());
    let nnz = a.nnz();
    out.resize_zeroed(n, k);
    if n == 0 || k == 0 || nnz == 0 {
        return Ok(());
    }
    let kd = matrix::microkernel::KernelDispatch::get();
    if threads == 1 {
        spmm_rows_quant_with(kd, a, hq, out.as_mut_slice(), 0, n, k);
        return Ok(());
    }

    let mean = nnz as f64 / n as f64;
    let hub_threshold = ((HUB_DEGREE_FACTOR * mean) as usize).max(HUB_DEGREE_MIN);

    // Same disjoint partition walk as the f32 kernel: hub rows get
    // mutex-guarded slices, tail runs become exclusively-owned chunks.
    let row_ptr = a.row_ptr();
    // lint:allow(L005): per-call work-list bookkeeping — O(hubs + n/64)
    // entries, far below the counting-allocator activation budget.
    let mut hub_slots: Vec<Mutex<&mut [f32]>> = Vec::new();
    // lint:allow(L005): same per-call work-list bookkeeping as above.
    let mut works: Vec<Work<'_>> = Vec::new();
    // lint:allow(L005): same per-call work-list bookkeeping as above.
    let mut tail_works: Vec<Work<'_>> = Vec::new();
    let mut rest = out.as_mut_slice();
    let mut u = 0;
    while u < n {
        if a.row_nnz(u) > hub_threshold {
            let (row_slice, remaining) = rest.split_at_mut(k);
            rest = remaining;
            let slot = hub_slots.len();
            hub_slots.push(Mutex::new(row_slice));
            let (e_start, e_end) = (row_ptr[u], row_ptr[u + 1]);
            let row_edges = e_end - e_start;
            let segments = row_edges.div_ceil(SEGMENT_EDGES).clamp(1, threads);
            for s in 0..segments {
                works.push(Work::HubSegment {
                    e0: e_start + s * row_edges / segments,
                    e1: e_start + (s + 1) * row_edges / segments,
                    slot,
                });
            }
            u += 1;
        } else {
            let run_start = u;
            while u < n && u - run_start < VERTEX_CHUNK && a.row_nnz(u) <= hub_threshold {
                u += 1;
            }
            let rows = u - run_start;
            let (chunk, remaining) = rest.split_at_mut(rows * k);
            rest = remaining;
            tail_works.push(Work::TailChunk {
                first_row: run_start,
                rows,
                slice: Mutex::new(chunk),
            });
        }
    }
    works.append(&mut tail_works);

    let cols = a.col_idx();
    let vals = a.values();
    pool::global().broadcast(
        threads.min(works.len().max(1)),
        works.len(),
        |i| match &works[i] {
            Work::HubSegment { e0, e1, slot } => {
                // lint:allow(L005): K-wide per-segment accumulator kept
                // thread-local; K is the feature width, tens of floats.
                let mut acc = vec![0.0f32; k];
                kd.accumulate_row_quant(&mut acc, &cols[*e0..*e1], &vals[*e0..*e1], hq);
                let mut row_out = hub_slots[*slot].lock();
                for (o, x) in row_out.iter_mut().zip(&acc) {
                    *o += x;
                }
            }
            Work::TailChunk {
                first_row,
                rows,
                slice,
            } => {
                let mut chunk = slice.lock();
                spmm_rows_quant_with(kd, a, hq, &mut chunk, *first_row, first_row + rows, k);
            }
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::spmm_sequential;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sparse::Coo;

    fn random_dense(rng: &mut StdRng, r: usize, c: usize) -> DenseMatrix {
        let data = (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(r, c, data).unwrap()
    }

    #[test]
    fn hybrid_matches_sequential_on_star_graph() {
        // One hub touching every vertex plus a sparse tail: the acceptance
        // shape for hub/tail partitioning.
        let n = 500;
        let mut coo = Coo::new(n, n);
        let mut rng = StdRng::seed_from_u64(21);
        for v in 1..n {
            coo.push(0, v, rng.gen_range(-1.0..1.0));
        }
        for _ in 0..n {
            coo.push(
                rng.gen_range(1..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            );
        }
        let a = Csr::from_coo(&coo);
        let h = random_dense(&mut rng, n, 17);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [2, 4, 7, 16] {
            let got = spmm_hybrid(&a, &h, threads).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-3,
                "threads={threads} diverged by {}",
                reference.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn hybrid_matches_sequential_on_uniform_graph() {
        // No hubs at all: the kernel must degrade to pure tail chunks.
        let mut rng = StdRng::seed_from_u64(22);
        let n = 300;
        let mut coo = Coo::new(n, n);
        for u in 0..n {
            for _ in 0..5 {
                coo.push(u, rng.gen_range(0..n), rng.gen_range(-1.0..1.0));
            }
        }
        let a = Csr::from_coo(&coo);
        let h = random_dense(&mut rng, n, 8);
        let reference = spmm_sequential(&a, &h).unwrap();
        for threads in [2, 8] {
            let got = spmm_hybrid(&a, &h, threads).unwrap();
            assert!(reference.max_abs_diff(&got) < 1e-4);
        }
    }

    #[test]
    fn hybrid_handles_degenerate_inputs() {
        let a = Csr::empty(5, 5);
        let h = DenseMatrix::zeros(5, 3);
        assert!(spmm_hybrid(&a, &h, 4)
            .unwrap()
            .as_slice()
            .iter()
            .all(|&x| x == 0.0));
        let h0 = DenseMatrix::zeros(5, 0);
        assert_eq!(spmm_hybrid(&a, &h0, 4).unwrap().shape(), (5, 0));
        assert!(matches!(
            spmm_hybrid(&a, &h, 0),
            Err(MatrixError::ZeroThreads)
        ));
        let bad = DenseMatrix::zeros(6, 2);
        assert!(spmm_hybrid(&a, &bad, 2).is_err());
    }

    #[test]
    fn hybrid_into_reuses_buffers_without_stale_values() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut coo = Coo::new(100, 100);
        for v in 1..100 {
            coo.push(0, v, 1.0); // hub
        }
        for _ in 0..200 {
            coo.push(
                rng.gen_range(0..100),
                rng.gen_range(0..100),
                rng.gen_range(-1.0..1.0),
            );
        }
        let a = Csr::from_coo(&coo);
        let h = random_dense(&mut rng, 100, 6);
        let reference = spmm_sequential(&a, &h).unwrap();
        let mut buf = DenseMatrix::filled(200, 9, f32::NAN);
        spmm_hybrid_into(&a, &h, 4, &mut buf).unwrap();
        assert!(reference.max_abs_diff(&buf) < 1e-4);
        spmm_hybrid_into(&a, &h, 4, &mut buf).unwrap();
        assert!(reference.max_abs_diff(&buf) < 1e-4);
    }

    #[test]
    fn hybrid_quant_matches_decoded_sequential_on_star_graph() {
        // Hub + sparse tail: both the segment-accumulate hub path and the
        // chunked tail path run, now reading narrow storage.
        let n = 400;
        let mut coo = Coo::new(n, n);
        let mut rng = StdRng::seed_from_u64(27);
        for v in 1..n {
            coo.push(0, v, rng.gen_range(-1.0..1.0));
        }
        for _ in 0..n {
            coo.push(
                rng.gen_range(1..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            );
        }
        let a = Csr::from_coo(&coo);
        let h = random_dense(&mut rng, n, 13);
        let mut q = matrix::QuantMatrix::new();
        let mut decoded = DenseMatrix::default();
        for p in [
            matrix::Precision::Bf16,
            matrix::Precision::F16,
            matrix::Precision::Int8,
        ] {
            q.encode(&h, p).unwrap();
            q.decode(&mut decoded);
            let reference = spmm_sequential(&a, &decoded).unwrap();
            for threads in [1, 2, 4] {
                let mut out = DenseMatrix::default();
                spmm_hybrid_quant_into(&a, &q, threads, &mut out).unwrap();
                assert!(
                    reference.max_abs_diff(&out) < 1e-3,
                    "{p} threads={threads} diverged by {}",
                    reference.max_abs_diff(&out)
                );
            }
        }
    }
}
