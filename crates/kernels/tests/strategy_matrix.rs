//! Cross-strategy correctness matrix: every `SpmmStrategy` (including
//! `Auto`) must agree with the sequential reference on both a skewed
//! (RMAT power-law) and a near-uniform (Erdős–Rényi) graph, across the
//! thread counts and embedding widths the paper's sweeps exercise.

use graph::generators::erdos_renyi;
use graph::rmat::RmatConfig;
use graph::Graph;
use kernels::spmm::spmm_sequential;
use kernels::SpmmStrategy;
use matrix::DenseMatrix;
use sparse::Csr;

const THREADS: [usize; 4] = [1, 2, 7, 16];
const WIDTHS: [usize; 3] = [1, 8, 300];

fn fixtures() -> Vec<(&'static str, Csr, Graph)> {
    let skewed = Graph::rmat(&RmatConfig::power_law(8, 8), 13);
    let uniform = erdos_renyi(300, 1800, 14);
    [("rmat-power-law", skewed), ("erdos-renyi", uniform)]
        .into_iter()
        .map(|(name, g)| {
            let a_hat = g.normalized_adjacency().unwrap();
            (name, a_hat, g)
        })
        .collect()
}

#[test]
fn every_strategy_matches_sequential_across_graphs_threads_and_widths() {
    for (name, a_hat, graph) in fixtures() {
        for k in WIDTHS {
            let h = graph.random_features(k, 99);
            let reference = spmm_sequential(&a_hat, &h).unwrap();
            for threads in THREADS {
                let strategies = [
                    SpmmStrategy::VertexParallel { threads },
                    SpmmStrategy::EdgeParallel { threads },
                    SpmmStrategy::FeatureParallel { threads },
                    SpmmStrategy::Hybrid { threads },
                    SpmmStrategy::FeatureTiled { tile: threads * 3 },
                ];
                for strategy in strategies {
                    let got = strategy.run(&a_hat, &h).unwrap();
                    assert!(
                        reference.max_abs_diff(&got) < 1e-3,
                        "{name} k={k} {strategy} diverged by {}",
                        reference.max_abs_diff(&got)
                    );
                }
            }
            // Auto resolves from the operands, independent of a thread knob.
            let got = SpmmStrategy::Auto.run(&a_hat, &h).unwrap();
            assert!(
                reference.max_abs_diff(&got) < 1e-3,
                "{name} k={k} auto ({}) diverged",
                SpmmStrategy::select(&a_hat, k)
            );
        }
    }
}

#[test]
fn auto_reuses_one_buffer_across_heterogeneous_shapes() {
    // Auto may switch kernels between calls; the shared output buffer must
    // still come back exact each time.
    let mut buf = DenseMatrix::filled(4, 4, f32::NAN);
    for (_, a_hat, graph) in fixtures() {
        for k in WIDTHS {
            let h = graph.random_features(k, 7);
            let reference = spmm_sequential(&a_hat, &h).unwrap();
            SpmmStrategy::Auto.run_into(&a_hat, &h, &mut buf).unwrap();
            assert!(reference.max_abs_diff(&buf) < 1e-3);
        }
    }
}
