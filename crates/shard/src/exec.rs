//! The shard execution hot loop: a dependency-counting task-graph
//! executor over the shared worker pool, plus the two memory-bound
//! kernels every sharded layer schedules — halo gather and column-block
//! accumulation.
//!
//! "Kernel on shard" and "halo exchange" are both just task IDs here. A
//! [`TaskGraph`] is a static DAG (built once per layer shape, reused every
//! call); [`TaskGraph::run`] drains it with the pool's workers using a
//! shared ready queue and per-task dependency counters, so shards whose
//! halos arrive early start aggregating while other shards are still
//! exchanging — the same overlap a PIUMA node gets from its hardware DMA
//! engines. A task body that panics poisons the run: its dependents are
//! never released, every worker drains out, and the caller gets
//! [`ExecError::TaskPanicked`] instead of a deadlock.

// BOUNDS: all `[]` indexing in this module is over vectors sized in
// lock-step with the task count at graph construction (`dependents` and
// `indegree` are `tasks` long and task IDs only ever come from those
// structures), or over rows/columns the partition layer validated when it
// built the shard-local CSR (`refs` entries are in-range columns of the
// source matrix; local column indices were checked by `Csr::from_raw`).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};

use matrix::microkernel::KernelDispatch;
use matrix::DenseMatrix;
use sparse::Csr;

/// Why a task-graph run failed to drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The ready queue emptied with tasks still pending and none running —
    /// a dependency cycle, or dependents of a failed task.
    Stalled {
        /// Tasks that never became ready.
        remaining: usize,
    },
    /// A task body panicked; its dependents were withheld and the run
    /// drained early.
    TaskPanicked,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Stalled { remaining } => {
                write!(f, "task graph stalled with {remaining} tasks unreleased")
            }
            ExecError::TaskPanicked => write!(f, "a shard task panicked"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The first panic observed during a tracked run: which task it hit (if
/// attributable) and the rendered panic payload, so supervision layers can
/// turn it into a typed shard-down event instead of an opaque
/// [`ExecError::TaskPanicked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// The failing task's ID, or `None` when the panic surfaced on the
    /// caller instead of inside a task body (a pool worker-share panic
    /// re-raised by `broadcast` after the run drained).
    pub task: Option<usize>,
    /// The panic payload rendered to text (fault-site string for injected
    /// panics).
    pub message: String,
}

/// Per-task completion record of one [`TaskGraph::run_tracked`] call.
///
/// Recovery layers use the `done` flags to re-execute exactly the tasks a
/// poisoned run withheld: every completed task's outputs are still in its
/// stage/row buffers, so replaying the incomplete suffix from those
/// buffers reproduces the fault-free result bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTrace {
    /// `done[t]` is true iff task `t` ran to completion (its body returned
    /// without panicking).
    pub done: Vec<bool>,
    /// The first panic observed, if any (dependents of the failing task
    /// were withheld).
    pub failure: Option<TaskFailure>,
    /// Tasks that never completed (failed, withheld, or unreleasable).
    pub remaining: usize,
}

impl RunTrace {
    /// True when every task ran to completion.
    pub fn complete(&self) -> bool {
        self.failure.is_none() && self.remaining == 0
    }

    /// The trace folded back to the untracked [`TaskGraph::run`] verdict.
    pub fn error(&self) -> Option<ExecError> {
        if self.failure.is_some() {
            Some(ExecError::TaskPanicked)
        } else if self.remaining > 0 {
            Some(ExecError::Stalled {
                remaining: self.remaining,
            })
        } else {
            None
        }
    }
}

/// Mutable frontier of one [`TaskGraph::run`] call.
struct RunState {
    ready: VecDeque<usize>,
    indegree: Vec<usize>,
    done: Vec<bool>,
    remaining: usize,
    running: usize,
    failed: Option<TaskFailure>,
    stalled: usize,
}

/// A static task DAG scheduled over the worker pool.
///
/// Nodes are `0..tasks`; edges say "dependent cannot start before
/// dependency finishes". The graph itself is immutable during a run, so
/// one graph built per layer shape is reused across inference calls.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    dependents: Vec<Vec<usize>>,
    indegree: Vec<usize>,
}

impl TaskGraph {
    /// An edgeless graph of `tasks` nodes (all immediately ready).
    pub fn new(tasks: usize) -> TaskGraph {
        TaskGraph {
            // lint:allow(L005): graph construction, paid once per layer
            // shape and reused across every inference call.
            dependents: vec![Vec::new(); tasks],
            // lint:allow(L005): graph construction, paid once per layer.
            indegree: vec![0; tasks],
        }
    }

    /// Declares that `task` cannot start until `dep` has finished.
    pub fn add_dep(&mut self, task: usize, dep: usize) {
        debug_assert!(task < self.indegree.len() && dep < self.indegree.len());
        debug_assert_ne!(task, dep, "a task cannot depend on itself");
        self.dependents[dep].push(task);
        self.indegree[task] += 1;
    }

    /// Number of tasks in the graph.
    pub fn tasks(&self) -> usize {
        self.indegree.len()
    }

    /// Drains the graph with up to `workers` pool lanes, calling
    /// `run_task(id)` exactly once per task, dependencies before
    /// dependents. Blocks until every task ran or the run poisoned.
    ///
    /// # Errors
    ///
    /// [`ExecError::TaskPanicked`] if a task body panicked (the payload is
    /// swallowed; record task-level errors out of band), and
    /// [`ExecError::Stalled`] if tasks remain unreleasable — a dependency
    /// cycle. Both leave the pool healthy.
    pub fn run<F: Fn(usize) + Sync>(&self, workers: usize, run_task: F) -> Result<(), ExecError> {
        match self.run_tracked(workers, run_task).error() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// [`TaskGraph::run`] with a per-task completion trace: drains the
    /// graph the same way but returns which tasks completed, which panic
    /// poisoned the run (with its rendered payload and task ID), and how
    /// many tasks were withheld — the raw material for task-level
    /// recovery. A pool worker-share panic that re-raises on the caller is
    /// captured as a [`TaskFailure`] with no task ID rather than
    /// unwinding.
    pub fn run_tracked<F: Fn(usize) + Sync>(&self, workers: usize, run_task: F) -> RunTrace {
        let total = self.indegree.len();
        if total == 0 {
            return RunTrace {
                // lint:allow(L005): empty-graph early return, no tasks.
                done: Vec::new(),
                failure: None,
                remaining: 0,
            };
        }
        let mut ready = VecDeque::with_capacity(total);
        for (t, &d) in self.indegree.iter().enumerate() {
            if d == 0 {
                ready.push_back(t);
            }
        }
        let state = Mutex::new(RunState {
            ready,
            indegree: self.indegree.clone(),
            // lint:allow(L005): per-run completion flags, one bool per
            // task — the allocation recovery tracking exists to serve.
            done: vec![false; total],
            remaining: total,
            running: 0,
            failed: None,
            stalled: 0,
        });
        let done = Condvar::new();
        let lanes = workers.clamp(1, pool::global().width());

        let shared = catch_unwind(AssertUnwindSafe(|| {
            pool::global().broadcast(lanes, lanes, |_lane| loop {
                let task = {
                    let mut st = lock(&state);
                    loop {
                        if st.failed.is_some() || st.stalled > 0 || st.remaining == 0 {
                            return;
                        }
                        if let Some(t) = st.ready.pop_front() {
                            st.running += 1;
                            break t;
                        }
                        if st.running == 0 {
                            // Nothing ready, nothing running, tasks
                            // pending: the graph cannot make progress.
                            st.stalled = st.remaining;
                            done.notify_all();
                            return;
                        }
                        st = wait(&done, st);
                    }
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| run_task(task)));
                let mut st = lock(&state);
                st.running -= 1;
                match outcome {
                    Ok(()) => {
                        st.remaining -= 1;
                        st.done[task] = true;
                        for &d in &self.dependents[task] {
                            st.indegree[d] -= 1;
                            if st.indegree[d] == 0 {
                                st.ready.push_back(d);
                            }
                        }
                    }
                    Err(payload) => {
                        // Withhold the dependents; every waiter drains
                        // out. Keep the first failure only.
                        if st.failed.is_none() {
                            st.failed = Some(TaskFailure {
                                task: Some(task),
                                message: resilience::retry::panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
                if st.failed.is_some()
                    || st.remaining == 0
                    || !st.ready.is_empty()
                    || st.running == 0
                {
                    done.notify_all();
                }
            });
        }));

        let mut st = resilience::audit::recover_into("shard.exec.final", state);
        if let Err(payload) = shared {
            // A worker-share panic re-raised on the caller after the
            // broadcast drained; no task is attributable, but the run is
            // poisoned all the same (some task bodies may never have run).
            st.failed.get_or_insert(TaskFailure {
                task: None,
                message: resilience::retry::panic_message(payload.as_ref()),
            });
        }
        RunTrace {
            done: st.done,
            failure: st.failed,
            remaining: st.remaining,
        }
    }
}

/// Locks ignoring poisoning: the executor's own catch_unwind keeps task
/// panics from unwinding through a held guard, and a poisoned frontier is
/// discarded at the end of the run anyway. Routed through the audit
/// helpers so any recovery still shows up in the recovery log.
fn lock<'m>(state: &'m Mutex<RunState>) -> MutexGuard<'m, RunState> {
    resilience::audit::recover("shard.exec.state", state)
}

/// [`Condvar::wait`] ignoring poisoning (see [`lock`]).
fn wait<'m>(cv: &Condvar, guard: MutexGuard<'m, RunState>) -> MutexGuard<'m, RunState> {
    resilience::audit::recover_wait("shard.exec.wait", cv, guard)
}

/// The halo-exchange copy kernel: stages the feature rows listed in `refs`
/// (global row IDs of `src`) into the dense `stage` buffer, one staged row
/// per reference, in ascending reference order. Models a PIUMA node
/// DMA-gathering remote rows from the distributed global address space
/// into a local landing buffer; the explicit copy is what makes the
/// communication volume measurable. Returns the bytes staged.
///
/// Idempotent by construction (pure copy into an exclusively-held buffer),
/// so callers retry it verbatim when the fault injector fires.
pub fn gather_rows(stage: &mut DenseMatrix, src: &DenseMatrix, refs: &[u32]) -> u64 {
    // lint:allow(L008): disabled fault points compile to one static bool
    // load per exchange task (not per row), far below the copy cost.
    resilience::fault_point!("shard.exchange");
    let width = src.cols();
    stage.resize_for_overwrite(refs.len(), width);
    for (slot, &g) in refs.iter().enumerate() {
        stage.row_mut(slot).copy_from_slice(src.row(g as usize));
    }
    (refs.len() * width * 4) as u64
}

/// Stages the contiguous global row range `r0..r1` of `src` into `dst`
/// (row `g` lands in local slot `g - r0`): the hidden-state staging copy a
/// PIUMA node performs before a dense sub-GEMM, made explicit so the
/// staged traffic is measurable and the fault injector can reach it.
/// Returns the bytes staged.
///
/// Idempotent by construction (pure copy into an exclusively-held buffer),
/// so callers retry it verbatim when the fault injector fires.
pub fn stage_block(dst: &mut DenseMatrix, src: &DenseMatrix, r0: usize, r1: usize) -> u64 {
    // lint:allow(L008): disabled fault points compile to one static bool
    // load per staging task (not per row), far below the copy cost.
    resilience::fault_point!("shard.stage");
    let width = src.cols();
    dst.resize_for_overwrite(r1 - r0, width);
    for (lu, g) in (r0..r1).enumerate() {
        dst.row_mut(lu).copy_from_slice(src.row(g));
    }
    ((r1 - r0) * width * 4) as u64
}

/// The inverse copy of [`stage_block`]: scatters the local rows of `src`
/// back to the global row range `r0..r1` of `dst` (local slot `g - r0`
/// lands in row `g`). `dst` must already be sized; only the target range
/// is written. Returns the bytes scattered.
///
/// Idempotent by construction (pure copy into an exclusively-held row
/// range), so callers retry it verbatim when the fault injector fires.
pub fn scatter_block(dst: &mut DenseMatrix, src: &DenseMatrix, r0: usize, r1: usize) -> u64 {
    // lint:allow(L008): disabled fault points compile to one static bool
    // load per scatter task (not per row), far below the copy cost.
    resilience::fault_point!("shard.scatter");
    let width = src.cols();
    for (lu, g) in (r0..r1).enumerate() {
        dst.row_mut(g).copy_from_slice(src.row(lu));
    }
    ((r1 - r0) * width * 4) as u64
}

/// Accumulates one 2D column block into a row block's accumulator:
/// `acc[u] += Σ local[u, lc] * stage[lc]` with each row's non-zeros walked
/// in ascending column order through the same element-wise
/// [`KernelDispatch::axpy`] the single-node row loops use. Because the
/// partition keeps per-row column order and blocks are accumulated in
/// ascending block order, the floating-point sequence per output element
/// is identical to the unsharded sequential walk — this is the kernel that
/// makes 2D sharding bitwise-exact.
pub fn accumulate_block(
    kd: KernelDispatch,
    local: &Csr,
    stage: &DenseMatrix,
    acc: &mut DenseMatrix,
) {
    debug_assert_eq!(acc.rows(), local.nrows());
    debug_assert_eq!(stage.rows(), local.ncols());
    debug_assert_eq!(stage.cols(), acc.cols());
    for u in 0..local.nrows() {
        let cols = local.row_cols(u);
        let vals = local.row_values(u);
        let y = acc.row_mut(u);
        for (&lc, &v) in cols.iter().zip(vals) {
            kd.axpy(y, v, stage.row(lc as usize));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_graph_is_a_noop() {
        let g = TaskGraph::new(0);
        assert_eq!(g.run(4, |_| {}), Ok(()));
    }

    #[test]
    fn runs_every_task_exactly_once_in_dependency_order() {
        // Chain 0 -> 1 -> 2 plus a free task 3.
        let mut g = TaskGraph::new(4);
        g.add_dep(1, 0);
        g.add_dep(2, 1);
        let order = Mutex::new(Vec::new());
        g.run(4, |t| order.lock().unwrap().push(t)).unwrap();
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 4);
        let pos = |t: usize| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn diamond_joins_wait_for_both_parents() {
        // 0 -> {1, 2} -> 3, many times to shake out races.
        for _ in 0..50 {
            let mut g = TaskGraph::new(4);
            g.add_dep(1, 0);
            g.add_dep(2, 0);
            g.add_dep(3, 1);
            g.add_dep(3, 2);
            let hits = AtomicUsize::new(0);
            g.run(4, |t| {
                if t == 3 {
                    assert_eq!(hits.load(Ordering::SeqCst), 3);
                }
                hits.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
            assert_eq!(hits.into_inner(), 4);
        }
    }

    #[test]
    fn cycles_stall_instead_of_deadlocking() {
        let mut g = TaskGraph::new(3);
        g.add_dep(1, 0);
        g.add_dep(0, 1); // 0 <-> 1 cycle; 2 is free.
        let ran = AtomicUsize::new(0);
        let err = g.run(2, |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(err, Err(ExecError::Stalled { remaining: 2 }));
        assert_eq!(ran.into_inner(), 1, "only the free task ran");
    }

    #[test]
    fn a_panicking_task_withholds_dependents() {
        let _quiet = resilience::retry::quiet_panics();
        let mut g = TaskGraph::new(3);
        g.add_dep(1, 0);
        g.add_dep(2, 1);
        let ran = AtomicUsize::new(0);
        let err = g.run(2, |t| {
            if t == 0 {
                panic!("injected test failure in task 0");
            }
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(err, Err(ExecError::TaskPanicked));
        assert_eq!(ran.into_inner(), 0, "dependents of the failure never ran");
    }

    #[test]
    fn gather_rows_copies_in_reference_order_and_counts_bytes() {
        let src =
            DenseMatrix::from_rows(&[&[0.0, 1.0], &[10.0, 11.0], &[20.0, 21.0], &[30.0, 31.0]])
                .unwrap();
        let mut stage = DenseMatrix::default();
        let bytes = gather_rows(&mut stage, &src, &[3, 1]);
        assert_eq!(bytes, 2 * 2 * 4);
        assert_eq!(stage.row(0), &[30.0, 31.0]);
        assert_eq!(stage.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn accumulate_block_matches_a_manual_walk() {
        let mut coo = sparse::Coo::new(2, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 2, -1.0);
        coo.push(1, 1, 0.5);
        let local = Csr::from_coo(&coo);
        let stage = DenseMatrix::from_rows(&[&[1.0, 2.0], &[4.0, 8.0], &[16.0, 32.0]]).unwrap();
        let mut acc = DenseMatrix::from_rows(&[&[100.0, 100.0], &[100.0, 100.0]]).unwrap();
        accumulate_block(KernelDispatch::get(), &local, &stage, &mut acc);
        assert_eq!(acc.row(0), &[100.0 + 2.0 - 16.0, 100.0 + 4.0 - 32.0]);
        assert_eq!(acc.row(1), &[102.0, 104.0]);
    }
}
