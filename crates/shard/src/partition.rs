//! NNZ-balanced 1D / 2D partitioning of a CSR adjacency across workers.
//!
//! A [`ShardPlan`] cuts a square adjacency into `workers` blocks — either
//! 1D contiguous row blocks or a 2D grid of (row range x column range)
//! blocks — with boundaries found by the same merge-path binary search the
//! single-node planner uses ([`kernels::plan::nnz_balanced_partition`]).
//! Each block gets a **local CSR** over only the columns it references,
//! plus a **halo map**: the referenced rows whose activations live on
//! another worker and must be fetched before the block can aggregate.
//!
//! Ownership follows the PIUMA DGAS layout: global activation row `r`
//! lives on the worker whose row range *and* column range both contain
//! `r`, so every row has exactly one home and 1D degenerates to the
//! classic "each worker owns its row block" distribution.

use kernels::fused::FusedOrder;
use kernels::plan::nnz_balanced_partition;
use sparse::Csr;

use crate::ShardError;

/// How the adjacency is cut across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// `N` contiguous NNZ-balanced row blocks (each worker owns whole
    /// rows and gathers every referenced column).
    Rows1D,
    /// An `R x C` grid (`R * C = N`, as square as `N`'s divisors allow):
    /// each worker owns one row-range x column-range block, aggregation
    /// partials flow along grid rows.
    Grid2D,
}

impl PartitionKind {
    /// Grid shape `(row_blocks, col_blocks)` for `workers` workers.
    /// `Rows1D` maps to `(workers, 1)`; `Grid2D` picks the divisor pair of
    /// `workers` closest to a square (so 2 -> 1x2, 4 -> 2x2, 8 -> 2x4).
    pub fn grid(self, workers: usize) -> (usize, usize) {
        let workers = workers.max(1);
        match self {
            PartitionKind::Rows1D => (workers, 1),
            PartitionKind::Grid2D => {
                let mut r = (workers as f64).sqrt().floor() as usize;
                while r > 1 && !workers.is_multiple_of(r) {
                    r -= 1;
                }
                (r.max(1), workers / r.max(1))
            }
        }
    }

    /// Short lowercase name used in bench JSON and CI matrix filters.
    pub fn name(self) -> &'static str {
        match self {
            PartitionKind::Rows1D => "1d",
            PartitionKind::Grid2D => "2d",
        }
    }
}

impl std::fmt::Display for PartitionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exactly-`parts` boundary wrapper over
/// [`kernels::plan::nnz_balanced_partition`].
///
/// The underlying merge-path split returns *at most* `parts + 1` strictly
/// increasing boundaries — a hub row that swallows several targets, or
/// fewer rows than parts, collapses slots. Sharding needs a fixed worker
/// count, so this pads the boundary vector with trailing copies of
/// `nrows`: the result always has `parts + 1` non-decreasing entries,
/// starts at 0, ends at `nrows`, and workers past the realized split own
/// empty (zero-row) shards.
pub fn shard_bounds(row_ptr: &[usize], parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let n = row_ptr.len().saturating_sub(1);
    let mut bounds = nnz_balanced_partition(row_ptr, parts);
    while bounds.len() < parts + 1 {
        bounds.push(n);
    }
    bounds
}

/// Row-block boundaries balanced on the *fused-layer* work of each row:
/// its non-zeros (aggregation cost) plus one mean-degree unit (dense
/// update cost, which is per-row). Runs [`shard_bounds`] over the scaled
/// prefix `row_ptr[i] * nrows + i * nnz`, so a pure-power-law hub block
/// doesn't starve its GEMM while a tail block drowns in rows — on
/// uniform-degree graphs this is exactly the NNZ split.
pub fn row_work_bounds(row_ptr: &[usize], parts: usize) -> Vec<usize> {
    let n = row_ptr.len().saturating_sub(1);
    let nnz = row_ptr.last().copied().unwrap_or(0);
    let mut prefix = vec![0usize; n + 1];
    for (i, p) in prefix.iter_mut().enumerate() {
        *p = row_ptr[i] * n.max(1) + i * nnz.max(1);
    }
    shard_bounds(&prefix, parts)
}

/// Column-direction analogue of [`shard_bounds`]: builds the column
/// non-zero prefix (a transposed `row_ptr`) and NNZ-balances column
/// ranges over it, so 2D grids balance incoming as well as outgoing
/// edges.
pub fn col_shard_bounds(a: &Csr, parts: usize) -> Vec<usize> {
    let mut prefix = vec![0usize; a.ncols() + 1];
    for &c in a.col_idx() {
        prefix[c as usize + 1] += 1;
    }
    for i in 0..a.ncols() {
        prefix[i + 1] += prefix[i];
    }
    shard_bounds(&prefix, parts)
}

/// One worker's block of the partitioned adjacency.
#[derive(Debug, Clone)]
pub struct ShardBlock {
    /// Grid coordinates `(i, j)` of this block.
    pub grid_pos: (usize, usize),
    /// Global row range `[row_start, row_end)` this block aggregates into.
    pub row_start: usize,
    /// End of the global row range (exclusive).
    pub row_end: usize,
    /// Global column range `[col_start, col_end)` this block reads from.
    pub col_start: usize,
    /// End of the global column range (exclusive).
    pub col_end: usize,
    /// Local CSR: `(row_end - row_start)` rows over `refs.len()` columns;
    /// local column `l` is global column `refs[l]`.
    pub local: Csr,
    /// Referenced global columns, ascending — the rows whose features
    /// this block needs staged before it can aggregate.
    pub refs: Vec<u32>,
    /// The halo: the subset of `refs` owned by other workers (outside
    /// this block's own row range) whose features must cross the network.
    pub halo: Vec<u32>,
}

impl ShardBlock {
    /// Rows this block owns (`row_end - row_start`).
    pub fn rows(&self) -> usize {
        self.row_end - self.row_start
    }

    /// Non-zeros in the local CSR block.
    pub fn nnz(&self) -> usize {
        self.local.nnz()
    }

    /// Global activation rows homed on this worker: the intersection of
    /// its row and column ranges (see module docs on ownership).
    pub fn owned_range(&self) -> (usize, usize) {
        let lo = self.row_start.max(self.col_start);
        let hi = self.row_end.min(self.col_end);
        (lo, hi.max(lo))
    }
}

/// Static communication cost of one sharded GCN layer, in bytes.
///
/// All three components are derived from the partition alone (they do not
/// depend on feature values), so the same ledger drives both the runtime
/// counters and the `piuma-sim` mirror.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerExchange {
    /// Association order the fused layer picks for these widths.
    pub order: FusedOrder,
    /// Feature width of the aggregation (`k_in` aggregate-first, `k_out`
    /// update-first).
    pub agg_width: usize,
    /// Halo rows fetched across workers, summed over blocks.
    pub halo_rows: usize,
    /// Referenced rows staged (local + halo), summed over blocks.
    pub referenced_rows: usize,
    /// Bytes of remote feature rows gathered before aggregation.
    pub gather_bytes: u64,
    /// Bytes of partial-accumulator handoffs along 2D grid rows
    /// (`(C - 1)` hops per row block); zero for 1D.
    pub reduce_bytes: u64,
    /// Bytes written back to rows homed on other workers after the
    /// update/activation; zero for 1D.
    pub scatter_bytes: u64,
    /// Update-first only: bytes of `H` rows the per-row-block GEMM reads
    /// from other workers; zero for aggregate-first and for 1D.
    pub mid_gather_bytes: u64,
}

impl LayerExchange {
    /// Total bytes crossing worker boundaries for this layer.
    pub fn total_bytes(&self) -> u64 {
        self.gather_bytes + self.reduce_bytes + self.scatter_bytes + self.mid_gather_bytes
    }
}

/// An NNZ-balanced 1D or 2D partition of one square adjacency.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    kind: PartitionKind,
    grid: (usize, usize),
    row_bounds: Vec<usize>,
    col_bounds: Vec<usize>,
    blocks: Vec<ShardBlock>,
    nrows: usize,
    nnz: usize,
}

impl ShardPlan {
    /// Partitions `a` across `workers` blocks of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::NotSquare`] for a non-square adjacency (the
    /// DGAS ownership map needs row and column index spaces to coincide)
    /// and [`ShardError::ZeroWorkers`] for `workers == 0`.
    pub fn new(a: &Csr, workers: usize, kind: PartitionKind) -> Result<ShardPlan, ShardError> {
        if a.nrows() != a.ncols() {
            return Err(ShardError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        if workers == 0 {
            return Err(ShardError::ZeroWorkers);
        }
        let (r, c) = kind.grid(workers);
        let row_bounds = row_work_bounds(a.row_ptr(), r);
        let col_bounds = if c == 1 {
            vec![0, a.ncols()]
        } else {
            col_shard_bounds(a, c)
        };
        let mut blocks = Vec::with_capacity(r * c);
        for i in 0..r {
            for j in 0..c {
                blocks.push(build_block(
                    a,
                    (i, j),
                    (row_bounds[i], row_bounds[i + 1]),
                    (col_bounds[j], col_bounds[j + 1]),
                )?);
            }
        }
        Ok(ShardPlan {
            kind,
            grid: (r, c),
            row_bounds,
            col_bounds,
            blocks,
            nrows: a.nrows(),
            nnz: a.nnz(),
        })
    }

    /// Number of workers (= blocks).
    pub fn workers(&self) -> usize {
        self.blocks.len()
    }

    /// The partition kind this plan was built with.
    pub fn kind(&self) -> PartitionKind {
        self.kind
    }

    /// Grid shape `(row_blocks, col_blocks)`.
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Row-block boundaries (`row_blocks + 1` non-decreasing entries).
    pub fn row_bounds(&self) -> &[usize] {
        &self.row_bounds
    }

    /// Column-block boundaries (`col_blocks + 1` non-decreasing entries).
    pub fn col_bounds(&self) -> &[usize] {
        &self.col_bounds
    }

    /// The blocks, row-major: block `(i, j)` is at index `i * C + j`.
    pub fn blocks(&self) -> &[ShardBlock] {
        &self.blocks
    }

    /// Vertex count of the partitioned adjacency.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Non-zeros of the partitioned adjacency (the blocks tile it, so
    /// their local nnz sums to this).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The worker that **homes** global activation row `row`: the unique
    /// block whose row range and column range both contain it (the DGAS
    /// ownership map in the module docs). The serving router uses this to
    /// attribute per-vertex inference requests to the shard that produces
    /// the row. `None` for rows outside the partitioned index space.
    ///
    /// `row_bounds`/`col_bounds` may carry duplicate (empty-block)
    /// boundaries; `partition_point` lands past every duplicate, so empty
    /// blocks are never reported as owners.
    pub fn owner_of_row(&self, row: usize) -> Option<usize> {
        if row >= self.nrows {
            return None;
        }
        let i = self.row_bounds.partition_point(|&b| b <= row) - 1;
        let j = self.col_bounds.partition_point(|&b| b <= row) - 1;
        let (_, c) = self.grid;
        Some(i * c + j)
    }

    /// Per-worker non-zero counts, block order.
    pub fn shard_nnz(&self) -> Vec<usize> {
        self.blocks.iter().map(ShardBlock::nnz).collect()
    }

    /// `max_shard_nnz / (nnz / workers)` — 1.0 is a perfect split.
    pub fn imbalance(&self) -> f64 {
        let ideal = self.nnz as f64 / self.workers() as f64;
        if ideal <= 0.0 {
            return 1.0;
        }
        let max = self.blocks.iter().map(ShardBlock::nnz).max().unwrap_or(0);
        max as f64 / ideal
    }

    /// Total halo rows across blocks (rows fetched from other workers).
    pub fn halo_rows(&self) -> usize {
        self.blocks.iter().map(|b| b.halo.len()).sum()
    }

    /// Total referenced rows across blocks (staged local + halo).
    pub fn referenced_rows(&self) -> usize {
        self.blocks.iter().map(|b| b.refs.len()).sum()
    }

    /// `halo_rows / referenced_rows` — the fraction of staged feature
    /// rows that actually cross the network.
    pub fn halo_fraction(&self) -> f64 {
        let refs = self.referenced_rows();
        if refs == 0 {
            return 0.0;
        }
        self.halo_rows() as f64 / refs as f64
    }

    /// The static exchange ledger of one GCN layer with weight shape
    /// `(k_in, k_out)`, mirroring the fused layer's association order.
    pub fn layer_exchange(&self, k_in: usize, k_out: usize) -> LayerExchange {
        let order = if k_in <= k_out {
            FusedOrder::AggregateFirst
        } else {
            FusedOrder::UpdateFirst
        };
        let agg_width = match order {
            FusedOrder::AggregateFirst => k_in,
            FusedOrder::UpdateFirst => k_out,
        };
        let (r, c) = self.grid;
        let halo_rows = self.halo_rows();
        let referenced_rows = self.referenced_rows();
        let gather_bytes = (halo_rows * agg_width * 4) as u64;
        let mut reduce_rows = 0usize;
        let mut scatter_rows = 0usize;
        for i in 0..r {
            let rows_i = self.row_bounds[i + 1] - self.row_bounds[i];
            reduce_rows += (c - 1) * rows_i;
            // The update/finish of row block i runs where its accumulator
            // chain ends: worker (i, C-1). Rows homed elsewhere in the
            // grid row are written back across the network.
            let last = &self.blocks[i * c + (c - 1)];
            let (o_lo, o_hi) = last.owned_range();
            scatter_rows += rows_i - (o_hi - o_lo);
        }
        let reduce_bytes = (reduce_rows * agg_width * 4) as u64;
        let scatter_bytes = (scatter_rows * k_out * 4) as u64;
        // Update-first: the per-row-block GEMM reads all of its H rows at
        // k_in before aggregation; the same non-owned rows are remote.
        let mid_gather_bytes = match order {
            FusedOrder::UpdateFirst => (scatter_rows * k_in * 4) as u64,
            FusedOrder::AggregateFirst => 0,
        };
        LayerExchange {
            order,
            agg_width,
            halo_rows,
            referenced_rows,
            gather_bytes,
            reduce_bytes,
            scatter_bytes,
            mid_gather_bytes,
        }
    }
}

/// Builds one block: local CSR over referenced columns plus the halo map.
fn build_block(
    a: &Csr,
    grid_pos: (usize, usize),
    (row_start, row_end): (usize, usize),
    (col_start, col_end): (usize, usize),
) -> Result<ShardBlock, ShardError> {
    let mut refs: Vec<u32> = Vec::new();
    for u in row_start..row_end {
        for &col in a.row_cols(u) {
            let g = col as usize;
            if g >= col_start && g < col_end {
                refs.push(col);
            }
        }
    }
    refs.sort_unstable();
    refs.dedup();

    let mut row_ptr = Vec::with_capacity(row_end - row_start + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for u in row_start..row_end {
        for (&col, &v) in a.row_cols(u).iter().zip(a.row_values(u)) {
            let g = col as usize;
            if g >= col_start && g < col_end {
                let l = refs
                    .binary_search(&col)
                    .expect("column collected into refs above");
                col_idx.push(l as u32);
                values.push(v);
            }
        }
        row_ptr.push(col_idx.len());
    }
    let local = Csr::from_raw(row_end - row_start, refs.len(), row_ptr, col_idx, values)
        .map_err(|e| ShardError::Partition(e.to_string()))?;
    let halo = refs
        .iter()
        .copied()
        .filter(|&g| (g as usize) < row_start || (g as usize) >= row_end)
        .collect();
    Ok(ShardBlock {
        grid_pos,
        row_start,
        row_end,
        col_start,
        col_end,
        local,
        refs,
        halo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::rmat::RmatConfig;
    use graph::Graph;

    fn twin(scale: u32, seed: u64) -> Csr {
        Graph::rmat(&RmatConfig::power_law(scale, 6), seed)
            .normalized_adjacency()
            .unwrap()
    }

    #[test]
    fn grid_shapes_are_near_square() {
        assert_eq!(PartitionKind::Rows1D.grid(8), (8, 1));
        assert_eq!(PartitionKind::Grid2D.grid(1), (1, 1));
        assert_eq!(PartitionKind::Grid2D.grid(2), (1, 2));
        assert_eq!(PartitionKind::Grid2D.grid(4), (2, 2));
        assert_eq!(PartitionKind::Grid2D.grid(8), (2, 4));
        assert_eq!(PartitionKind::Grid2D.grid(6), (2, 3));
    }

    #[test]
    fn shard_bounds_always_returns_exactly_n_plus_one() {
        let a = twin(8, 3);
        for parts in [1usize, 2, 3, 8, 300, 1000] {
            let b = shard_bounds(a.row_ptr(), parts);
            assert_eq!(b.len(), parts + 1, "parts={parts}");
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), a.nrows());
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn more_workers_than_rows_yields_empty_trailing_shards() {
        let a = twin(4, 1); // 16 rows
        let plan = ShardPlan::new(&a, 300, PartitionKind::Rows1D).unwrap();
        assert_eq!(plan.workers(), 300);
        let nonempty = plan.blocks().iter().filter(|b| b.rows() > 0).count();
        assert!(nonempty <= 16);
        assert_eq!(plan.shard_nnz().iter().sum::<usize>(), a.nnz());
    }

    #[test]
    fn blocks_tile_the_adjacency_exactly() {
        let a = twin(9, 7);
        for kind in [PartitionKind::Rows1D, PartitionKind::Grid2D] {
            for n in [1usize, 2, 4, 8] {
                let plan = ShardPlan::new(&a, n, kind).unwrap();
                assert_eq!(plan.workers(), n);
                // NNZ conservation.
                assert_eq!(
                    plan.shard_nnz().iter().sum::<usize>(),
                    a.nnz(),
                    "kind={kind} n={n}"
                );
                // Row coverage: row bounds tile [0, nrows].
                assert_eq!(plan.row_bounds()[0], 0);
                assert_eq!(*plan.row_bounds().last().unwrap(), a.nrows());
                // Every local entry decodes back to the original value.
                for b in plan.blocks() {
                    for lu in 0..b.local.nrows() {
                        let gu = b.row_start + lu;
                        for (&lc, &v) in b.local.row_cols(lu).iter().zip(b.local.row_values(lu)) {
                            let gc = b.refs[lc as usize];
                            let pos = a.row_cols(gu).binary_search(&gc).unwrap();
                            assert_eq!(a.row_values(gu)[pos], v);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn every_row_has_exactly_one_owner() {
        let a = twin(8, 19);
        for kind in [PartitionKind::Rows1D, PartitionKind::Grid2D] {
            for n in [1usize, 2, 4, 6, 8] {
                let plan = ShardPlan::new(&a, n, kind).unwrap();
                for row in 0..a.nrows() {
                    let w = plan.owner_of_row(row).unwrap();
                    let owners = plan
                        .blocks()
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| {
                            let (lo, hi) = b.owned_range();
                            (lo..hi).contains(&row)
                        })
                        .map(|(i, _)| i)
                        .collect::<Vec<_>>();
                    assert_eq!(owners, vec![w], "row {row} kind={kind} n={n}");
                }
                assert_eq!(plan.owner_of_row(a.nrows()), None);
            }
        }
    }

    #[test]
    fn halo_is_exactly_the_non_owned_references() {
        let a = twin(8, 11);
        let plan = ShardPlan::new(&a, 4, PartitionKind::Grid2D).unwrap();
        for b in plan.blocks() {
            for &g in &b.halo {
                assert!((g as usize) < b.row_start || (g as usize) >= b.row_end);
            }
            let local_refs = b.refs.len() - b.halo.len();
            let in_range = b
                .refs
                .iter()
                .filter(|&&g| (g as usize) >= b.row_start && (g as usize) < b.row_end)
                .count();
            assert_eq!(local_refs, in_range);
        }
        assert!(plan.halo_fraction() > 0.0);
        assert!(plan.halo_fraction() <= 1.0);
    }

    #[test]
    fn single_worker_plan_is_the_identity_partition() {
        let a = twin(7, 5);
        for kind in [PartitionKind::Rows1D, PartitionKind::Grid2D] {
            let plan = ShardPlan::new(&a, 1, kind).unwrap();
            assert_eq!(plan.workers(), 1);
            let b = &plan.blocks()[0];
            assert_eq!((b.row_start, b.row_end), (0, a.nrows()));
            assert_eq!(b.nnz(), a.nnz());
            assert!(b.halo.is_empty(), "one worker owns everything");
            assert_eq!(plan.halo_rows(), 0);
            assert!((plan.imbalance() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ledger_mirrors_association_order() {
        let a = twin(8, 13);
        let plan = ShardPlan::new(&a, 4, PartitionKind::Rows1D).unwrap();
        let agg_first = plan.layer_exchange(16, 64);
        assert_eq!(agg_first.order, FusedOrder::AggregateFirst);
        assert_eq!(agg_first.agg_width, 16);
        assert_eq!(agg_first.mid_gather_bytes, 0);
        let upd_first = plan.layer_exchange(64, 16);
        assert_eq!(upd_first.order, FusedOrder::UpdateFirst);
        assert_eq!(upd_first.agg_width, 16);
        // 1D: no reduce, no scatter, no remote mid reads.
        assert_eq!(agg_first.reduce_bytes, 0);
        assert_eq!(agg_first.scatter_bytes, 0);
        assert_eq!(upd_first.mid_gather_bytes, 0);
        // 2D pays reduce hops.
        let plan2 = ShardPlan::new(&a, 4, PartitionKind::Grid2D).unwrap();
        assert!(plan2.layer_exchange(16, 64).reduce_bytes > 0);
    }

    #[test]
    fn non_square_matrices_are_rejected() {
        let mut coo = sparse::Coo::new(4, 5);
        coo.push(0, 4, 1.0);
        let rect = Csr::from_coo(&coo);
        assert!(matches!(
            ShardPlan::new(&rect, 2, PartitionKind::Rows1D),
            Err(ShardError::NotSquare { .. })
        ));
        let sq = twin(4, 2);
        assert!(matches!(
            ShardPlan::new(&sq, 0, PartitionKind::Rows1D),
            Err(ShardError::ZeroWorkers)
        ));
    }
}
