//! First-principles PIUMA projection of a sharded GCN execution.
//!
//! [`simulate_model`] mirrors the exact partition [`crate::ShardedGcn`]
//! executes — same blocks, same halo maps, same per-layer association
//! order — onto a [`piuma_sim::MachineConfig`] with **one PIUMA node per
//! shard**. Every cost comes from the machine description: per-node dense
//! rate and DRAM bandwidth bound the kernels, DMA engines stream the halo
//! with a per-request issue cost and a `dma_window`-deep latency pipe over
//! the HyperX path ([`MachineConfig::network_latency_ns`]), and each layer
//! ends on a global barrier. This is the model that regenerates
//! `results/ext_multinode_scaling.csv` — the scaling curves fall out of
//! the partition's measured halo volume and NNZ imbalance rather than
//! being seeded.
//!
//! The two calibration constants ([`SPMM_EFFICIENCY`],
//! [`GEMM_EFFICIENCY`]) set what fraction of the offload-assisted dense
//! peak each kernel class sustains; everything else (latencies,
//! bandwidths, window depths) is the machine config. The qualitative
//! behaviour the paper reports emerges structurally: at small feature
//! widths the K-independent per-row request overheads and barriers are
//! exposed (poor scaling), at K=256 the per-row payload amortizes them
//! and efficiency stays high.

use piuma_sim::MachineConfig;

use crate::partition::ShardPlan;

/// Fraction of a node's offload-assisted dense peak the irregular SpMM
/// row loops sustain (gather-dominated access pattern; the paper's SpMM
/// chapter measures low single-digit utilization on CPUs and PIUMA's
/// latency tolerance buys roughly this much of peak).
pub const SPMM_EFFICIENCY: f64 = 0.05;

/// Fraction of the dense peak the packed register-tiled GEMM sustains.
pub const GEMM_EFFICIENCY: f64 = 0.55;

/// Outcome of one simulated sharded inference pass.
#[derive(Debug, Clone)]
pub struct ShardSimResult {
    /// End-to-end nanoseconds for the full layer stack.
    pub total_ns: f64,
    /// Per-layer nanoseconds (critical-path row-block chain + barrier).
    pub layer_ns: Vec<f64>,
    /// Useful floating-point operations (same count as single-node).
    pub flops: f64,
}

impl ShardSimResult {
    /// Achieved GFLOPS over the whole pass.
    pub fn gflops(&self) -> f64 {
        if self.total_ns <= 0.0 {
            return 0.0;
        }
        self.flops / self.total_ns
    }
}

/// Parallel efficiency of `scaled` over `baseline` given their worker
/// counts: `T_base * N_base / (T_scaled * N_scaled)`.
pub fn parallel_efficiency(
    baseline: &ShardSimResult,
    n_base: usize,
    scaled: &ShardSimResult,
    n_scaled: usize,
) -> f64 {
    if scaled.total_ns <= 0.0 || n_scaled == 0 {
        return 0.0;
    }
    (baseline.total_ns * n_base as f64) / (scaled.total_ns * n_scaled as f64)
}

/// Projects a sharded GCN pass (layer widths `dims`, one `(k_in, k_out)`
/// pair per layer) onto PIUMA nodes: one node of `cores_per_node` cores
/// per shard, costs from the node's dense rate, DRAM bandwidth, DMA
/// engines, and the HyperX latency model.
pub fn simulate_model(
    plan: &ShardPlan,
    dims: &[(usize, usize)],
    cores_per_node: usize,
) -> ShardSimResult {
    let workers = plan.workers().max(1);
    let machine = MachineConfig::multi_node(workers, cores_per_node.max(1));
    let (rows_blocks, col_blocks) = plan.grid();

    // Per-node rates. FLOPs per ns = GFLOPS; bytes per ns = GB/s.
    let cpn = machine.cores_per_node() as f64;
    let node_peak = cpn
        * machine.mtps_per_core as f64
        * machine.dense_flops_per_cycle_per_mtp
        * machine.clock_ghz;
    let spmm_rate = node_peak * SPMM_EFFICIENCY;
    let gemm_rate = node_peak * GEMM_EFFICIENCY;
    let node_bw = cpn * machine.dram_slices_per_core as f64 * machine.dram_bandwidth_gbps;
    let engines = (cpn * machine.dma_engines_per_core as f64).max(1.0);
    let dma_rate = (engines * machine.dma_engine_gbps).min(node_bw);
    // One remote row fetch: issue occupancy plus the HyperX round trip
    // amortized over the descriptor window, spread across the engines.
    let remote_ns = if workers > 1 {
        machine.network_latency_ns(0, machine.cores - 1)
    } else {
        0.0
    };
    let req_ns = (machine.dma_issue_ns + remote_ns / machine.dma_window as f64) / engines;

    let mut layer_ns = Vec::with_capacity(dims.len());
    let mut flops = 0.0;
    for &(k_in, k_out) in dims {
        let ex = plan.layer_exchange(k_in, k_out);
        let k_agg = ex.agg_width as f64;
        let mut worst_chain = 0.0f64;
        for i in 0..rows_blocks {
            let rows_i = (plan.row_bounds()[i + 1] - plan.row_bounds()[i]) as f64;
            let mut chain = 0.0f64;
            for j in 0..col_blocks {
                let blk = &plan.blocks()[i * col_blocks + j];
                let nnz = blk.nnz() as f64;
                let refs = blk.refs.len() as f64;
                let halo = blk.halo.len() as f64;
                // Aggregation: compute-bound or memory-bound, whichever
                // binds (8 B per stored non-zero, staged reads, acc RMW).
                let agg_bytes = nnz * 8.0 + (refs + 2.0 * rows_i) * k_agg * 4.0;
                let t_spmm = (2.0 * nnz * k_agg / spmm_rate).max(agg_bytes / node_bw);
                // Halo gather: the DMA engines stream the payload while
                // the SpMM drains already-landed rows, so the payload
                // overlaps compute; only the per-row request issue cost
                // is exposed. That overhead is K-independent — this is
                // what sinks small feature widths.
                let t_payload = halo * k_agg * 4.0 / dma_rate;
                chain += halo * req_ns + t_payload.max(t_spmm);
                if j > 0 {
                    // Partial-accumulator handoff along the grid row.
                    chain += rows_i * k_agg * 4.0 / dma_rate + remote_ns;
                }
            }
            // Dense update of this row block (either order runs exactly
            // one GEMM over rows_i).
            let up_flops = 2.0 * rows_i * k_in as f64 * k_out as f64;
            let up_bytes = rows_i * (k_in + k_out) as f64 * 4.0;
            chain += (up_flops / gemm_rate).max(up_bytes / node_bw);
            // Non-owned output rows written back across the network.
            if ex.scatter_bytes > 0 {
                let per_row = ex.scatter_bytes as f64 / rows_blocks as f64;
                chain += per_row / dma_rate + remote_ns;
            }
            worst_chain = worst_chain.max(chain);
        }
        let t_layer = worst_chain + machine.barrier_latency_ns();
        layer_ns.push(t_layer);
        flops +=
            2.0 * plan.nnz() as f64 * k_agg + 2.0 * plan.nrows() as f64 * (k_in * k_out) as f64;
    }
    ShardSimResult {
        total_ns: layer_ns.iter().sum(),
        layer_ns,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionKind;
    use graph::rmat::RmatConfig;
    use graph::Graph;
    use sparse::Csr;

    fn twin() -> Csr {
        Graph::rmat(&RmatConfig::power_law(12, 8), 0xC0FFEE)
            .normalized_adjacency()
            .unwrap()
    }

    fn eff_at(a: &Csr, n: usize, k: usize) -> f64 {
        let base = simulate_model(
            &ShardPlan::new(a, 1, PartitionKind::Rows1D).unwrap(),
            &[(k, k)],
            8,
        );
        let scaled = simulate_model(
            &ShardPlan::new(a, n, PartitionKind::Rows1D).unwrap(),
            &[(k, k)],
            8,
        );
        parallel_efficiency(&base, 1, &scaled, n)
    }

    #[test]
    fn wide_features_scale_and_narrow_features_do_not() {
        let a = twin();
        let wide = eff_at(&a, 8, 256);
        let narrow = eff_at(&a, 8, 8);
        assert!(
            wide >= 0.74,
            "K=256 at 8 nodes must meet the paper's strong scaling, got {wide:.3}"
        );
        assert!(
            narrow < wide - 0.2,
            "K=8 must scale qualitatively worse (paper's gap): K=8 {narrow:.3} vs K=256 {wide:.3}"
        );
        assert!(
            narrow > 0.05,
            "even K=8 makes some progress, got {narrow:.3}"
        );
    }

    #[test]
    fn efficiency_decays_monotonically_with_workers() {
        let a = twin();
        for k in [8usize, 256] {
            let effs: Vec<f64> = [2usize, 4, 8].iter().map(|&n| eff_at(&a, n, k)).collect();
            assert!(
                effs.windows(2).all(|w| w[1] <= w[0] + 1e-9),
                "k={k}: efficiency must not rise with more nodes: {effs:?}"
            );
        }
    }

    #[test]
    fn gflops_rise_with_nodes_at_wide_k() {
        let a = twin();
        let mut last = 0.0;
        for n in [1usize, 2, 4, 8] {
            let r = simulate_model(
                &ShardPlan::new(&a, n, PartitionKind::Rows1D).unwrap(),
                &[(256, 256)],
                8,
            );
            assert!(
                r.gflops() > last,
                "aggregate K=256 throughput must rise with nodes"
            );
            last = r.gflops();
        }
    }

    #[test]
    fn two_d_grids_pay_reduce_hops() {
        let a = twin();
        let d1 = simulate_model(
            &ShardPlan::new(&a, 8, PartitionKind::Rows1D).unwrap(),
            &[(64, 64)],
            8,
        );
        let d2 = simulate_model(
            &ShardPlan::new(&a, 8, PartitionKind::Grid2D).unwrap(),
            &[(64, 64)],
            8,
        );
        assert!(d1.total_ns > 0.0 && d2.total_ns > 0.0);
        // Same useful work either way.
        assert!((d1.flops - d2.flops).abs() < 1.0);
    }
}
