//! The sharded GCN inference runner.
//!
//! [`ShardedGcn`] executes a [`gcn::GcnModel`] over a [`ShardPlan`] the
//! way a PIUMA cluster would: every layer becomes one (aggregate-first)
//! or two (update-first) task graphs whose nodes are "gather this shard's
//! halo into its landing buffer" and "run this shard's kernel", drained by
//! [`crate::exec::TaskGraph`] over the shared pool. All cross-shard data
//! moves through explicit per-shard copy buffers, every gather passes a
//! `shard.exchange` fault point and is retried idempotently, and the
//! runner counts the staged/halo bytes so communication volume is a
//! measured quantity.
//!
//! The output is **bitwise identical** to single-node
//! [`gcn::GcnModel::infer_planned`] running a width-1 plan: per-shard
//! plans are built at width 1 (always sequential — parallelism comes from
//! the task graph, not from inside a shard), 2D column blocks accumulate
//! in ascending order so each output element sees the exact same
//! floating-point sequence as the unsharded row walk, and the packed GEMM
//! is row-partition-invariant.

use std::sync::Mutex;

use gcn::{GcnLayer, GcnModel};
use kernels::SpmmPlan;
use matrix::microkernel::{matmul_packed_prec_with, matmul_packed_with, KernelDispatch};
use matrix::{DenseMatrix, Precision, QuantMatrix};
use resilience::retry::{self, RetryPolicy};
use sparse::Csr;

use crate::exec::{self, TaskGraph};
use crate::partition::{LayerExchange, PartitionKind, ShardPlan};
use crate::ShardError;

/// Per-worker exchange state: the staged feature rows (the halo landing
/// buffer), their narrow-precision encoding, and the shard's cached
/// execution plan.
#[derive(Debug, Default)]
struct StageBuf {
    feat: DenseMatrix,
    quant: QuantMatrix,
    plan: Option<SpmmPlan>,
}

/// Per-row-block dense state: the aggregation accumulator, the layer
/// output rows, and the update-first staging block of `H` rows.
#[derive(Debug, Default)]
struct RowBuf {
    acc: DenseMatrix,
    out: DenseMatrix,
    hblk: DenseMatrix,
}

/// Communication observed during the most recent inference call.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    staged_bytes: u64,
    halo_bytes: u64,
    recovered_exchanges: u64,
}

/// Partition statistics plus the communication ledger and the measured
/// byte counters of the most recent [`ShardedGcn::infer`] call.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Worker (shard) count.
    pub workers: usize,
    /// Partition kind the plan was built with.
    pub kind: PartitionKind,
    /// Grid shape `(row_blocks, col_blocks)`.
    pub grid: (usize, usize),
    /// Non-zeros per shard, block order.
    pub shard_nnz: Vec<usize>,
    /// `max_shard_nnz / mean_shard_nnz` (1.0 = perfect balance).
    pub imbalance: f64,
    /// Remote rows referenced across all shards.
    pub halo_rows: usize,
    /// Total referenced (staged) rows across all shards.
    pub referenced_rows: usize,
    /// `halo_rows / referenced_rows` — fraction of staged feature rows
    /// that cross worker boundaries.
    pub halo_fraction: f64,
    /// Static per-layer exchange ledger for the model this report was
    /// built against.
    pub layers: Vec<LayerExchange>,
    /// Ledger total: bytes the partition says must cross workers for one
    /// inference pass.
    pub ledger_bytes: u64,
    /// Measured bytes copied through the explicit stage buffers during
    /// the last inference (local + halo rows, all phases).
    pub staged_bytes: u64,
    /// Measured halo subset of `staged_bytes` — rows fetched from other
    /// workers.
    pub halo_bytes: u64,
    /// Exchange attempts beyond the first (fault-injection recoveries)
    /// during the last inference.
    pub recovered_exchanges: u64,
}

/// Sharded multi-node GCN executor over a fixed partition.
#[derive(Debug)]
pub struct ShardedGcn {
    plan: ShardPlan,
    precision: Precision,
    policy: RetryPolicy,
    kd: KernelDispatch,
    stages: Vec<Mutex<StageBuf>>,
    rows: Vec<Mutex<RowBuf>>,
    h: DenseMatrix,
    next: DenseMatrix,
    mid: DenseMatrix,
    counters: Mutex<Counters>,
    error: Mutex<Option<ShardError>>,
}

impl ShardedGcn {
    /// Partitions `a` across `workers` shards and prepares the runner at
    /// full `f32` precision.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardPlan::new`] errors.
    pub fn new(a: &Csr, workers: usize, kind: PartitionKind) -> Result<ShardedGcn, ShardError> {
        Self::with_precision(a, workers, kind, Precision::F32)
    }

    /// [`ShardedGcn::new`] at a narrow storage precision: every shard's
    /// plan and packed GEMM inherit `precision`, exactly like single-node
    /// [`gcn::GcnModel::infer_planned_prec`].
    ///
    /// # Errors
    ///
    /// [`ShardError::UnsupportedPrecision`] for a narrow precision on a
    /// multi-column (2D) grid — partial aggregates have no quantized
    /// accumulation path — plus [`ShardPlan::new`] errors.
    pub fn with_precision(
        a: &Csr,
        workers: usize,
        kind: PartitionKind,
        precision: Precision,
    ) -> Result<ShardedGcn, ShardError> {
        let plan = ShardPlan::new(a, workers, kind)?;
        if precision != Precision::F32 && plan.grid().1 > 1 {
            return Err(ShardError::UnsupportedPrecision(precision));
        }
        let stages = (0..plan.workers())
            .map(|_| Mutex::new(StageBuf::default()))
            .collect();
        let rows = (0..plan.grid().0)
            .map(|_| Mutex::new(RowBuf::default()))
            .collect();
        Ok(ShardedGcn {
            plan,
            precision,
            policy: RetryPolicy::default(),
            kd: KernelDispatch::get(),
            stages,
            rows,
            h: DenseMatrix::default(),
            next: DenseMatrix::default(),
            mid: DenseMatrix::default(),
            counters: Mutex::new(Counters::default()),
            error: Mutex::new(None),
        })
    }

    /// The partition this runner executes over.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Storage precision the shards run at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Replaces the exchange retry policy (tests shorten the backoff).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Runs sharded inference, returning the output activations.
    ///
    /// # Errors
    ///
    /// Input validation mirrors the single-node entry points
    /// ([`ShardError::FeatureDimMismatch`] /
    /// [`ShardError::VertexCountMismatch`]); execution errors surface as
    /// the first error any task recorded.
    pub fn infer(
        &mut self,
        model: &GcnModel,
        features: &DenseMatrix,
    ) -> Result<DenseMatrix, ShardError> {
        if features.cols() != model.input_dim() {
            return Err(ShardError::FeatureDimMismatch {
                expected: model.input_dim(),
                actual: features.cols(),
            });
        }
        if features.rows() != self.plan.nrows() {
            return Err(ShardError::VertexCountMismatch {
                graph: self.plan.nrows(),
                features: features.rows(),
            });
        }
        *lock(&self.counters) = Counters::default();
        *lock(&self.error) = None;
        self.h.copy_from(features);
        for layer in model.layers() {
            if layer.in_dim() <= layer.out_dim() {
                self.layer_aggregate_first(layer)?;
            } else {
                self.layer_update_first(layer)?;
            }
            std::mem::swap(&mut self.h, &mut self.next);
        }
        Ok(self.h.clone())
    }

    /// The partition/ledger/measured-bytes report for `model`, reflecting
    /// the most recent [`ShardedGcn::infer`] call's counters.
    pub fn report(&self, model: &GcnModel) -> ShardReport {
        let layers: Vec<LayerExchange> = model
            .layers()
            .iter()
            .map(|l| self.plan.layer_exchange(l.in_dim(), l.out_dim()))
            .collect();
        let ledger_bytes = layers.iter().map(LayerExchange::total_bytes).sum();
        let c = *lock(&self.counters);
        ShardReport {
            workers: self.plan.workers(),
            kind: self.plan.kind(),
            grid: self.plan.grid(),
            shard_nnz: self.plan.shard_nnz(),
            imbalance: self.plan.imbalance(),
            halo_rows: self.plan.halo_rows(),
            referenced_rows: self.plan.referenced_rows(),
            halo_fraction: self.plan.halo_fraction(),
            layers,
            ledger_bytes,
            staged_bytes: c.staged_bytes,
            halo_bytes: c.halo_bytes,
            recovered_exchanges: c.recovered_exchanges,
        }
    }

    /// Aggregate-first layer (`k_in <= k_out`): one task graph of
    /// exchange → aggregation chain → per-row-block update, then a
    /// sequential scatter of the block outputs into the ping-pong buffer.
    fn layer_aggregate_first(&mut self, layer: &GcnLayer) -> Result<(), ShardError> {
        let (r, c) = self.plan.grid();
        let w = r * c;
        let k_in = layer.in_dim();
        let mut graph = TaskGraph::new(2 * w + r);
        for i in 0..r {
            for j in 0..c {
                let b = i * c + j;
                graph.add_dep(w + b, b);
                if j > 0 {
                    graph.add_dep(w + b, w + b - 1);
                }
            }
            graph.add_dep(2 * w + i, w + (i * c + c - 1));
        }
        let this: &Self = self;
        let res = graph.run(w.max(r), |t| {
            if t < w {
                this.exchange_task(t, &this.h, k_in);
            } else if t < 2 * w {
                this.aggregate_task(t - w, k_in);
            } else {
                this.update_task(t - 2 * w, layer, true);
            }
        });
        self.check_run(res)?;
        self.scatter_outputs(layer.out_dim(), false)
    }

    /// Update-first layer (`k_in > k_out`): phase A runs the per-row-block
    /// GEMM `H_blk * W` into `mid`, phase B exchanges `mid` rows and
    /// aggregates them, finishing with bias + activation per row block.
    fn layer_update_first(&mut self, layer: &GcnLayer) -> Result<(), ShardError> {
        let (r, c) = self.plan.grid();
        let w = r * c;
        let k_out = layer.out_dim();
        // Phase A: independent per-row-block updates.
        let phase_a = TaskGraph::new(r);
        let this: &Self = self;
        let res = phase_a.run(r, |i| this.update_task(i, layer, false));
        self.check_run(res)?;
        // Gather the block products into the global mid buffer (the
        // sequential analogue of publishing updates to the DGAS).
        self.mid.resize_for_overwrite(self.plan.nrows(), k_out);
        for i in 0..r {
            let rb = lock(&self.rows[i]);
            let (r0, r1) = (self.plan.row_bounds()[i], self.plan.row_bounds()[i + 1]);
            for (lu, g) in (r0..r1).enumerate() {
                self.mid.row_mut(g).copy_from_slice(rb.out.row(lu));
            }
        }
        // Phase B: exchange mid rows, aggregate, then bias + activation.
        let mut graph = TaskGraph::new(2 * w + r);
        for i in 0..r {
            for j in 0..c {
                let b = i * c + j;
                graph.add_dep(w + b, b);
                if j > 0 {
                    graph.add_dep(w + b, w + b - 1);
                }
            }
            graph.add_dep(2 * w + i, w + (i * c + c - 1));
        }
        let this: &Self = self;
        let res = graph.run(w.max(r), |t| {
            if t < w {
                this.exchange_task(t, &this.mid, k_out);
            } else if t < 2 * w {
                this.aggregate_task(t - w, k_out);
            } else {
                this.finish_task(t - 2 * w, layer);
            }
        });
        self.check_run(res)?;
        self.scatter_outputs(k_out, true)
    }

    /// Stages shard `b`'s referenced rows of `src` into its landing
    /// buffer, retrying through the fault point, and (narrow precision)
    /// encodes the staged rows.
    fn exchange_task(&self, b: usize, src: &DenseMatrix, width: usize) {
        let blk = &self.plan.blocks()[b];
        let mut st = lock(&self.stages[b]);
        let st = &mut *st;
        let outcome = retry::run(&self.policy, || -> Result<u64, ShardError> {
            Ok(exec::gather_rows(&mut st.feat, src, &blk.refs))
        });
        match outcome {
            Ok(rec) => {
                let mut c = lock(&self.counters);
                c.staged_bytes += rec.value;
                c.halo_bytes += (blk.halo.len() * width * 4) as u64;
                c.recovered_exchanges += u64::from(rec.attempts - 1);
                drop(c);
                if self.precision != Precision::F32 {
                    if let Err(e) = st.quant.encode(&st.feat, self.precision) {
                        self.record(ShardError::Matrix(e));
                    }
                }
            }
            Err(e) => self.record(ShardError::Exchange(e.to_string())),
        }
    }

    /// Aggregates shard `b`'s local block: column block 0 runs the
    /// shard's cached width-1 plan (rebuilt when the aggregation width
    /// changes), later column blocks accumulate in ascending order.
    fn aggregate_task(&self, b: usize, k_agg: usize) {
        let (_, c) = self.plan.grid();
        let blk = &self.plan.blocks()[b];
        let i = b / c;
        let j = b % c;
        let mut st = lock(&self.stages[b]);
        let st = &mut *st;
        let mut rb = lock(&self.rows[i]);
        if j == 0 {
            if !st
                .plan
                .as_ref()
                .is_some_and(|p| p.matches(&blk.local) && p.k() == k_agg)
            {
                // Width 1 => always sequential: parallelism comes from the
                // task graph, never from inside a shard, which keeps the
                // per-row floating-point order machine-independent.
                let built = SpmmPlan::with_width(&blk.local, k_agg, 1);
                st.plan = Some(if self.precision == Precision::F32 {
                    built
                } else {
                    built.at_precision(self.precision)
                });
            }
            let plan = st.plan.as_ref().expect("plan installed just above");
            let res = if self.precision == Precision::F32 {
                plan.run_into(&blk.local, &st.feat, &mut rb.acc)
            } else {
                plan.run_quant_into(&blk.local, &st.quant, &mut rb.acc)
            };
            if let Err(e) = res {
                self.record(ShardError::Matrix(e));
            }
        } else {
            exec::accumulate_block(self.kd, &blk.local, &st.feat, &mut rb.acc);
        }
    }

    /// Runs row block `i`'s dense update. With `from_acc` the GEMM input
    /// is the aggregation accumulator (aggregate-first) and bias +
    /// activation are applied; otherwise the input is the staged `H`
    /// block (update-first phase A) and the raw product is kept for the
    /// later aggregation.
    fn update_task(&self, i: usize, layer: &GcnLayer, from_acc: bool) {
        let mut rb = lock(&self.rows[i]);
        let rb = &mut *rb;
        if !from_acc {
            let (r0, r1) = (self.plan.row_bounds()[i], self.plan.row_bounds()[i + 1]);
            let outcome = retry::run(&self.policy, || -> Result<u64, ShardError> {
                Ok(exec::stage_block(&mut rb.hblk, &self.h, r0, r1))
            });
            match outcome {
                Ok(rec) => {
                    let mut c = lock(&self.counters);
                    c.staged_bytes += rec.value;
                    c.recovered_exchanges += u64::from(rec.attempts - 1);
                }
                Err(e) => {
                    self.record(ShardError::Exchange(e.to_string()));
                    return;
                }
            }
        }
        let a = if from_acc { &rb.acc } else { &rb.hblk };
        let res = if self.precision == Precision::F32 {
            matmul_packed_with(self.kd, a, &layer.weight, 1, &mut rb.out)
        } else {
            matmul_packed_prec_with(self.kd, self.precision, a, &layer.weight, 1, &mut rb.out)
        };
        if let Err(e) = res {
            self.record(ShardError::Matrix(e));
            return;
        }
        if from_acc {
            if let Some(bias) = &layer.bias {
                if let Err(e) = rb.out.add_row_bias(bias) {
                    self.record(ShardError::Matrix(e));
                    return;
                }
            }
            rb.out.apply_activation(layer.activation);
        }
    }

    /// Update-first epilogue on row block `i`: bias + activation applied
    /// to the aggregated accumulator (which already holds `A_blk * mid`).
    fn finish_task(&self, i: usize, layer: &GcnLayer) {
        let mut rb = lock(&self.rows[i]);
        if let Some(bias) = &layer.bias {
            if let Err(e) = rb.acc.add_row_bias(bias) {
                self.record(ShardError::Matrix(e));
                return;
            }
        }
        rb.acc.apply_activation(layer.activation);
    }

    /// Copies per-row-block results into the ping-pong output buffer
    /// (`acc` after update-first, `out` after aggregate-first). The whole
    /// collection — buffer resize plus per-block scatter — runs inside one
    /// retried fault-pointed region: every write is an idempotent
    /// overwrite, so an injected panic just replays the copy.
    fn scatter_outputs(&mut self, k_out: usize, from_acc: bool) -> Result<(), ShardError> {
        let (r, _) = self.plan.grid();
        let (next, plan, rows) = (&mut self.next, &self.plan, &self.rows);
        let outcome = retry::run(&self.policy, || -> Result<u64, ShardError> {
            resilience::fault_point!("shard.collect");
            next.resize_for_overwrite(plan.nrows(), k_out);
            let mut bytes = 0u64;
            for (i, row) in rows.iter().enumerate().take(r) {
                let rb = lock(row);
                let src = if from_acc { &rb.acc } else { &rb.out };
                let (r0, r1) = (plan.row_bounds()[i], plan.row_bounds()[i + 1]);
                bytes += exec::scatter_block(next, src, r0, r1);
            }
            Ok(bytes)
        });
        match outcome {
            Ok(rec) => {
                let mut c = lock(&self.counters);
                c.recovered_exchanges += u64::from(rec.attempts - 1);
                Ok(())
            }
            Err(e) => Err(ShardError::Exchange(e.to_string())),
        }
    }

    /// Records the first task-level error of the current graph run.
    fn record(&self, e: ShardError) {
        lock(&self.error).get_or_insert(e);
    }

    /// Maps a graph-run outcome to the first recorded task error, falling
    /// back to the executor's own verdict.
    fn check_run(&self, res: Result<(), exec::ExecError>) -> Result<(), ShardError> {
        if let Some(e) = lock(&self.error).take() {
            return Err(e);
        }
        res.map_err(|e| ShardError::Executor(e.to_string()))
    }
}

/// Locks ignoring poisoning: task panics are caught inside the executor,
/// and a poisoned buffer is fully overwritten by the retried attempt.
/// Routed through the audit helpers so recoveries are counted.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    resilience::audit::recover("shard.runner", m)
}
