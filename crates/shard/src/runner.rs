//! The sharded GCN inference runner.
//!
//! [`ShardedGcn`] executes a [`gcn::GcnModel`] over a [`ShardPlan`] the
//! way a PIUMA cluster would: every layer becomes one (aggregate-first)
//! or two (update-first) task graphs whose nodes are "gather this shard's
//! halo into its landing buffer" and "run this shard's kernel", drained by
//! [`crate::exec::TaskGraph`] over the shared pool. All cross-shard data
//! moves through explicit per-shard copy buffers, every gather passes a
//! `shard.exchange` fault point and is retried idempotently, and the
//! runner counts the staged/halo bytes so communication volume is a
//! measured quantity.
//!
//! The output is **bitwise identical** to single-node
//! [`gcn::GcnModel::infer_planned`] running a width-1 plan: per-shard
//! plans are built at width 1 (always sequential — parallelism comes from
//! the task graph, not from inside a shard), 2D column blocks accumulate
//! in ascending order so each output element sees the exact same
//! floating-point sequence as the unsharded row walk, and the packed GEMM
//! is row-partition-invariant.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use gcn::{GcnLayer, GcnModel};
use kernels::SpmmPlan;
use matrix::microkernel::{matmul_packed_prec_with, matmul_packed_with, KernelDispatch};
use matrix::{DenseMatrix, Precision, QuantMatrix};
use resilience::retry::{self, RetryPolicy};
use sparse::Csr;

use crate::exec::{self, TaskGraph};
use crate::health::{HealthRegistry, ShardDownCause, ShardEvent};
use crate::partition::{LayerExchange, PartitionKind, ShardPlan};
use crate::ShardError;

/// Upper bound on task-graph attempts per layer (first run + masked
/// replays). Hitting the bound surfaces the last typed error instead of
/// looping forever under a 100% fault rate.
pub const MAX_REPLAY_ATTEMPTS: usize = 8;

/// Per-worker exchange state: the staged feature rows (the halo landing
/// buffer), their narrow-precision encoding, and the shard's cached
/// execution plan.
#[derive(Debug, Default)]
struct StageBuf {
    feat: DenseMatrix,
    quant: QuantMatrix,
    plan: Option<SpmmPlan>,
}

/// Per-row-block dense state: the aggregation accumulator, the layer
/// output rows, and the update-first staging block of `H` rows.
#[derive(Debug, Default)]
struct RowBuf {
    acc: DenseMatrix,
    out: DenseMatrix,
    hblk: DenseMatrix,
}

/// Communication observed during the most recent inference call.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    staged_bytes: u64,
    halo_bytes: u64,
    recovered_exchanges: u64,
    replayed_tasks: u64,
    recovered_layers: u64,
}

/// A task-level failure recorded while a layer graph was draining: the
/// typed error plus the shard / row block it is attributed to.
#[derive(Debug, Clone)]
struct TaskFault {
    shard: Option<usize>,
    row_block: Option<usize>,
    error: ShardError,
}

/// Which task layout a layer graph uses — how task IDs map back to
/// shards and row blocks for failure attribution and chain-consistent
/// replay masking.
#[derive(Debug, Clone, Copy)]
enum GraphShape {
    /// `w` exchange tasks, `w` aggregate tasks, `r` tail tasks
    /// (update or finish): the aggregate-first / phase-B layout.
    ExchangeAggregate {
        /// Row blocks.
        r: usize,
        /// Column blocks.
        c: usize,
    },
    /// `r` independent per-row-block tasks (update-first phase A).
    RowBlocks,
}

impl GraphShape {
    /// `(shard, row_block)` attribution for task `t`.
    fn locate(self, t: usize) -> (Option<usize>, Option<usize>) {
        match self {
            GraphShape::ExchangeAggregate { r, c } => {
                let w = r * c;
                if t < w {
                    (Some(t), Some(t / c))
                } else if t < 2 * w {
                    (Some(t - w), Some((t - w) / c))
                } else {
                    (None, Some(t - 2 * w))
                }
            }
            GraphShape::RowBlocks => (None, Some(t)),
        }
    }
}

/// Partition statistics plus the communication ledger and the measured
/// byte counters of the most recent [`ShardedGcn::infer`] call.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Worker (shard) count.
    pub workers: usize,
    /// Partition kind the plan was built with.
    pub kind: PartitionKind,
    /// Grid shape `(row_blocks, col_blocks)`.
    pub grid: (usize, usize),
    /// Non-zeros per shard, block order.
    pub shard_nnz: Vec<usize>,
    /// `max_shard_nnz / mean_shard_nnz` (1.0 = perfect balance).
    pub imbalance: f64,
    /// Remote rows referenced across all shards.
    pub halo_rows: usize,
    /// Total referenced (staged) rows across all shards.
    pub referenced_rows: usize,
    /// `halo_rows / referenced_rows` — fraction of staged feature rows
    /// that cross worker boundaries.
    pub halo_fraction: f64,
    /// Static per-layer exchange ledger for the model this report was
    /// built against.
    pub layers: Vec<LayerExchange>,
    /// Ledger total: bytes the partition says must cross workers for one
    /// inference pass.
    pub ledger_bytes: u64,
    /// Measured bytes copied through the explicit stage buffers during
    /// the last inference (local + halo rows, all phases).
    pub staged_bytes: u64,
    /// Measured halo subset of `staged_bytes` — rows fetched from other
    /// workers.
    pub halo_bytes: u64,
    /// Exchange attempts beyond the first (fault-injection recoveries)
    /// during the last inference.
    pub recovered_exchanges: u64,
    /// Tasks re-executed by the masked-replay recovery loop during the
    /// last inference (0 on a fault-free run).
    pub replayed_tasks: u64,
    /// Layers whose task graph needed at least one recovery replay during
    /// the last inference.
    pub recovered_layers: u64,
}

/// Sharded multi-node GCN executor over a fixed partition.
#[derive(Debug)]
pub struct ShardedGcn {
    plan: ShardPlan,
    precision: Precision,
    policy: RetryPolicy,
    kd: KernelDispatch,
    stages: Vec<Mutex<StageBuf>>,
    rows: Vec<Mutex<RowBuf>>,
    h: DenseMatrix,
    next: DenseMatrix,
    mid: DenseMatrix,
    counters: Mutex<Counters>,
    faults: Mutex<Vec<TaskFault>>,
    health: HealthRegistry,
    task_deadline: Option<Duration>,
}

impl ShardedGcn {
    /// Partitions `a` across `workers` shards and prepares the runner at
    /// full `f32` precision.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardPlan::new`] errors.
    pub fn new(a: &Csr, workers: usize, kind: PartitionKind) -> Result<ShardedGcn, ShardError> {
        Self::with_precision(a, workers, kind, Precision::F32)
    }

    /// [`ShardedGcn::new`] at a narrow storage precision: every shard's
    /// plan and packed GEMM inherit `precision`, exactly like single-node
    /// [`gcn::GcnModel::infer_planned_prec`].
    ///
    /// # Errors
    ///
    /// [`ShardError::UnsupportedPrecision`] for a narrow precision on a
    /// multi-column (2D) grid — partial aggregates have no quantized
    /// accumulation path — plus [`ShardPlan::new`] errors.
    pub fn with_precision(
        a: &Csr,
        workers: usize,
        kind: PartitionKind,
        precision: Precision,
    ) -> Result<ShardedGcn, ShardError> {
        let plan = ShardPlan::new(a, workers, kind)?;
        if precision != Precision::F32 && plan.grid().1 > 1 {
            return Err(ShardError::UnsupportedPrecision(precision));
        }
        let stages = (0..plan.workers())
            .map(|_| Mutex::new(StageBuf::default()))
            .collect();
        let rows = (0..plan.grid().0)
            .map(|_| Mutex::new(RowBuf::default()))
            .collect();
        let workers = plan.workers();
        Ok(ShardedGcn {
            plan,
            precision,
            policy: RetryPolicy::default(),
            kd: KernelDispatch::get(),
            stages,
            rows,
            h: DenseMatrix::default(),
            next: DenseMatrix::default(),
            mid: DenseMatrix::default(),
            counters: Mutex::new(Counters::default()),
            faults: Mutex::new(Vec::new()),
            health: HealthRegistry::new(workers),
            task_deadline: None,
        })
    }

    /// The partition this runner executes over.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Storage precision the shards run at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Replaces the exchange retry policy (tests shorten the backoff).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Arms per-task deadline supervision: a task whose wall-clock run
    /// time exceeds `deadline` is reported to the health registry as a
    /// [`ShardDownCause::DeadlineOverrun`] (the task's result is kept —
    /// the overrun is a straggler signal, not a failure). `None` disables
    /// the check.
    pub fn set_task_deadline(&mut self, deadline: Option<Duration>) {
        self.task_deadline = deadline;
    }

    /// The shard health registry: typed shard-down events recorded by
    /// supervision, and per-shard strike counts. Events accumulate across
    /// inference calls (the registry ring is bounded); callers that want
    /// per-call attribution should [`HealthRegistry::clear`] between
    /// calls.
    pub fn health(&self) -> &HealthRegistry {
        &self.health
    }

    /// Runs sharded inference, returning the output activations.
    ///
    /// # Errors
    ///
    /// Input validation mirrors the single-node entry points
    /// ([`ShardError::FeatureDimMismatch`] /
    /// [`ShardError::VertexCountMismatch`]); execution errors surface as
    /// the first error any task recorded.
    pub fn infer(
        &mut self,
        model: &GcnModel,
        features: &DenseMatrix,
    ) -> Result<DenseMatrix, ShardError> {
        if features.cols() != model.input_dim() {
            return Err(ShardError::FeatureDimMismatch {
                expected: model.input_dim(),
                actual: features.cols(),
            });
        }
        if features.rows() != self.plan.nrows() {
            return Err(ShardError::VertexCountMismatch {
                graph: self.plan.nrows(),
                features: features.rows(),
            });
        }
        // faults before counters: every function acquiring both keeps
        // this order, so the per-crate lock graph (L011) stays acyclic.
        lock(&self.faults).clear();
        *lock(&self.counters) = Counters::default();
        self.h.copy_from(features);
        for (layer_idx, layer) in model.layers().iter().enumerate() {
            if layer.in_dim() <= layer.out_dim() {
                self.layer_aggregate_first(layer, layer_idx)?;
            } else {
                self.layer_update_first(layer, layer_idx)?;
            }
            std::mem::swap(&mut self.h, &mut self.next);
        }
        Ok(self.h.clone())
    }

    /// The partition/ledger/measured-bytes report for `model`, reflecting
    /// the most recent [`ShardedGcn::infer`] call's counters.
    pub fn report(&self, model: &GcnModel) -> ShardReport {
        let layers: Vec<LayerExchange> = model
            .layers()
            .iter()
            .map(|l| self.plan.layer_exchange(l.in_dim(), l.out_dim()))
            .collect();
        let ledger_bytes = layers.iter().map(LayerExchange::total_bytes).sum();
        let c = *lock(&self.counters);
        ShardReport {
            workers: self.plan.workers(),
            kind: self.plan.kind(),
            grid: self.plan.grid(),
            shard_nnz: self.plan.shard_nnz(),
            imbalance: self.plan.imbalance(),
            halo_rows: self.plan.halo_rows(),
            referenced_rows: self.plan.referenced_rows(),
            halo_fraction: self.plan.halo_fraction(),
            layers,
            ledger_bytes,
            staged_bytes: c.staged_bytes,
            halo_bytes: c.halo_bytes,
            recovered_exchanges: c.recovered_exchanges,
            replayed_tasks: c.replayed_tasks,
            recovered_layers: c.recovered_layers,
        }
    }

    /// Aggregate-first layer (`k_in <= k_out`): one task graph of
    /// exchange → aggregation chain → per-row-block update, then a
    /// sequential scatter of the block outputs into the ping-pong buffer.
    fn layer_aggregate_first(
        &mut self,
        layer: &GcnLayer,
        layer_idx: usize,
    ) -> Result<(), ShardError> {
        let (r, c) = self.plan.grid();
        let w = r * c;
        let k_in = layer.in_dim();
        let graph = exchange_aggregate_graph(r, c);
        let this: &Self = self;
        this.run_recovering(
            &graph,
            w.max(r),
            layer_idx,
            GraphShape::ExchangeAggregate { r, c },
            |t| {
                if t < w {
                    this.exchange_task(t, &this.h, k_in);
                } else if t < 2 * w {
                    this.aggregate_task(t - w, k_in);
                } else {
                    this.update_task(t - 2 * w, layer, true);
                }
            },
        )?;
        self.scatter_outputs(layer.out_dim(), false)
    }

    /// Update-first layer (`k_in > k_out`): phase A runs the per-row-block
    /// GEMM `H_blk * W` into `mid`, phase B exchanges `mid` rows and
    /// aggregates them, finishing with bias + activation per row block.
    fn layer_update_first(&mut self, layer: &GcnLayer, layer_idx: usize) -> Result<(), ShardError> {
        let (r, c) = self.plan.grid();
        let w = r * c;
        let k_out = layer.out_dim();
        // Phase A: independent per-row-block updates.
        let phase_a = TaskGraph::new(r);
        let this: &Self = self;
        this.run_recovering(&phase_a, r, layer_idx, GraphShape::RowBlocks, |i| {
            this.update_task(i, layer, false)
        })?;
        // Gather the block products into the global mid buffer (the
        // sequential analogue of publishing updates to the DGAS).
        self.mid.resize_for_overwrite(self.plan.nrows(), k_out);
        for i in 0..r {
            let rb = lock(&self.rows[i]);
            let (r0, r1) = (self.plan.row_bounds()[i], self.plan.row_bounds()[i + 1]);
            for (lu, g) in (r0..r1).enumerate() {
                self.mid.row_mut(g).copy_from_slice(rb.out.row(lu));
            }
        }
        // Phase B: exchange mid rows, aggregate, then bias + activation.
        let graph = exchange_aggregate_graph(r, c);
        let this: &Self = self;
        this.run_recovering(
            &graph,
            w.max(r),
            layer_idx,
            GraphShape::ExchangeAggregate { r, c },
            |t| {
                if t < w {
                    this.exchange_task(t, &this.mid, k_out);
                } else if t < 2 * w {
                    this.aggregate_task(t - w, k_out);
                } else {
                    this.finish_task(t - 2 * w, layer);
                }
            },
        )?;
        self.scatter_outputs(k_out, true)
    }

    /// Drains `graph` with supervision and bounded masked-replay
    /// recovery. The first attempt runs every task; when a task panics
    /// (worker loss), an exchange exhausts its retries, or a kernel
    /// records a recoverable fault, the completed tasks' buffers are kept
    /// and only the incomplete remainder — widened to whole aggregation
    /// chains, whose accumulation is not idempotent — is re-executed on
    /// the surviving workers. Because every replayed region either fully
    /// overwrites its output buffer or replays its accumulation chain
    /// from the overwriting first block, a recovered layer is bitwise
    /// identical to a fault-free run.
    fn run_recovering<F: Fn(usize) + Sync>(
        &self,
        graph: &TaskGraph,
        lanes: usize,
        layer_idx: usize,
        shape: GraphShape,
        run_task: F,
    ) -> Result<(), ShardError> {
        let total = graph.tasks();
        let mut done = vec![false; total];
        let mut replayed = 0u64;
        let mut recovered = false;
        let mut last_error = ShardError::Executor("recovery attempts exhausted".into());
        for attempt in 0..MAX_REPLAY_ATTEMPTS {
            if attempt > 0 {
                replayed += done.iter().filter(|d| !**d).count() as u64;
            }
            lock(&self.faults).clear();
            let done_ro = &done;
            let trace = graph.run_tracked(lanes, |t| {
                if done_ro[t] {
                    return; // already completed in a prior attempt
                }
                self.supervised(t, layer_idx, shape, &run_task);
            });
            for (d, td) in done.iter_mut().zip(&trace.done) {
                *d = *d || *td;
            }
            let faults = std::mem::take(&mut *lock(&self.faults));
            // Panic captured by the executor: typed health event, then
            // decide whether the run still completed (a pool-share panic
            // can re-raise after every task drained).
            if let Some(f) = &trace.failure {
                let (shard, row_block) = match f.task {
                    Some(t) => shape.locate(t),
                    None => (None, None),
                };
                self.health.record(ShardEvent {
                    shard,
                    row_block,
                    layer: layer_idx,
                    cause: ShardDownCause::Panic,
                    site: f.message.clone(),
                    recovered: false,
                });
            }
            // Deterministic kernel/shape errors reproduce on replay;
            // surface them immediately.
            if let Some(bad) = faults
                .iter()
                .find(|f| !matches!(f.error, ShardError::Exchange(_)))
            {
                return Err(bad.error.clone());
            }
            if faults.is_empty() {
                if done.iter().all(|&d| d) {
                    if recovered || trace.failure.is_some() {
                        let mut ctr = lock(&self.counters);
                        ctr.replayed_tasks += replayed;
                        ctr.recovered_layers += 1;
                        drop(ctr);
                        self.health.mark_recovered(layer_idx);
                    }
                    return Ok(());
                }
                match &trace.failure {
                    Some(f) => last_error = ShardError::Executor(f.message.clone()),
                    // No failure and no fault but tasks unreleased: a
                    // dependency cycle — deterministic, do not retry.
                    None => {
                        return Err(ShardError::Executor(format!(
                            "task graph stalled with {} tasks unreleased",
                            trace.remaining
                        )))
                    }
                }
            }
            for f in faults {
                self.health.record(ShardEvent {
                    shard: f.shard,
                    row_block: f.row_block,
                    layer: layer_idx,
                    cause: ShardDownCause::ExchangeFault,
                    site: f.error.to_string(),
                    recovered: false,
                });
                // The faulted task returned normally after recording, so
                // its done flag lies: clear it (and anything its stale
                // buffer feeds) for the next attempt.
                clear_attributed(&mut done, shape, f.shard, f.row_block);
                last_error = f.error;
            }
            // Widen the replay set to chain granularity: an aggregation
            // chain accumulates in place, so a partially-complete chain
            // must restart from its overwriting first block.
            widen_to_chains(&mut done, shape);
            recovered = true;
        }
        Err(last_error)
    }

    /// Per-task supervision wrapper: the `shard.task` fault point (the
    /// chaos harness' worker-kill site — it fires *before* the task body,
    /// so an injected kill never leaves a partial in-place mutation) plus
    /// per-task deadline timing.
    fn supervised<F: Fn(usize)>(
        &self,
        t: usize,
        layer_idx: usize,
        shape: GraphShape,
        run_task: &F,
    ) {
        resilience::fault_point!("shard.task");
        let started = self.task_deadline.map(|_| Instant::now());
        run_task(t);
        if let (Some(deadline), Some(at)) = (self.task_deadline, started) {
            let took = at.elapsed();
            if took > deadline {
                let (shard, row_block) = shape.locate(t);
                self.health.record(ShardEvent {
                    shard,
                    row_block,
                    layer: layer_idx,
                    cause: ShardDownCause::DeadlineOverrun,
                    site: format!("shard.task[{t}] ran {took:?} (deadline {deadline:?})"),
                    // The task completed; the overrun is advisory.
                    recovered: true,
                });
            }
        }
    }

    /// Stages shard `b`'s referenced rows of `src` into its landing
    /// buffer, retrying through the fault point, and (narrow precision)
    /// encodes the staged rows.
    fn exchange_task(&self, b: usize, src: &DenseMatrix, width: usize) {
        let blk = &self.plan.blocks()[b];
        let mut st = lock(&self.stages[b]);
        let st = &mut *st;
        let outcome = retry::run(&self.policy, || -> Result<u64, ShardError> {
            Ok(exec::gather_rows(&mut st.feat, src, &blk.refs))
        });
        match outcome {
            Ok(rec) => {
                let mut c = lock(&self.counters);
                c.staged_bytes += rec.value;
                c.halo_bytes += (blk.halo.len() * width * 4) as u64;
                c.recovered_exchanges += u64::from(rec.attempts - 1);
                drop(c);
                if self.precision != Precision::F32 {
                    if let Err(e) = st.quant.encode(&st.feat, self.precision) {
                        self.record(Some(b), None, ShardError::Matrix(e));
                    }
                }
            }
            Err(e) => self.record(Some(b), None, ShardError::Exchange(e.to_string())),
        }
    }

    /// Aggregates shard `b`'s local block: column block 0 runs the
    /// shard's cached width-1 plan (rebuilt when the aggregation width
    /// changes), later column blocks accumulate in ascending order.
    fn aggregate_task(&self, b: usize, k_agg: usize) {
        let (_, c) = self.plan.grid();
        let blk = &self.plan.blocks()[b];
        let i = b / c;
        let j = b % c;
        let mut st = lock(&self.stages[b]);
        let st = &mut *st;
        let mut rb = lock(&self.rows[i]);
        if j == 0 {
            if !st
                .plan
                .as_ref()
                .is_some_and(|p| p.matches(&blk.local) && p.k() == k_agg)
            {
                // Width 1 => always sequential: parallelism comes from the
                // task graph, never from inside a shard, which keeps the
                // per-row floating-point order machine-independent.
                let built = SpmmPlan::with_width(&blk.local, k_agg, 1);
                st.plan = Some(if self.precision == Precision::F32 {
                    built
                } else {
                    built.at_precision(self.precision)
                });
            }
            let plan = st.plan.as_ref().expect("plan installed just above");
            let res = if self.precision == Precision::F32 {
                plan.run_into(&blk.local, &st.feat, &mut rb.acc)
            } else {
                plan.run_quant_into(&blk.local, &st.quant, &mut rb.acc)
            };
            if let Err(e) = res {
                self.record(Some(b), Some(i), ShardError::Matrix(e));
            }
        } else {
            exec::accumulate_block(self.kd, &blk.local, &st.feat, &mut rb.acc);
        }
    }

    /// Runs row block `i`'s dense update. With `from_acc` the GEMM input
    /// is the aggregation accumulator (aggregate-first) and bias +
    /// activation are applied; otherwise the input is the staged `H`
    /// block (update-first phase A) and the raw product is kept for the
    /// later aggregation.
    fn update_task(&self, i: usize, layer: &GcnLayer, from_acc: bool) {
        let mut rb = lock(&self.rows[i]);
        let rb = &mut *rb;
        if !from_acc {
            let (r0, r1) = (self.plan.row_bounds()[i], self.plan.row_bounds()[i + 1]);
            let outcome = retry::run(&self.policy, || -> Result<u64, ShardError> {
                Ok(exec::stage_block(&mut rb.hblk, &self.h, r0, r1))
            });
            match outcome {
                Ok(rec) => {
                    let mut c = lock(&self.counters);
                    c.staged_bytes += rec.value;
                    c.recovered_exchanges += u64::from(rec.attempts - 1);
                }
                Err(e) => {
                    self.record(None, Some(i), ShardError::Exchange(e.to_string()));
                    return;
                }
            }
        }
        let a = if from_acc { &rb.acc } else { &rb.hblk };
        let res = if self.precision == Precision::F32 {
            matmul_packed_with(self.kd, a, &layer.weight, 1, &mut rb.out)
        } else {
            matmul_packed_prec_with(self.kd, self.precision, a, &layer.weight, 1, &mut rb.out)
        };
        if let Err(e) = res {
            self.record(None, Some(i), ShardError::Matrix(e));
            return;
        }
        if from_acc {
            if let Some(bias) = &layer.bias {
                if let Err(e) = rb.out.add_row_bias(bias) {
                    self.record(None, Some(i), ShardError::Matrix(e));
                    return;
                }
            }
            rb.out.apply_activation(layer.activation);
        }
    }

    /// Update-first epilogue on row block `i`: bias + activation applied
    /// to the aggregated accumulator (which already holds `A_blk * mid`).
    fn finish_task(&self, i: usize, layer: &GcnLayer) {
        let mut rb = lock(&self.rows[i]);
        if let Some(bias) = &layer.bias {
            if let Err(e) = rb.acc.add_row_bias(bias) {
                self.record(None, Some(i), ShardError::Matrix(e));
                return;
            }
        }
        rb.acc.apply_activation(layer.activation);
    }

    /// Copies per-row-block results into the ping-pong output buffer
    /// (`acc` after update-first, `out` after aggregate-first). The whole
    /// collection — buffer resize plus per-block scatter — runs inside one
    /// retried fault-pointed region: every write is an idempotent
    /// overwrite, so an injected panic just replays the copy.
    fn scatter_outputs(&mut self, k_out: usize, from_acc: bool) -> Result<(), ShardError> {
        let (r, _) = self.plan.grid();
        let (next, plan, rows) = (&mut self.next, &self.plan, &self.rows);
        let outcome = retry::run(&self.policy, || -> Result<u64, ShardError> {
            resilience::fault_point!("shard.collect");
            next.resize_for_overwrite(plan.nrows(), k_out);
            let mut bytes = 0u64;
            for (i, row) in rows.iter().enumerate().take(r) {
                let rb = lock(row);
                let src = if from_acc { &rb.acc } else { &rb.out };
                let (r0, r1) = (plan.row_bounds()[i], plan.row_bounds()[i + 1]);
                bytes += exec::scatter_block(next, src, r0, r1);
            }
            Ok(bytes)
        });
        match outcome {
            Ok(rec) => {
                let mut c = lock(&self.counters);
                c.recovered_exchanges += u64::from(rec.attempts - 1);
                Ok(())
            }
            Err(e) => Err(ShardError::Exchange(e.to_string())),
        }
    }

    /// Records a task-level error of the current graph run, attributed to
    /// the shard / row block that hit it. Every fault is kept — recovery
    /// must invalidate *all* stale buffers, not just the first.
    fn record(&self, shard: Option<usize>, row_block: Option<usize>, e: ShardError) {
        lock(&self.faults).push(TaskFault {
            shard,
            row_block,
            error: e,
        });
    }
}

/// Builds the exchange → aggregation-chain → tail task graph shared by
/// aggregate-first layers and update-first phase B: tasks `0..w` exchange,
/// `w..2w` aggregate (chained per row block in ascending column order),
/// `2w..2w+r` run the per-row-block tail.
fn exchange_aggregate_graph(r: usize, c: usize) -> TaskGraph {
    let w = r * c;
    let mut graph = TaskGraph::new(2 * w + r);
    for i in 0..r {
        for j in 0..c {
            let b = i * c + j;
            graph.add_dep(w + b, b);
            if j > 0 {
                graph.add_dep(w + b, w + b - 1);
            }
        }
        graph.add_dep(2 * w + i, w + (i * c + c - 1));
    }
    graph
}

/// Clears the completion flags a recorded task fault invalidates: the
/// faulted shard's exchange (its landing buffer is stale) and the whole
/// aggregation chain of the attributed row block.
fn clear_attributed(
    done: &mut [bool],
    shape: GraphShape,
    shard: Option<usize>,
    row: Option<usize>,
) {
    match shape {
        GraphShape::ExchangeAggregate { r, c } => {
            if let Some(b) = shard {
                if let Some(d) = done.get_mut(b) {
                    *d = false;
                }
            }
            let row = row.or(shard.map(|b| b / c));
            if let Some(i) = row {
                for t in chain_tasks(i, r, c) {
                    if let Some(d) = done.get_mut(t) {
                        *d = false;
                    }
                }
            }
        }
        GraphShape::RowBlocks => {
            if let Some(i) = row {
                if let Some(d) = done.get_mut(i) {
                    *d = false;
                }
            }
        }
    }
}

/// Task IDs of row block `i`'s aggregation chain plus its tail task in an
/// exchange-aggregate graph.
fn chain_tasks(i: usize, r: usize, c: usize) -> impl Iterator<Item = usize> {
    let w = r * c;
    (w + i * c..w + (i + 1) * c).chain(std::iter::once(2 * w + i))
}

/// Chain-consistency pass over the replay mask: 2D aggregation chains
/// accumulate into one accumulator in place, so if *any* task of a row
/// block's chain (or its tail) is incomplete, the whole chain must replay
/// from its overwriting first block. Completed exchanges stay completed —
/// their landing buffers are untouched by aggregation.
fn widen_to_chains(done: &mut [bool], shape: GraphShape) {
    if let GraphShape::ExchangeAggregate { r, c } = shape {
        for i in 0..r {
            if chain_tasks(i, r, c).any(|t| !done[t]) {
                for t in chain_tasks(i, r, c) {
                    done[t] = false;
                }
            }
        }
    }
}

/// Locks ignoring poisoning: task panics are caught inside the executor,
/// and a poisoned buffer is fully overwritten by the retried attempt.
/// Routed through the audit helpers so recoveries are counted.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    resilience::audit::recover("shard.runner", m)
}
