//! Shard health supervision: a typed event log of shard-down causes.
//!
//! The runner turns three raw failure signals into typed [`ShardEvent`]s
//! here: a worker panic caught by the tracked task-graph executor, a
//! `shard.exchange` fault that escaped its retry budget, and a per-task
//! deadline overrun. Each event names the shard (column-block) and row
//! block it hit, the layer being executed, and the originating fault-site
//! string, so a serving layer — or the chaos soak harness — can attribute
//! every failover and shed to a concrete injected fault.
//!
//! The registry is a bounded ring: supervision must never become the
//! thing that runs the process out of memory during a fault storm.

use std::collections::VecDeque;
use std::sync::Mutex;

use resilience::audit;

/// Upper bound on retained events; older events are dropped first.
const EVENT_CAP: usize = 256;

/// Why a shard was marked down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardDownCause {
    /// A task body panicked (caught by the executor; the event's `site`
    /// carries the rendered panic payload).
    Panic,
    /// A halo exchange exhausted its retry budget and surfaced a typed
    /// error.
    ExchangeFault,
    /// A task completed but overran the configured per-task deadline —
    /// the straggler signal a barrier-synchronized layer cannot hide.
    DeadlineOverrun,
}

impl std::fmt::Display for ShardDownCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardDownCause::Panic => write!(f, "panic"),
            ShardDownCause::ExchangeFault => write!(f, "exchange-fault"),
            ShardDownCause::DeadlineOverrun => write!(f, "deadline-overrun"),
        }
    }
}

/// One typed shard-down observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEvent {
    /// Shard (grid block) the failure is attributed to, when known.
    pub shard: Option<usize>,
    /// Row block the failure is attributed to, when known.
    pub row_block: Option<usize>,
    /// Model layer index being executed when the failure hit.
    pub layer: usize,
    /// Cause classification.
    pub cause: ShardDownCause,
    /// Originating fault-site string (for injected panics this is the
    /// rendered panic payload, e.g. ``injected fault at `shard.task` ``).
    pub site: String,
    /// True once the layer the event occurred in was recovered (replayed
    /// to completion on surviving workers).
    pub recovered: bool,
}

/// Interior state: the bounded event ring plus per-shard strike counts.
#[derive(Debug, Default)]
struct HealthState {
    events: VecDeque<ShardEvent>,
    strikes: Vec<u64>,
}

/// Bounded, thread-safe log of shard health events.
///
/// Task bodies record events while a layer graph is draining; the
/// recovery loop marks the affected layer recovered once its replay
/// completes. Locks are held only for the push/scan, never across task
/// execution.
#[derive(Debug, Default)]
pub struct HealthRegistry {
    state: Mutex<HealthState>,
}

impl HealthRegistry {
    /// An empty registry sized for `shards` strike counters.
    pub fn new(shards: usize) -> HealthRegistry {
        HealthRegistry {
            state: Mutex::new(HealthState {
                events: VecDeque::with_capacity(EVENT_CAP.min(64)),
                strikes: vec![0; shards],
            }),
        }
    }

    /// Records one event, evicting the oldest when the ring is full, and
    /// bumps the attributed shard's strike counter.
    pub fn record(&self, event: ShardEvent) {
        let mut st = self.lock();
        if let Some(s) = event.shard {
            if let Some(k) = st.strikes.get_mut(s) {
                *k += 1;
            }
        }
        if st.events.len() >= EVENT_CAP {
            st.events.pop_front();
        }
        st.events.push_back(event);
    }

    /// Marks every event of `layer` recovered (called after a successful
    /// masked replay of that layer's task graph).
    pub fn mark_recovered(&self, layer: usize) {
        for e in self.lock().events.iter_mut() {
            if e.layer == layer {
                e.recovered = true;
            }
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<ShardEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<ShardEvent> {
        self.lock().events.back().cloned()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when no events have been recorded (or all were cleared).
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Per-shard strike counts (events attributed to each shard since the
    /// last [`HealthRegistry::clear`]).
    pub fn strikes(&self) -> Vec<u64> {
        self.lock().strikes.clone()
    }

    /// Drops all events and zeroes the strike counters.
    pub fn clear(&self) {
        let mut st = self.lock();
        st.events.clear();
        for s in st.strikes.iter_mut() {
            *s = 0;
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthState> {
        audit::recover("shard.health", &self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(shard: usize, layer: usize, cause: ShardDownCause) -> ShardEvent {
        ShardEvent {
            shard: Some(shard),
            row_block: None,
            layer,
            cause,
            site: format!("test.site.{shard}"),
            recovered: false,
        }
    }

    #[test]
    fn records_events_and_strikes() {
        let reg = HealthRegistry::new(4);
        assert!(reg.is_empty());
        reg.record(event(2, 0, ShardDownCause::Panic));
        reg.record(event(2, 1, ShardDownCause::ExchangeFault));
        reg.record(event(0, 1, ShardDownCause::DeadlineOverrun));
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.strikes(), vec![1, 0, 2, 0]);
        assert_eq!(reg.last().unwrap().cause, ShardDownCause::DeadlineOverrun);
    }

    #[test]
    fn mark_recovered_flips_only_the_layer() {
        let reg = HealthRegistry::new(2);
        reg.record(event(0, 0, ShardDownCause::Panic));
        reg.record(event(1, 1, ShardDownCause::Panic));
        reg.mark_recovered(1);
        let ev = reg.events();
        assert!(!ev[0].recovered);
        assert!(ev[1].recovered);
    }

    #[test]
    fn ring_is_bounded() {
        let reg = HealthRegistry::new(1);
        for i in 0..(EVENT_CAP + 10) {
            reg.record(event(0, i, ShardDownCause::Panic));
        }
        assert_eq!(reg.len(), EVENT_CAP);
        assert_eq!(reg.events()[0].layer, 10, "oldest events were evicted");
        assert_eq!(reg.strikes()[0], (EVENT_CAP + 10) as u64);
    }

    #[test]
    fn clear_resets_everything() {
        let reg = HealthRegistry::new(2);
        reg.record(event(1, 0, ShardDownCause::ExchangeFault));
        reg.clear();
        assert!(reg.is_empty());
        assert_eq!(reg.strikes(), vec![0, 0]);
    }
}
