//! Sharded multi-node GCN execution.
//!
//! PIUMA's headline claim is *scalability*: a GCN sharded across nodes of
//! a distributed global address space, with remote feature rows fetched
//! over the HyperX network. This crate reproduces that execution model in
//! process. A [`ShardPlan`] cuts the normalized adjacency into NNZ-balanced
//! 1D row blocks or a 2D grid (reusing the single-node planner's merge-path
//! split), giving each worker a local CSR plus a **halo map** — the remote
//! rows whose activations it must fetch each layer. [`ShardedGcn`] then
//! runs inference as a task graph per layer: "gather halo into this shard's
//! stage buffer" and "aggregate / update this block" become schedulable
//! nodes executed by [`exec::TaskGraph`] over the shared [`pool`], with all
//! cross-shard traffic flowing through explicit copy buffers so the
//! communication volume is measured, not inferred. Every exchange passes a
//! `fault_point!` site and is retried idempotently, making the protocol
//! chaos-testable.
//!
//! The numeric contract is strict: sharded inference is **bitwise
//! identical** to single-node [`gcn::GcnModel::infer_planned`] running a
//! width-1 (sequential) plan. Per-shard SpMM walks each row's non-zeros in
//! the same ascending column order as the single-node row loop, 2D grids
//! accumulate column blocks in ascending order into one accumulator, and
//! the packed GEMM's per-row FP sequence is row-partition-invariant — so
//! splitting work across shards never reassociates a single addition.
//!
//! [`sim`] mirrors the same partition inside the `piuma-sim` machine model
//! (HyperX hop latencies, DMA engines, per-node bandwidth) to project what
//! the partition would cost on real PIUMA nodes — that projection
//! regenerates `results/ext_multinode_scaling.csv` from first principles.

/// Task-graph executor draining shard tasks through the process pool.
pub mod exec;
/// Shard health supervision: typed shard-down events and strike counts.
pub mod health;
/// Partitioning: NNZ/row-balanced blocks, halo maps, exchange ledger.
pub mod partition;
/// The sharded GCN runner: per-layer task graphs with halo exchange.
pub mod runner;
/// PIUMA projection of a shard plan (regenerates the scaling CSV).
pub mod sim;

pub use exec::{RunTrace, TaskFailure, TaskGraph};
pub use health::{HealthRegistry, ShardDownCause, ShardEvent};
pub use partition::{LayerExchange, PartitionKind, ShardBlock, ShardPlan};
pub use runner::{ShardReport, ShardedGcn};
pub use sim::{simulate_model, ShardSimResult};

/// Errors from partitioning or sharded execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// The adjacency is not square, so the row/column ownership map is
    /// undefined.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A plan for zero workers was requested.
    ZeroWorkers,
    /// Building a shard-local CSR failed (carries the sparse error text).
    Partition(String),
    /// A dense kernel inside a shard task failed.
    Matrix(matrix::MatrixError),
    /// Feature matrix width does not match the model's input dimension.
    FeatureDimMismatch {
        /// Width the model expects.
        expected: usize,
        /// Width the caller supplied.
        actual: usize,
    },
    /// Feature matrix row count does not match the partitioned graph.
    VertexCountMismatch {
        /// Vertices in the partitioned adjacency.
        graph: usize,
        /// Rows in the feature matrix.
        features: usize,
    },
    /// A halo exchange failed after exhausting its retry budget.
    Exchange(String),
    /// The task-graph executor stalled (dependency cycle or a task panic
    /// that left dependents unreleased).
    Executor(String),
    /// Narrow storage precision is only supported for 1D partitions (2D
    /// accumulation has no quantized partial-sum path).
    UnsupportedPrecision(matrix::Precision),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NotSquare { rows, cols } => {
                write!(f, "adjacency must be square to shard, got {rows}x{cols}")
            }
            ShardError::ZeroWorkers => write!(f, "cannot shard across zero workers"),
            ShardError::Partition(e) => write!(f, "building shard-local CSR failed: {e}"),
            ShardError::Matrix(e) => write!(f, "kernel error inside shard task: {e}"),
            ShardError::FeatureDimMismatch { expected, actual } => {
                write!(
                    f,
                    "feature dim mismatch: model expects {expected}, got {actual}"
                )
            }
            ShardError::VertexCountMismatch { graph, features } => {
                write!(
                    f,
                    "vertex count mismatch: graph has {graph}, features {features}"
                )
            }
            ShardError::Exchange(e) => write!(f, "halo exchange failed: {e}"),
            ShardError::Executor(e) => write!(f, "shard executor stalled: {e}"),
            ShardError::UnsupportedPrecision(p) => {
                write!(
                    f,
                    "precision {p} requires a 1D partition (2D has no quantized partial-sum path)"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<matrix::MatrixError> for ShardError {
    fn from(e: matrix::MatrixError) -> Self {
        ShardError::Matrix(e)
    }
}
