//! Bitwise recovery: killing shard tasks mid-layer must never change a
//! bit of the output.
//!
//! For every Table-I twin and both partition kinds, this arms the
//! `shard.task` fault point (panic at the top of the supervised task
//! wrapper — an injected kill never leaves a partial in-place mutation)
//! and searches a bounded seed range for a schedule whose kills land in
//! **every** layer, verified through the health registry's per-event
//! layer indices. Two contracts are asserted:
//!
//! 1. **soundness** — every seed whose run completes must match the
//!    single-node width-1 planned reference bit for bit (a recovered run
//!    that diverges is a masked-replay bug, not a skip);
//! 2. **coverage** — some seed in the range kills at least one task in
//!    each layer and still recovers bitwise, with the report counting
//!    replayed tasks and recovered layers.

use std::collections::HashSet;

use gcn::{GcnConfig, GcnModel, InferenceWorkspace};
use graph::OgbDataset;
use kernels::SpmmPlan;
use matrix::DenseMatrix;
use resilience::fault::{self, FaultConfig, FaultKind};
use shard::{PartitionKind, ShardDownCause, ShardedGcn};
use sparse::Csr;

const TWIN_CAP: usize = 1 << 9;
/// Seeds probed per (twin, kind) cell before declaring coverage missing.
const SEED_RANGE: u64 = 192;
/// Per-visit panic rate on `shard.task` while a probe seed is armed.
const KILL_RATE: f64 = 0.12;

fn twin(d: OgbDataset) -> Csr {
    d.materialize_scaled(TWIN_CAP, 0xC0FFEE)
        .normalized_adjacency()
        .expect("twin adjacency normalizes")
}

fn features(n: usize, dim: usize, seed: u64) -> DenseMatrix {
    let data: Vec<f32> = (0..n * dim)
        .map(|i| {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
        })
        .collect();
    DenseMatrix::from_vec(n, dim, data).expect("shape matches by construction")
}

fn reference(model: &GcnModel, a_hat: &Csr, x: &DenseMatrix) -> DenseMatrix {
    let mut ws = InferenceWorkspace::new();
    ws.install_plan(SpmmPlan::with_width(a_hat, x.cols(), 1));
    model
        .infer_planned_with(a_hat, x, &mut ws)
        .expect("single-node planned inference succeeds")
        .clone()
}

fn assert_bitwise(name: &str, seed: u64, got: &DenseMatrix, want: &DenseMatrix) {
    assert_eq!(got.shape(), want.shape(), "{name} seed {seed}: shape");
    for (i, (g, w)) in got
        .as_slice()
        .iter()
        .zip(want.as_slice().iter())
        .enumerate()
    {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{name} seed {seed}: element {i} diverged after recovery: {g:e} vs {w:e}"
        );
    }
}

/// One (twin, kind) cell: probe seeds until kills covered every layer.
fn kill_one_shard_per_layer(d: OgbDataset, workers: usize, kind: PartitionKind) {
    let name = d.stats().name;
    let config = GcnConfig::from_dims(vec![16, 32, 8]);
    let layers = 2usize;
    let a_hat = twin(d);
    let model = GcnModel::new(&config, 7);
    let x = features(a_hat.nrows(), 16, 11);
    let want = reference(&model, &a_hat, &x);
    let mut sharded = ShardedGcn::new(&a_hat, workers, kind).expect("shard plan builds");

    let _quiet = resilience::retry::quiet_panics();
    let mut covered = false;
    for seed in 0..SEED_RANGE {
        sharded.health().clear();
        let outcome = {
            let _armed =
                fault::arm(FaultConfig::new(seed).point("shard.task", FaultKind::Panic, KILL_RATE));
            sharded.infer(&model, &x)
        };
        let got = match outcome {
            // Replay budget exhausted under this schedule: a typed error,
            // not a soundness problem. Try the next seed.
            Err(_) => continue,
            Ok(got) => got,
        };
        // Soundness: ANY completed run must be bitwise-identical.
        assert_bitwise(name, seed, &got, &want);
        let killed_layers: HashSet<usize> = sharded
            .health()
            .events()
            .iter()
            .filter(|e| e.cause == ShardDownCause::Panic)
            .map(|e| e.layer)
            .collect();
        for e in sharded.health().events() {
            assert!(
                e.recovered,
                "{name} seed {seed}: event in completed run not marked recovered: {e:?}"
            );
            assert!(
                e.site.contains("shard.task"),
                "{name} seed {seed}: panic event must carry the fault site: {e:?}"
            );
        }
        if killed_layers.len() == layers {
            let report = sharded.report(&model);
            assert!(
                report.replayed_tasks >= layers as u64,
                "{name} seed {seed}: each killed layer replays at least one task"
            );
            assert!(
                report.recovered_layers >= layers as u64,
                "{name} seed {seed}: both layers recovered"
            );
            covered = true;
            break;
        }
    }
    assert!(
        covered,
        "{name} ({kind:?}, {workers} workers): no seed in 0..{SEED_RANGE} \
         killed a task in every layer and recovered — coverage lost"
    );
}

#[test]
fn bitwise_recovery_all_table1_rows1d() {
    for d in OgbDataset::TABLE1 {
        kill_one_shard_per_layer(d, 4, PartitionKind::Rows1D);
    }
}

#[test]
fn bitwise_recovery_all_table1_grid2d() {
    for d in OgbDataset::TABLE1 {
        kill_one_shard_per_layer(d, 4, PartitionKind::Grid2D);
    }
}

/// A zero task deadline makes every task a straggler: the registry fills
/// with `DeadlineOverrun` annotations, but deadline overruns are
/// observations, not failures — output stays bitwise-identical.
#[test]
fn deadline_overruns_are_recorded_not_fatal() {
    let d = OgbDataset::Arxiv;
    let a_hat = twin(d);
    let model = GcnModel::new(&GcnConfig::from_dims(vec![16, 32, 8]), 7);
    let x = features(a_hat.nrows(), 16, 11);
    let want = reference(&model, &a_hat, &x);
    let mut sharded = ShardedGcn::new(&a_hat, 4, PartitionKind::Rows1D).expect("plan builds");
    sharded.set_task_deadline(Some(std::time::Duration::ZERO));
    let got = sharded
        .infer(&model, &x)
        .expect("overruns never fail a run");
    assert_bitwise(d.stats().name, 0, &got, &want);
    let events = sharded.health().events();
    assert!(!events.is_empty(), "zero deadline must record overruns");
    assert!(events
        .iter()
        .all(|e| e.cause == ShardDownCause::DeadlineOverrun));
    sharded.set_task_deadline(None);
    sharded.health().clear();
    sharded.infer(&model, &x).expect("clean run");
    assert!(sharded.health().is_empty(), "no deadline, no events");
}
