//! Property tests: the shard partition tiles the original adjacency
//! exactly, on arbitrary random graphs, at every worker count and both
//! partition kinds.
//!
//! "Tiles exactly" means: every non-zero `(r, c, v)` of the original CSR
//! appears in exactly one shard-local block at its translated local
//! coordinates, and nothing else appears anywhere — so NNZ is conserved,
//! row ranges cover `[0, n)` without overlap, and degenerate shapes
//! (more workers than rows, one worker) fall out as empty blocks and the
//! identity partition respectively.

use proptest::prelude::*;
use shard::{PartitionKind, ShardPlan};
use sparse::{Coo, Csr};

fn build_csr(n: usize, edges: &[(usize, usize)]) -> Csr {
    let mut coo = Coo::new(n, n);
    for (k, &(r, c)) in edges.iter().enumerate() {
        coo.push(r % n, c % n, 1.0 + (k % 7) as f32);
    }
    Csr::from_coo(&coo)
}

/// Decodes every non-zero of every block back into global coordinates.
fn decode(plan: &ShardPlan) -> Vec<(usize, usize, f32)> {
    let (_, c_blocks) = plan.grid();
    let mut entries = Vec::new();
    for (b, blk) in plan.blocks().iter().enumerate() {
        let j = b % c_blocks;
        assert_eq!(blk.grid_pos, (b / c_blocks, j));
        for lr in 0..blk.local.nrows() {
            let gr = blk.row_start + lr;
            let s = blk.local.row_ptr()[lr];
            let e = blk.local.row_ptr()[lr + 1];
            for p in s..e {
                let gc = blk.refs[blk.local.col_idx()[p] as usize] as usize;
                assert!(
                    gc >= blk.col_start && gc < blk.col_end,
                    "ref outside the block's column range"
                );
                entries.push((gr, gc, blk.local.values()[p]));
            }
        }
    }
    entries.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    entries
}

fn flatten(a: &Csr) -> Vec<(usize, usize, f32)> {
    let mut entries = Vec::new();
    for r in 0..a.nrows() {
        for p in a.row_ptr()[r]..a.row_ptr()[r + 1] {
            entries.push((r, a.col_idx()[p] as usize, a.values()[p]));
        }
    }
    entries
}

proptest! {
    /// Blocks tile the original exactly: same entry multiset, NNZ
    /// conserved, row bounds strictly cover `[0, n)`.
    #[test]
    fn blocks_tile_the_original(
        n in 1usize..48,
        edges in proptest::collection::vec((0usize..64, 0usize..64), 0..256),
        workers in 1usize..9,
        two_d in 0usize..2,
    ) {
        let a = build_csr(n, &edges);
        let kind = if two_d == 1 { PartitionKind::Grid2D } else { PartitionKind::Rows1D };
        let plan = ShardPlan::new(&a, workers, kind).expect("square matrix partitions");

        prop_assert_eq!(plan.workers(), workers);
        let bounds = plan.row_bounds();
        prop_assert_eq!(bounds[0], 0);
        prop_assert_eq!(*bounds.last().expect("bounds non-empty"), n);
        prop_assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "row bounds must be monotone");

        let nnz_sum: usize = plan.blocks().iter().map(|b| b.nnz()).sum();
        prop_assert_eq!(nnz_sum, a.nnz());
        prop_assert_eq!(decode(&plan), flatten(&a));
    }

    /// More workers than rows: the partition still builds, trailing row
    /// blocks are empty, and the tiling still holds.
    #[test]
    fn more_workers_than_rows_leaves_empty_shards(
        n in 1usize..6,
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..24),
    ) {
        let a = build_csr(n, &edges);
        let plan = ShardPlan::new(&a, 8, PartitionKind::Rows1D).expect("partition builds");
        prop_assert_eq!(plan.row_bounds().len(), 9);
        let occupied = plan.blocks().iter().filter(|b| b.rows() > 0).count();
        prop_assert!(occupied <= n, "at most one non-empty block per row");
        prop_assert_eq!(decode(&plan), flatten(&a));
    }

    /// One worker is the identity partition: a single block holding the
    /// whole matrix with no halo.
    #[test]
    fn single_worker_is_identity(
        n in 1usize..32,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..128),
    ) {
        let a = build_csr(n, &edges);
        for kind in [PartitionKind::Rows1D, PartitionKind::Grid2D] {
            let plan = ShardPlan::new(&a, 1, kind).expect("partition builds");
            prop_assert_eq!(plan.blocks().len(), 1);
            let blk = &plan.blocks()[0];
            prop_assert_eq!((blk.row_start, blk.row_end), (0, n));
            prop_assert_eq!(blk.nnz(), a.nnz());
            prop_assert!(blk.halo.is_empty(), "one worker owns every referenced row");
            prop_assert_eq!(plan.halo_rows(), 0);
        }
    }

    /// A deliberately planted hub row (dense row 0) never breaks the
    /// tiling or the halo accounting.
    #[test]
    fn hub_rows_partition_cleanly(
        n in 8usize..40,
        workers in 2usize..9,
        tail in proptest::collection::vec((0usize..40, 0usize..40), 0..64),
    ) {
        let mut edges: Vec<(usize, usize)> = (0..n).map(|c| (0, c)).collect();
        edges.extend(tail);
        let a = build_csr(n, &edges);
        for kind in [PartitionKind::Rows1D, PartitionKind::Grid2D] {
            let plan = ShardPlan::new(&a, workers, kind).expect("partition builds");
            prop_assert_eq!(decode(&plan), flatten(&a));
            // Every halo row is referenced but not owned by its block.
            for blk in plan.blocks() {
                let (lo, hi) = blk.owned_range();
                for &h in &blk.halo {
                    let h = h as usize;
                    prop_assert!(h < lo || h >= hi, "halo row {h} is owned by its own block");
                }
            }
        }
    }
}
