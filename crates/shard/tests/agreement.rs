//! Bitwise agreement between [`shard::ShardedGcn`] and the single-node
//! planned inference path, across every Table-I dataset twin, both
//! partition kinds, and N ∈ {2, 4, 8} workers.
//!
//! The contract under test: sharded execution is a pure reassociation-free
//! re-tiling of the same FP instruction stream, so outputs must agree to
//! the bit (`f32::to_bits`), not merely to a tolerance. The reference path
//! pins a width-1 (sequential) plan via
//! [`gcn::InferenceWorkspace::install_plan`] so machine width cannot
//! perturb the comparison.
//!
//! Test names follow `bitwise_n{workers}_{kind}` so CI's shard-matrix job
//! can filter one cell per runner: `cargo test -p shard --test agreement
//! bitwise_n4_2d`.

use gcn::{GcnConfig, GcnModel, InferenceWorkspace};
use graph::OgbDataset;
use kernels::SpmmPlan;
use matrix::DenseMatrix;
use resilience::fault::{self, FaultConfig, FaultKind};
use resilience::RetryPolicy;
use shard::{PartitionKind, ShardedGcn};
use sparse::Csr;

/// Small cap keeps all nine twins fast while preserving each dataset's
/// degree profile (the partition stress: hubs, halos, empty tails).
const TWIN_CAP: usize = 1 << 9;

fn twin(d: OgbDataset) -> Csr {
    d.materialize_scaled(TWIN_CAP, 0xC0FFEE)
        .normalized_adjacency()
        .expect("twin adjacency normalizes")
}

/// Deterministic feature matrix in `[-1, 1)` (splitmix-style hash, no RNG
/// dependency) — identical bits on every platform.
fn features(n: usize, dim: usize, seed: u64) -> DenseMatrix {
    let data: Vec<f32> = (0..n * dim)
        .map(|i| {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
        })
        .collect();
    DenseMatrix::from_vec(n, dim, data).expect("shape matches by construction")
}

/// Reference output through the sequential pinned plan.
fn reference(model: &GcnModel, a_hat: &Csr, x: &DenseMatrix) -> DenseMatrix {
    let mut ws = InferenceWorkspace::new();
    ws.install_plan(SpmmPlan::with_width(a_hat, x.cols(), 1));
    model
        .infer_planned_with(a_hat, x, &mut ws)
        .expect("single-node planned inference succeeds")
        .clone()
}

fn assert_bitwise(d: OgbDataset, got: &DenseMatrix, want: &DenseMatrix) {
    assert_eq!(
        got.shape(),
        want.shape(),
        "{}: output shape",
        d.stats().name
    );
    for (i, (g, w)) in got
        .as_slice()
        .iter()
        .zip(want.as_slice().iter())
        .enumerate()
    {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{}: element {i} diverged: sharded {g:e} vs single-node {w:e}",
            d.stats().name
        );
    }
}

/// Runs every Table-I twin through both association orders: the 16→32
/// layer is aggregate-first (`k_in <= k_out`), the 32→8 layer is
/// update-first, so one pass covers both schedules.
fn check_all_table1(workers: usize, kind: PartitionKind) {
    let config = GcnConfig::from_dims(vec![16, 32, 8]);
    for d in OgbDataset::TABLE1 {
        let a_hat = twin(d);
        let model = GcnModel::new(&config, 7);
        let x = features(a_hat.nrows(), 16, 11);
        let want = reference(&model, &a_hat, &x);
        let mut sharded =
            ShardedGcn::new(&a_hat, workers, kind).expect("shard plan builds for every twin");
        let got = sharded
            .infer(&model, &x)
            .expect("sharded inference succeeds");
        assert_bitwise(d, &got, &want);

        let report = sharded.report(&model);
        assert_eq!(report.workers, workers);
        assert_eq!(report.kind, kind);
        assert_eq!(
            report.recovered_exchanges,
            0,
            "{}: clean run",
            d.stats().name
        );
        if workers > 1 {
            assert!(
                report.staged_bytes > 0,
                "{}: exchanges must move measurable bytes",
                d.stats().name
            );
        }
    }
}

#[test]
fn bitwise_n2_1d() {
    check_all_table1(2, PartitionKind::Rows1D);
}

#[test]
fn bitwise_n4_1d() {
    check_all_table1(4, PartitionKind::Rows1D);
}

#[test]
fn bitwise_n8_1d() {
    check_all_table1(8, PartitionKind::Rows1D);
}

#[test]
fn bitwise_n2_2d() {
    check_all_table1(2, PartitionKind::Grid2D);
}

#[test]
fn bitwise_n4_2d() {
    check_all_table1(4, PartitionKind::Grid2D);
}

#[test]
fn bitwise_n8_2d() {
    check_all_table1(8, PartitionKind::Grid2D);
}

/// Narrow-precision sharded inference (1D only) agrees bitwise with the
/// single-node narrow path at the same width-1 plan.
#[test]
fn bitwise_narrow_precision_1d() {
    use matrix::Precision;
    let a_hat = twin(OgbDataset::Arxiv);
    let config = GcnConfig::from_dims(vec![16, 32, 8]);
    let model = GcnModel::new(&config, 7);
    let x = features(a_hat.nrows(), 16, 11);
    for precision in [Precision::Bf16, Precision::F16] {
        let mut ws = InferenceWorkspace::new();
        ws.install_plan(SpmmPlan::with_width(&a_hat, 16, 1).at_precision(precision));
        let want = model
            .infer_planned_prec_with(&a_hat, &x, precision, &mut ws)
            .expect("single-node narrow inference succeeds")
            .clone();
        let mut sharded = ShardedGcn::with_precision(&a_hat, 4, PartitionKind::Rows1D, precision)
            .expect("narrow 1D shard plan builds");
        let got = sharded
            .infer(&model, &x)
            .expect("sharded narrow inference succeeds");
        assert_eq!(got.shape(), want.shape());
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits(), "precision {precision:?} diverged");
        }
    }
}

/// Chaos drill: panics injected at the `shard.exchange` fault point are
/// absorbed by the per-exchange retry, the run still completes, the output
/// is still bitwise identical, and the recovery counter records the hits.
#[test]
fn chaos_exchange_recovers_bitwise() {
    let _quiet = resilience::retry::quiet_panics();
    let a_hat = twin(OgbDataset::Products);
    let config = GcnConfig::from_dims(vec![16, 32, 8]);
    let model = GcnModel::new(&config, 7);
    let x = features(a_hat.nrows(), 16, 11);
    let want = reference(&model, &a_hat, &x);

    let _armed =
        fault::arm(FaultConfig::new(0xFA_u64).point("shard.exchange", FaultKind::Panic, 0.4));
    let mut sharded = ShardedGcn::new(&a_hat, 8, PartitionKind::Rows1D).expect("shard plan builds");
    sharded.set_retry_policy(RetryPolicy::immediate(6));
    let got = sharded
        .infer(&model, &x)
        .expect("retries absorb injected exchange panics");
    assert_bitwise(OgbDataset::Products, &got, &want);
    let report = sharded.report(&model);
    assert!(
        report.recovered_exchanges > 0,
        "fault rate 0.4 over many exchange tasks must trigger at least one recovery"
    );
}
